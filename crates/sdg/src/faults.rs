//! Deterministic, seeded fault injection for chaos testing.
//!
//! A [`FaultPlan`] describes *where* the pipeline should misbehave: transient
//! store I/O errors, corrupt store segments, injected per-subgraph solver
//! panics, and plan-driven cancellation trips.  Every decision is a pure
//! function of the plan seed and a **stable identity** of the operation
//! (segment file name, program name + subgraph arrays, subgraph index) —
//! never a call-sequence counter — so the same plan faults the same
//! operations for any thread count, shard count, or retry interleaving.
//!
//! Plans are off by default and gated behind the `SOAP_FAULT_PLAN`
//! environment variable (read once per process), e.g.
//!
//! ```text
//! SOAP_FAULT_PLAN=seed=42,store_read_transient=1,corrupt_every=7,panic_every=11
//! ```
//!
//! Tests inject plans in-process through [`override_plan`], which holds a
//! global gate so concurrent tests cannot observe each other's plans.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};

/// A parsed fault-injection plan.  The default plan injects nothing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every identity hash; two plans with different seeds
    /// fault different (but individually deterministic) operation sets.
    pub seed: u64,
    /// The first `K` read attempts of every store segment fail with a
    /// synthetic transient I/O error.  `K` below the retry budget exercises
    /// the heal path; `K` at or above it exercises the permanent-failure
    /// accounting.
    pub store_read_transient: u32,
    /// The first `K` write attempts of every store flush fail transiently.
    pub store_write_transient: u32,
    /// One in `N` store segments (by name hash) has a record corrupted on
    /// read, driving the quarantine path.  `0` disables.
    pub corrupt_every: u64,
    /// One in `N` subgraph closures (by program + array-set hash) panics,
    /// driving the per-subgraph isolation path.  `0` disables.
    pub panic_every: u64,
    /// Per-program deterministic cancellation trip: every subgraph with
    /// enumeration index `>= N` is treated as deadline-expired.  Unlike a
    /// wall-clock deadline this trips at the same commit points on every
    /// run, so degraded output is byte-identical across thread counts.
    pub cancel_at_subgraph: Option<u64>,
    /// Deterministic enumeration trip: breadth-first subgraph enumeration
    /// stops before expanding level `N` (levels are 1-based set sizes, so
    /// `N = 2` keeps only singletons).
    pub cancel_at_level: Option<u64>,
}

/// SplitMix64 finalizer — decorrelates the seed/identity XOR so nearby
/// seeds pick unrelated fault sets.
fn mix(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// FNV-1a over the parts with a separator byte between them, the stable
/// identity hash every plan decision keys on (independent of call order).
pub fn stable_hash(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
        }
        h = (h ^ 0x1f).wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl FaultPlan {
    /// Whether read attempt `attempt` (0-based) of `segment` should fail
    /// with a synthetic transient error.
    pub fn store_read_fails(&self, _segment: &str, attempt: u32) -> bool {
        attempt < self.store_read_transient
    }

    /// Whether write attempt `attempt` (0-based) of `segment` should fail
    /// with a synthetic transient error.
    pub fn store_write_fails(&self, _segment: &str, attempt: u32) -> bool {
        attempt < self.store_write_transient
    }

    /// Whether the named store segment gets a record corrupted on read.
    pub fn corrupts_segment(&self, segment: &str) -> bool {
        self.corrupt_every > 0
            && mix(self.seed ^ stable_hash(&[segment])).is_multiple_of(self.corrupt_every)
    }

    /// Whether the subgraph closure for `arrays` of `program` should panic.
    pub fn panics_subgraph(&self, program: &str, arrays: &[String]) -> bool {
        if self.panic_every == 0 {
            return false;
        }
        let mut parts: Vec<&str> = vec![program];
        parts.extend(arrays.iter().map(String::as_str));
        mix(self.seed ^ stable_hash(&parts)).is_multiple_of(self.panic_every)
    }

    /// Whether the subgraph at enumeration `index` is cancelled by the plan.
    pub fn cancels_subgraph(&self, index: usize) -> bool {
        self.cancel_at_subgraph.is_some_and(|n| index as u64 >= n)
    }

    /// The enumeration level (set size) the plan refuses to expand, if any.
    pub fn level_cap(&self) -> Option<usize> {
        self.cancel_at_level.map(|l| l as usize)
    }
}

/// Parse a fault-plan string (`key=value` pairs, comma-separated).
///
/// Strictly validated in the spirit of `parse_cache_shards`: any unknown
/// key, malformed pair, duplicate key, or unparsable value rejects the whole
/// plan (`None`), so a typo degrades to "no faults" loudly in tests rather
/// than silently injecting a different plan.
pub fn parse_fault_plan(raw: &str) -> Option<FaultPlan> {
    let raw = raw.trim();
    if raw.is_empty() {
        return None;
    }
    let mut plan = FaultPlan::default();
    let mut seen: Vec<&str> = Vec::new();
    for pair in raw.split(',') {
        let (key, value) = pair.split_once('=')?;
        let (key, value) = (key.trim(), value.trim());
        if seen.contains(&key) {
            return None;
        }
        let parsed: u64 = value.parse().ok()?;
        match key {
            "seed" => plan.seed = parsed,
            "store_read_transient" => plan.store_read_transient = u32::try_from(parsed).ok()?,
            "store_write_transient" => plan.store_write_transient = u32::try_from(parsed).ok()?,
            "corrupt_every" => plan.corrupt_every = parsed,
            "panic_every" => plan.panic_every = parsed,
            "cancel_at_subgraph" => plan.cancel_at_subgraph = Some(parsed),
            "cancel_at_level" => plan.cancel_at_level = Some(parsed),
            _ => return None,
        }
        seen.push(key);
    }
    Some(plan)
}

static ENV_PLAN: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
static OVERRIDE: RwLock<Option<Option<Arc<FaultPlan>>>> = RwLock::new(None);
static OVERRIDE_GATE: Mutex<()> = Mutex::new(());

/// The process-wide active fault plan: a test override when one is live,
/// otherwise `SOAP_FAULT_PLAN` (read and parsed once per process).
pub fn active_plan() -> Option<Arc<FaultPlan>> {
    // lint:allow(unwrap-expect): override-lock holders only clone or assign; they cannot panic while holding it
    if let Some(overridden) = OVERRIDE.read().expect("fault override lock").as_ref() {
        return overridden.clone();
    }
    ENV_PLAN
        .get_or_init(|| {
            std::env::var("SOAP_FAULT_PLAN")
                .ok()
                .and_then(|raw| parse_fault_plan(&raw))
                .map(Arc::new)
        })
        .clone()
}

/// RAII guard of a live [`override_plan`]; dropping it restores the
/// environment-derived plan and releases the cross-test gate.
pub struct PlanOverrideGuard {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for PlanOverrideGuard {
    fn drop(&mut self) {
        // lint:allow(unwrap-expect): override-lock holders only clone or assign; they cannot panic while holding it
        *OVERRIDE.write().expect("fault override lock") = None;
    }
}

/// Install `plan` (including explicitly "no plan") as the active plan until
/// the returned guard drops.  Holds a global mutex for the guard's lifetime
/// so concurrently running tests serialize instead of cross-injecting; a
/// test that panicked while holding the gate does not poison it for the rest
/// of the suite.
pub fn override_plan(plan: Option<FaultPlan>) -> PlanOverrideGuard {
    let gate = OVERRIDE_GATE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    // lint:allow(unwrap-expect): override-lock holders only clone or assign; they cannot panic while holding it
    *OVERRIDE.write().expect("fault override lock") = Some(plan.map(Arc::new));
    PlanOverrideGuard { _gate: gate }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_plan() {
        let plan = parse_fault_plan(
            "seed=42, store_read_transient=1, store_write_transient=2, corrupt_every=7, \
             panic_every=11, cancel_at_subgraph=100, cancel_at_level=3",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.store_read_transient, 1);
        assert_eq!(plan.store_write_transient, 2);
        assert_eq!(plan.corrupt_every, 7);
        assert_eq!(plan.panic_every, 11);
        assert_eq!(plan.cancel_at_subgraph, Some(100));
        assert_eq!(plan.cancel_at_level, Some(3));
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in [
            "",
            "seed",
            "seed=",
            "seed=x",
            "seed=1,seed=2",
            "unknown=1",
            "seed=1,,panic_every=2",
            "seed=-1",
        ] {
            assert_eq!(parse_fault_plan(bad), None, "plan {bad:?}");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = FaultPlan {
            seed: 1,
            corrupt_every: 2,
            panic_every: 2,
            ..FaultPlan::default()
        };
        let names: Vec<String> = (0..64).map(|i| format!("seg-{i}")).collect();
        let picks: Vec<bool> = names.iter().map(|n| a.corrupts_segment(n)).collect();
        // Deterministic across calls.
        assert_eq!(
            picks,
            names
                .iter()
                .map(|n| a.corrupts_segment(n))
                .collect::<Vec<_>>()
        );
        // Roughly one in two, and a different seed picks a different set.
        let hits = picks.iter().filter(|&&p| p).count();
        assert!(hits > 8 && hits < 56, "hits {hits}");
        let b = FaultPlan { seed: 2, ..a };
        assert_ne!(
            picks,
            names
                .iter()
                .map(|n| b.corrupts_segment(n))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn disabled_knobs_inject_nothing() {
        let plan = FaultPlan::default();
        assert!(!plan.store_read_fails("seg", 0));
        assert!(!plan.store_write_fails("seg", 0));
        assert!(!plan.corrupts_segment("seg"));
        assert!(!plan.panics_subgraph("prog", &["A".to_string()]));
        assert!(!plan.cancels_subgraph(0));
        assert_eq!(plan.level_cap(), None);
    }

    #[test]
    fn override_wins_and_restores_on_drop() {
        {
            let _guard = override_plan(Some(FaultPlan {
                seed: 7,
                ..FaultPlan::default()
            }));
            assert_eq!(active_plan().unwrap().seed, 7);
        }
        // After the guard drops the override is gone (the env fallback may
        // or may not be set in this process; it just must not be seed 7).
        assert!(active_plan().is_none_or(|p| p.seed != 7));
    }
}
