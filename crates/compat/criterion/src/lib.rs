//! Offline stand-in for `criterion`: a minimal wall-clock benchmark harness
//! with the API surface used by this workspace's benches.
//!
//! Each benchmark warms up, then takes `sample_size` samples sized to fill
//! `measurement_time`, and prints min/median/mean per-iteration times in a
//! criterion-like one-line format.  Statistical analysis, plots, and saved
//! baselines are out of scope — the `soap-bench` `perf` binary produces the
//! machine-readable numbers for regression tracking.
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &id.to_string(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }
}

/// A named benchmark group with its own sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total duration the samples should roughly fill.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    /// Benchmark a closure that receives a shared input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier that is just the displayed parameter.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Identifier `name/parameter`.
    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, collecting the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up, which also yields a per-iteration estimate.
        // lint:allow(instant-now): the benchmark harness measures wall-clock by design; reporting-only
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            // lint:allow(instant-now): the benchmark harness measures wall-clock by design; reporting-only
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        sample_size,
        warm_up_time,
        measurement_time,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{label:<40} (no measurement: Bencher::iter never called)");
        return;
    }
    let mut sorted = b.samples_ns.clone();
    // NaN-last shared total order: a rogue NaN sample (e.g. a zero-iteration
    // division slipping in through a refactor) must not panic the whole bench
    // run the way `partial_cmp(..).expect(..)` did — it sorts to the front
    // and surfaces as a NaN minimum instead.
    sorted.sort_by(|a, b| soap_symbolic::nan_last(*a, *b));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{label:<40} time: [min {} median {} mean {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Mirror of `criterion_group!`: bundle benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirror of `criterion_main!`: make the bundled runners the binary's main.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn format_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}
