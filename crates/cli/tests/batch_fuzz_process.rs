//! The PR 7 adversarial fuzz corpus driven through the `soap-cli batch`
//! *process boundary*: each input is written to a real source file and fed
//! to the spawned release of the binary (`CARGO_BIN_EXE_soap-cli`).  In-crate
//! fuzz tests prove the parsers don't panic when called as a library; this
//! suite proves the CLI turns those rejections into a clean nonzero exit —
//! an error message on stderr, never an abort, never a panic backtrace.
//!
//! The generators mirror `crates/frontend/tests/adversarial_fuzz.rs` (same
//! xorshift64* engine, same mutation set) with smaller case counts, because
//! every case here costs a process spawn.

use std::path::PathBuf;
use std::process::Command;

/// Deterministic xorshift64* generator — same engine as the frontend fuzz.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

const LOOP_VARS: [&str; 4] = ["i", "j", "k", "t"];
const PARAMS: [&str; 3] = ["N", "M", "P"];
const SPLICE: [&str; 14] = [
    "[", "]", "(", ")", "{", "}", ";", ":", "=", ",", "<", "*", "β", "∑",
];

fn gen_template(rng: &mut Rng, c_style: bool) -> String {
    let depth = 1 + rng.below(3);
    let vars: Vec<&str> = LOOP_VARS[..depth].to_vec();
    let mut out = String::new();
    for (level, v) in vars.iter().enumerate() {
        let lo = rng.below(2);
        let hi = PARAMS[rng.below(PARAMS.len())];
        if c_style {
            out.push_str(&"  ".repeat(level));
            out.push_str(&format!("for ({v} = {lo}; {v} < {hi}; {v}++) {{\n"));
        } else {
            out.push_str(&"    ".repeat(level));
            out.push_str(&format!("for {v} in range({lo}, {hi}):\n"));
        }
    }
    let indent = if c_style {
        "  ".repeat(depth)
    } else {
        "    ".repeat(depth)
    };
    let sub = |rng: &mut Rng, vars: &[&str]| -> String {
        let v = vars[rng.below(vars.len())];
        match rng.below(4) {
            0 => format!("{v} + 1"),
            1 => format!("{v} - 1"),
            _ => v.to_string(),
        }
    };
    let lhs_ix = sub(rng, &vars);
    let rhs_ix = sub(rng, &vars);
    let op = if rng.chance(50) { "+=" } else { "=" };
    if c_style {
        out.push_str(&format!(
            "{indent}Out[{lhs_ix}] {op} In[{rhs_ix}] * W[{rhs_ix}];\n"
        ));
        for level in (0..depth).rev() {
            out.push_str(&"  ".repeat(level));
            out.push_str("}\n");
        }
    } else {
        out.push_str(&format!(
            "{indent}Out[{lhs_ix}] {op} In[{rhs_ix}] * W[{rhs_ix}]\n"
        ));
    }
    out
}

fn mutate(rng: &mut Rng, src: &mut String) {
    if src.is_empty() {
        src.push_str(SPLICE[rng.below(SPLICE.len())]);
        return;
    }
    match rng.below(5) {
        0 => {
            let mut cut = rng.below(src.len() + 1);
            while !src.is_char_boundary(cut) {
                cut -= 1;
            }
            src.truncate(cut);
        }
        1 => {
            let mut at = rng.below(src.len() + 1);
            while !src.is_char_boundary(at) {
                at -= 1;
            }
            src.insert_str(at, SPLICE[rng.below(SPLICE.len())]);
        }
        2 => {
            let mut at = rng.below(src.len());
            while !src.is_char_boundary(at) {
                at -= 1;
            }
            src.remove(at);
        }
        3 => {
            let swapped: String = src
                .chars()
                .map(|c| match c {
                    '[' => ']',
                    ']' => '[',
                    '(' => ')',
                    ')' => '(',
                    '{' => '}',
                    '}' => '{',
                    other => other,
                })
                .collect();
            *src = swapped;
        }
        _ => {
            let lines: Vec<&str> = src.lines().collect();
            if !lines.is_empty() {
                let line = lines[rng.below(lines.len())].to_string();
                src.push_str(&line);
                src.push('\n');
            }
        }
    }
}

fn gen_garbage(rng: &mut Rng) -> String {
    let len = rng.below(200);
    let bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0xFF) as u8).collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

/// A scratch directory unique to this test binary run.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soap-cli-fuzz-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Run `soap-cli batch <file>` on `src` written with `extension`, asserting
/// the process ended with an orderly exit code — 0 (the input happened to be
/// valid) or 1/2 (rejected) — and never a panic: no abort, no signal, no
/// backtrace on stderr.  Returns the exit code.
fn batch_survives(dir: &std::path::Path, case: usize, extension: &str, src: &str) -> i32 {
    let path = dir.join(format!("case{case}.{extension}"));
    std::fs::write(&path, src).expect("write case");
    let output = Command::new(env!("CARGO_BIN_EXE_soap-cli"))
        .arg("batch")
        .arg(&path)
        .output()
        .expect("spawn soap-cli");
    let stderr = String::from_utf8_lossy(&output.stderr);
    let code = output.status.code().unwrap_or_else(|| {
        panic!("case {case}: killed by signal (panic abort?) on input:\n---8<---\n{src}\n--->8---")
    });
    assert!(
        (0..=2).contains(&code),
        "case {case}: exit code {code} (exit 101 is a Rust panic) on input:\n---8<---\n{src}\n--->8---\nstderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "case {case}: panic backtrace crossed the process boundary:\n{stderr}"
    );
    if code != 0 {
        // A rejection must say why *somewhere*: parse errors land on stderr;
        // analysis failures land as `"ok":false` records on stdout.
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            !stderr.trim().is_empty() || !stdout.trim().is_empty(),
            "case {case}: nonzero exit with no explanation on either stream"
        );
    }
    code
}

#[test]
fn mutated_programs_fail_cleanly_at_the_process_boundary() {
    let dir = scratch("mutated");
    let mut rng = Rng(0x5eed_5afe_2026_0808);
    for case in 0..30 {
        let c_style = case % 2 == 0;
        let mut src = gen_template(&mut rng, c_style);
        let n_mutations = 1 + rng.below(4);
        for _ in 0..n_mutations {
            mutate(&mut rng, &mut src);
        }
        batch_survives(&dir, case, if c_style { "c" } else { "py" }, &src);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn raw_garbage_is_rejected_cleanly_at_the_process_boundary() {
    let dir = scratch("garbage");
    let mut rng = Rng(0x6a55_ba6e_2026_0808);
    let mut rejected = 0;
    for case in 0..20 {
        let src = gen_garbage(&mut rng);
        if batch_survives(&dir, case, "py", &src) != 0 {
            rejected += 1;
        }
    }
    // Character soup essentially never parses; if the binary starts calling
    // it all valid, the exit-code contract has rotted.
    assert!(rejected >= 18, "only {rejected}/20 garbage inputs rejected");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn historical_panic_corpus_exits_nonzero_without_panicking() {
    // The PR 7 regression corpus: each input used to panic a parser before
    // the hardening pass (inverted slices, mid-character str indexing).  The
    // third case is *valid* after the hardening — `βA` is an ordinary
    // (multi-byte) identifier — so only the genuinely malformed ones must
    // exit nonzero.
    let corpus: [(&str, &str, bool); 5] = [
        ("c", "for ) ( { A[i] = B[i]; }", true),
        ("c", "for (i = 0; i < N; i++) { A[i]]x[ = B[i]; }", true),
        ("c", "for (i = 0; i < N; i++) { βA[i] = B[i]; }", false),
        ("py", "for i in range(N):\n    A[i]]x[ = B[i]\n", true),
        ("py", "for i in range(N):\n    ∑[i] = B[i]\n", true),
    ];
    let dir = scratch("regression");
    for (case, (extension, src, must_reject)) in corpus.iter().enumerate() {
        let code = batch_survives(&dir, case, extension, src);
        if *must_reject {
            assert_ne!(
                code, 0,
                "case {case}: a known-invalid input was accepted:\n{src}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
