//! Numeric solvers for the SOAP optimization problem (8).
//!
//! The paper reduces the I/O lower bound of a statement to the constrained
//! maximization
//!
//! ```text
//!   maximize   χ(D) = Σ_stmt ∏_{t ∈ vars(stmt)} |D_t|        (subcomputation size)
//!   subject to g(D) = Σ_j |A_j(D)| ≤ X,   |D_t| ≥ 1          (dominator ≤ X)
//! ```
//!
//! where the access-set sizes `|A_j|` come from Lemma 3 / Corollary 1.  Both
//! `χ` and `g` are smooth, monotonically increasing functions of the tile
//! extents `D_t`, so a damped multiplicative KKT fixed point in log-space
//! converges quickly.  Solving at a few large values of `X` and fitting
//! `χ(X) = c·X^σ` recovers the constant and the exponent of the computational
//! intensity `ρ = χ(X)/(X − S)`, whose minimizer `X₀ = σS/(σ−1)` is then known
//! in closed form.

use crate::closed_form::ClosedForm;
use crate::deadline::{Deadline, Expired};
use crate::expr::Expr;
use crate::posy::{CompiledPosynomial, MaxPosynomial, MaxScratch, TIE_REL_FLOOR};
use crate::rational::Rational;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

static SOLVES: AtomicU64 = AtomicU64::new(0);
static COMPILED_SOLVES: AtomicU64 = AtomicU64::new(0);
static KKT_ITERATIONS: AtomicU64 = AtomicU64::new(0);
static MAX_FORM_SOLVES: AtomicU64 = AtomicU64::new(0);
static KKT_CAP_HITS: AtomicU64 = AtomicU64::new(0);
static KKT_HISTOGRAM: [AtomicU64; KKT_HISTOGRAM_EDGES.len() + 1] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Upper edges of the per-solve KKT iteration histogram buckets: bucket `i`
/// counts solves with `iterations < EDGES[i]` (and ≥ the previous edge); the
/// final bucket counts solves at or above the last edge (a continuation
/// restart can push a converged solve past the per-leg cap).
pub const KKT_HISTOGRAM_EDGES: [u64; 6] = [10, 25, 50, 100, 200, 400];

/// The hard per-solve KKT iteration budget; a solve that consumes the whole
/// budget without meeting a convergence criterion is counted as a cap hit.
pub const KKT_ITERATION_CAP: usize = 400;

/// The `X` values of the three power-law probes run by
/// [`ConstrainedProduct::fit_power_law`].  Public because the tile-shape fit
/// in `soap-core` reuses the *last* probe's optimum as the second point of
/// its two-point tile-exponent fit (no extra solve needed).
pub const POWER_LAW_PROBES: [f64; 3] = [1.0e7, 4.0e7, 1.6e8];

/// Ratio deviations below this are converged for every downstream consumer
/// (the rational/closed-form snapping tolerances sit at 3e-5): stepping on
/// them would amplify gradient noise into radius-sized kicks off the optimum.
const DEV_DEADBAND: f64 = 1e-7;

/// Governed KKT loops poll their [`Deadline`] every `MASK + 1` iterations
/// (a power of two so the test is one AND).  A single iteration is a few µs,
/// so a 16-iteration poll granularity bounds the overshoot past an expired
/// deadline to well under a millisecond per solve.
const DEADLINE_POLL_MASK: usize = 0xF;

/// Process-wide counters of the numeric solver, for perf reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverCounters {
    /// Total [`ConstrainedProduct::solve`] calls.
    pub solves: u64,
    /// Solves that ran on the compiled-posynomial fast path.
    pub compiled_solves: u64,
    /// Total KKT fixed-point iterations across all solves.
    pub kkt_iterations: u64,
    /// Solves whose constraint was in piecewise max-posynomial form.
    pub max_form_solves: u64,
    /// Solves that exhausted the iteration budget without converging.
    pub kkt_cap_hits: u64,
    /// Per-solve iteration histogram over [`KKT_HISTOGRAM_EDGES`] buckets.
    pub kkt_histogram: [u64; KKT_HISTOGRAM_EDGES.len() + 1],
}

/// Snapshot the process-wide solver counters.
pub fn solver_counters() -> SolverCounters {
    let mut kkt_histogram = [0u64; KKT_HISTOGRAM_EDGES.len() + 1];
    for (slot, bucket) in kkt_histogram.iter_mut().zip(&KKT_HISTOGRAM) {
        *slot = bucket.load(Ordering::Relaxed);
    }
    SolverCounters {
        solves: SOLVES.load(Ordering::Relaxed),
        compiled_solves: COMPILED_SOLVES.load(Ordering::Relaxed),
        kkt_iterations: KKT_ITERATIONS.load(Ordering::Relaxed),
        max_form_solves: MAX_FORM_SOLVES.load(Ordering::Relaxed),
        kkt_cap_hits: KKT_CAP_HITS.load(Ordering::Relaxed),
        kkt_histogram,
    }
}

/// Reset the process-wide solver counters (perf harness bookkeeping).
pub fn reset_solver_counters() {
    SOLVES.store(0, Ordering::Relaxed);
    COMPILED_SOLVES.store(0, Ordering::Relaxed);
    KKT_ITERATIONS.store(0, Ordering::Relaxed);
    MAX_FORM_SOLVES.store(0, Ordering::Relaxed);
    KKT_CAP_HITS.store(0, Ordering::Relaxed);
    for bucket in &KKT_HISTOGRAM {
        bucket.store(0, Ordering::Relaxed);
    }
}

/// Record one finished solve into the process-wide accounting.
fn record_solve(iterations: u64, capped: bool) {
    KKT_ITERATIONS.fetch_add(iterations, Ordering::Relaxed);
    if capped {
        KKT_CAP_HITS.fetch_add(1, Ordering::Relaxed);
    }
    let bucket = KKT_HISTOGRAM_EDGES
        .iter()
        .position(|&edge| iterations < edge)
        .unwrap_or(KKT_HISTOGRAM_EDGES.len());
    KKT_HISTOGRAM[bucket].fetch_add(1, Ordering::Relaxed);
}

/// The compiled forms of a problem's objective and constraint.
#[derive(Clone, Debug)]
struct CompiledProblem {
    objective: CompiledPosynomial,
    constraint: CompiledConstraint,
}

/// A compiled dominator: pure posynomial when possible, otherwise the
/// piecewise max-posynomial form (§5.1/§5.3 conservative unions).
///
/// Public so the cross-subgraph solve cache (`soap-sdg`) can compile the
/// dominator once for its canonical key and hand the result straight to
/// [`ConstrainedProduct::from_compiled`] instead of compiling twice.
#[derive(Clone, Debug)]
pub enum CompiledConstraint {
    /// A pure posynomial dominator.
    Pure(CompiledPosynomial),
    /// A dominator with `max`/`min` atoms (piecewise posynomial).
    Mixed(MaxPosynomial),
}

/// Reusable scratch for constraint evaluation (sized lazily; one per solve).
#[derive(Default)]
struct ConstraintScratch {
    terms: Vec<f64>,
    grad: Vec<f64>,
    max: MaxScratch,
}

impl CompiledConstraint {
    /// Compile a dominator expression: pure posynomial when possible,
    /// piecewise max-posynomial otherwise, `None` when neither form fits.
    pub fn compile(expr: &Expr, vars: &[String]) -> Option<CompiledConstraint> {
        if let Some(pure) = CompiledPosynomial::compile(expr, vars) {
            return Some(CompiledConstraint::Pure(pure));
        }
        MaxPosynomial::compile(expr, vars).map(CompiledConstraint::Mixed)
    }

    /// Whether this is the piecewise max-posynomial form.
    pub fn is_max_form(&self) -> bool {
        matches!(self, CompiledConstraint::Mixed(_))
    }

    /// Mark every variable that occurs (with a non-zero exponent) anywhere in
    /// the constraint — monomial parts and all max/min branches.
    fn mark_occurring_vars(&self, mask: &mut [bool]) {
        let mark_poly = |p: &CompiledPosynomial, mask: &mut [bool]| {
            for k in 0..p.n_terms() {
                for (m, &e) in mask.iter_mut().zip(p.exponent_row(k)) {
                    *m |= e != 0;
                }
            }
        };
        match self {
            CompiledConstraint::Pure(p) => mark_poly(p, mask),
            CompiledConstraint::Mixed(m) => {
                for k in 0..m.n_terms() {
                    for (slot, &e) in mask.iter_mut().zip(m.exponent_row(k)) {
                        *slot |= e != 0;
                    }
                }
                for j in 0..m.n_atoms() {
                    for branch in m.atom_branches(j) {
                        mark_poly(branch, mask);
                    }
                }
            }
        }
    }

    fn eval(&self, x: &[f64], scratch: &mut ConstraintScratch) -> f64 {
        match self {
            CompiledConstraint::Pure(p) => p.eval(x),
            CompiledConstraint::Mixed(m) => m.eval(x, &mut scratch.max),
        }
    }

    /// Value plus full analytic log-space gradient in one pass.
    fn eval_grad(&self, x: &[f64], grad: &mut [f64], scratch: &mut ConstraintScratch) -> f64 {
        match self {
            CompiledConstraint::Pure(p) => {
                scratch.terms.resize(p.n_terms(), 0.0);
                let v = p.eval_terms(x, &mut scratch.terms);
                p.grad_log_from_terms(&scratch.terms, grad);
                v
            }
            CompiledConstraint::Mixed(m) => m.eval_grad(x, grad, &mut scratch.max),
        }
    }

    /// Value plus derivative w.r.t. a common log-scale of the `active`
    /// variables (the one derivative Newton constraint-projection needs).
    fn eval_and_scale_derivative(
        &self,
        x: &[f64],
        active: impl Fn(usize) -> bool,
        scratch: &mut ConstraintScratch,
    ) -> (f64, f64) {
        match self {
            CompiledConstraint::Pure(p) => p.eval_and_scale_derivative(x, active),
            CompiledConstraint::Mixed(m) => {
                scratch.grad.resize(x.len(), 0.0);
                let (grad, max) = (&mut scratch.grad, &mut scratch.max);
                let v = m.eval_grad(x, grad, max);
                let d = grad
                    .iter()
                    .enumerate()
                    .filter(|&(t, _)| active(t))
                    .map(|(_, g)| g)
                    .sum();
                (v, d)
            }
        }
    }
}

/// A constrained product-maximization problem over tile extents.
#[derive(Clone, Debug)]
pub struct ConstrainedProduct {
    /// Names of the tile-extent variables `D_t` (one per iteration variable).
    pub variables: Vec<String>,
    /// The objective `χ(D)` (number of computed vertices).
    pub objective: Expr,
    /// The constraint function `g(D)` (dominator-set size); the constraint is
    /// `g(D) ≤ X`.
    pub constraint: Expr,
    /// Both sides compiled to posynomial form, when possible; `None` falls
    /// back to the retained `Expr`-eval path (e.g. `Max` in the dominator).
    compiled: Option<CompiledProblem>,
}

/// Result of solving a [`ConstrainedProduct`] at a specific `X`.
#[derive(Clone, Debug)]
pub struct ProductSolution {
    /// Optimal tile extents in the order of [`ConstrainedProduct::variables`].
    pub extents: Vec<f64>,
    /// The objective value `χ(X)`.
    pub chi: f64,
    /// The constraint value at the solution (≈ X when the constraint is active).
    pub constraint_value: f64,
}

/// A fitted power law `χ(X) ≈ coeff · X^exponent`.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerLaw {
    /// The multiplicative constant `c`.
    pub coeff: f64,
    /// The exponent σ as an exact small rational.
    pub exponent: Rational,
}

/// Per-call accounting returned by the instrumented solver entry points,
/// aggregated over one or more KKT solves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveInfo {
    /// KKT solves performed.
    pub solves: u32,
    /// Total KKT fixed-point iterations.
    pub iterations: u64,
    /// Solves that exhausted the iteration budget without converging.
    pub cap_hits: u32,
    /// Whether the constraint was in piecewise max-posynomial form.
    pub max_form: bool,
}

impl SolveInfo {
    /// Accumulate another call's accounting into this one.
    pub fn absorb(&mut self, other: SolveInfo) {
        self.solves += other.solves;
        self.iterations += other.iterations;
        self.cap_hits += other.cap_hits;
        self.max_form |= other.max_form;
    }
}

impl ConstrainedProduct {
    /// Build a problem from the variable list, objective and constraint.
    ///
    /// Both expressions are compiled once into posynomial form here; every
    /// subsequent [`Self::solve`] (the three `fit_power_law` probes plus the
    /// tile-shape solve) reuses the compiled arrays.
    pub fn new(variables: Vec<String>, objective: Expr, constraint: Expr) -> Self {
        let compiled = match (
            CompiledPosynomial::compile(&objective, &variables),
            CompiledConstraint::compile(&constraint, &variables),
        ) {
            (Some(obj), Some(con)) => Some(CompiledProblem {
                objective: obj,
                constraint: con,
            }),
            _ => None,
        };
        ConstrainedProduct {
            variables,
            objective,
            constraint,
            compiled,
        }
    }

    /// Build a problem from forms that were already compiled elsewhere (the
    /// cross-subgraph solve cache compiles both sides for its canonical key),
    /// skipping the duplicate expansion/compilation of [`Self::new`].
    ///
    /// The caller must pass the compiled forms of exactly `objective` /
    /// `constraint` over `variables`; the solve runs on the compiled arrays,
    /// so a mismatch would silently solve the wrong problem.
    pub fn from_compiled(
        variables: Vec<String>,
        objective: Expr,
        constraint: Expr,
        compiled_objective: CompiledPosynomial,
        compiled_constraint: CompiledConstraint,
    ) -> Self {
        debug_assert_eq!(compiled_objective.n_vars(), variables.len());
        ConstrainedProduct {
            variables,
            objective,
            constraint,
            compiled: Some(CompiledProblem {
                objective: compiled_objective,
                constraint: compiled_constraint,
            }),
        }
    }

    /// Build a problem that never uses the compiled fast path — the retained
    /// reference configuration for differential testing.
    pub fn new_reference(variables: Vec<String>, objective: Expr, constraint: Expr) -> Self {
        ConstrainedProduct {
            variables,
            objective,
            constraint,
            compiled: None,
        }
    }

    /// Whether the compiled-posynomial fast path is available.
    pub fn is_compiled(&self) -> bool {
        self.compiled.is_some()
    }

    fn eval(&self, e: &Expr, extents: &[f64]) -> f64 {
        let mut bindings = BTreeMap::new();
        for (name, v) in self.variables.iter().zip(extents) {
            bindings.insert(name.clone(), *v);
        }
        e.eval(&bindings).unwrap_or(f64::NAN)
    }

    /// Numeric partial derivative of `e` w.r.t. variable index `t`
    /// (central difference in log-space for robustness).
    fn d_dlog(&self, e: &Expr, extents: &[f64], t: usize) -> f64 {
        let h: f64 = 1e-5;
        let mut up = extents.to_vec();
        let mut dn = extents.to_vec();
        up[t] *= (h).exp();
        dn[t] *= (-h).exp();
        (self.eval(e, &up) - self.eval(e, &dn)) / (2.0 * h)
    }

    /// Scale all *unclamped* extents by a common factor so that the constraint
    /// is active (`g(D) = x`), using bisection on the log of the factor.
    fn rescale_to_constraint(&self, extents: &mut [f64], x: f64, clamped: &[bool]) {
        let g = |scale: f64, base: &[f64]| -> f64 {
            let scaled: Vec<f64> = base
                .iter()
                .zip(clamped)
                .map(|(v, c)| if *c { *v } else { (v * scale).max(1.0) })
                .collect();
            self.eval(&self.constraint, &scaled)
        };
        let base = extents.to_vec();
        let (mut lo, mut hi) = (1e-9_f64, 1e9_f64);
        // The constraint is increasing in the scale; find the active point.
        if g(hi, &base) < x {
            // Constraint can never reach X (all variables effectively capped):
            // leave as-is.
            return;
        }
        for _ in 0..200 {
            let mid = (lo.ln() + hi.ln()) / 2.0;
            let mid = mid.exp();
            if g(mid, &base) > x {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let scale = (lo * hi).sqrt();
        for (v, c) in extents.iter_mut().zip(clamped) {
            if !*c {
                *v = (*v * scale).max(1.0);
            }
        }
    }

    /// Solve `max objective s.t. constraint ≤ x, D_t ≥ 1` with a damped
    /// multiplicative KKT fixed point.
    ///
    /// At an interior optimum the KKT conditions require the per-variable
    /// "benefit/cost" ratios `(D_t ∂χ/∂D_t) / (D_t ∂g/∂D_t)` to be equal; the
    /// iteration nudges each `log D_t` towards the geometric mean of these
    /// ratios and re-projects onto the active constraint.
    ///
    /// Dispatches to the compiled-posynomial fast path (analytic gradients,
    /// Newton constraint projection) when compilation succeeded at
    /// construction; the `Expr`-eval reference path otherwise.
    pub fn solve(&self, x: f64) -> ProductSolution {
        self.solve_instrumented(x).0
    }

    /// [`Self::solve`] plus per-call accounting: iteration count, whether the
    /// iteration budget was exhausted, and whether the constraint is in
    /// max-posynomial form.  The cross-subgraph cache uses this to surface
    /// non-convergence in `SolverSummary` instead of silently returning the
    /// last iterate.
    pub fn solve_instrumented(&self, x: f64) -> (ProductSolution, SolveInfo) {
        self.solve_seeded_instrumented(x, None)
    }

    /// [`Self::solve_instrumented`] with a warm-start shape: the iteration
    /// begins from `warm` (projected back onto the constraint) instead of the
    /// symmetric cold start.  The power-law probes and the tile-shape solve
    /// are the same problem at different `X`, so continuing from the previous
    /// optimum removes almost all travel — and keeps every probe in the same
    /// basin, which a multi-extremal objective does not guarantee for
    /// independent cold starts.
    pub fn solve_seeded_instrumented(
        &self,
        x: f64,
        warm: Option<&[f64]>,
    ) -> (ProductSolution, SolveInfo) {
        self.solve_seeded_governed(x, warm, None)
            // lint:allow(unwrap-expect): Deadline::none() never expires; this solve is explicitly ungoverned
            .expect("ungoverned solve cannot expire")
    }

    /// [`Self::solve_seeded_instrumented`] under a [`Deadline`]: the KKT loop
    /// polls the deadline every few iterations and returns [`Expired`] instead
    /// of an iterate when the budget is gone.  An expired solve records
    /// nothing into the process-wide histogram — it is not a solve, capped or
    /// otherwise, just abandoned work.
    pub fn solve_seeded_governed(
        &self,
        x: f64,
        warm: Option<&[f64]>,
        deadline: Option<&Deadline>,
    ) -> Result<(ProductSolution, SolveInfo), Expired> {
        SOLVES.fetch_add(1, Ordering::Relaxed);
        let max_form = self
            .compiled
            .as_ref()
            .is_some_and(|c| c.constraint.is_max_form());
        if max_form {
            MAX_FORM_SOLVES.fetch_add(1, Ordering::Relaxed);
        }
        let run = |start: Option<&[f64]>| match &self.compiled {
            Some(c) => self.solve_compiled(c, x, start, deadline),
            None => self.solve_reference_impl(x, start, deadline),
        };
        if self.compiled.is_some() {
            COMPILED_SOLVES.fetch_add(1, Ordering::Relaxed);
        }
        let (mut sol, mut iterations, mut capped) = run(warm)?;
        if capped {
            // Continuation restart: a cold start that exhausted the budget
            // mid-travel usually converges in a few dozen iterations when
            // resumed from its own best iterate with fresh trust radii.  The
            // restart is part of the same logical solve, and the solve only
            // counts as converged if the iterate actually returned is the
            // restart's converged one — falling back to the first leg's
            // better-but-capped iterate keeps the cap hit.
            let (sol2, it2, capped2) = run(Some(&sol.extents))?;
            iterations += it2;
            if sol2.chi >= sol.chi {
                sol = sol2;
                capped = capped2;
            }
        }
        record_solve(iterations, capped);
        let info = SolveInfo {
            solves: 1,
            iterations,
            cap_hits: u32::from(capped),
            max_form,
        };
        Ok((sol, info))
    }

    /// The retained `Expr`-eval solver — finite-difference gradients and
    /// bisection constraint projection, numerically independent of the
    /// compiled arrays — kept as the differential-testing reference and the
    /// fallback for models outside (max-)posynomial form.
    ///
    /// Both paths share the same *stepping policy* (sign-based trust-region
    /// steps, rescale-rider variables, objective-stagnation convergence) so
    /// their snapped outputs stay byte-identical; everything numeric under
    /// that policy (evaluation, gradients, projection) is computed by
    /// entirely different machinery.
    pub fn solve_reference(&self, x: f64) -> ProductSolution {
        let (sol, iterations, capped) = self
            .solve_reference_impl(x, None, None)
            // lint:allow(unwrap-expect): Deadline::none() never expires; this solve is explicitly ungoverned
            .expect("ungoverned solve cannot expire");
        record_solve(iterations, capped);
        sol
    }

    fn solve_reference_impl(
        &self,
        x: f64,
        warm: Option<&[f64]>,
        deadline: Option<&Deadline>,
    ) -> Result<(ProductSolution, u64, bool), Expired> {
        let n = self.variables.len();
        assert!(n > 0, "constrained product needs at least one variable");
        // Initial guess: the warm-start shape when given, otherwise equal
        // extents sized so the constraint is roughly met.
        let mut extents = match warm {
            Some(w) => w.iter().map(|v| v.max(1.0)).collect(),
            None => vec![x.powf(1.0 / n as f64).max(1.0); n],
        };
        let mut clamped = vec![false; n];
        self.rescale_to_constraint(&mut extents, x, &clamped);
        // Rescale-rider detection from the expression structure (the
        // compiled path reads the same fact off the exponent matrices).
        let constraint_syms = self.constraint.symbols();
        let in_constraint: Vec<bool> = self
            .variables
            .iter()
            .map(|v| constraint_syms.contains(v))
            .collect();

        let mut best = (f64::NEG_INFINITY, extents.clone());
        let mut iters_done = 0u64;
        let mut converged = false;
        let mut radius = vec![0.1f64; n];
        let mut prev_dev = vec![0.0f64; n];
        let mut best_improved_iter = 0usize;
        for iter in 0..KKT_ITERATION_CAP {
            if iter & DEADLINE_POLL_MASK == 0 && deadline.is_some_and(|d| d.expired()) {
                return Err(Expired);
            }
            iters_done += 1;
            // Benefit/cost ratios in log space.
            let mut log_ratio = vec![0.0; n];
            let mut n_active = 0usize;
            let mut ratio_sum = 0.0;
            for t in 0..n {
                if !in_constraint[t] {
                    clamped[t] = false;
                    log_ratio[t] = 0.0;
                    continue;
                }
                let num = self.d_dlog(&self.objective, &extents, t).max(1e-300);
                let den = self.d_dlog(&self.constraint, &extents, t).max(1e-300);
                log_ratio[t] = (num / den).ln();
                let at_box = extents[t] <= 1.0 + 1e-9;
                clamped[t] = at_box && log_ratio[t] < 0.0;
                if !clamped[t] {
                    n_active += 1;
                    ratio_sum += log_ratio[t];
                }
            }
            if n_active == 0 {
                converged = true;
                break;
            }
            let mean = ratio_sum / n_active as f64;
            let mut max_dev: f64 = 0.0;
            let mut applied_max: f64 = 0.0;
            for t in 0..n {
                if clamped[t] || !in_constraint[t] {
                    prev_dev[t] = 0.0;
                    continue;
                }
                let dev = log_ratio[t] - mean;
                max_dev = max_dev.max(dev.abs());
                // Deadband: a deviation at gradient-noise level must not
                // trigger a radius-sized step (it would kick a converged
                // symmetric iterate off the optimum).
                if dev.abs() < DEV_DEADBAND {
                    prev_dev[t] = 0.0;
                    continue;
                }
                if dev * prev_dev[t] > 0.0 {
                    radius[t] = (radius[t] * 1.2).min(0.35);
                } else if dev * prev_dev[t] < 0.0 {
                    radius[t] *= 0.7;
                }
                prev_dev[t] = dev;
                let step = dev.signum() * radius[t];
                applied_max = applied_max.max(step.abs());
                extents[t] = (extents[t] * step.exp()).max(1.0);
            }
            self.rescale_to_constraint(&mut extents, x, &clamped);
            let chi = self.eval(&self.objective, &extents);
            if chi > best.0 {
                if chi > best.0 * (1.0 + 1e-7) {
                    best_improved_iter = iter;
                }
                best = (chi, extents.clone());
            }
            if max_dev < DEV_DEADBAND || applied_max < 1e-10 || iter >= best_improved_iter + 30 {
                converged = true;
                break;
            }
        }
        let extents = best.1;
        let sol = ProductSolution {
            chi: self.eval(&self.objective, &extents),
            constraint_value: self.eval(&self.constraint, &extents),
            extents,
        };
        Ok((sol, iters_done, !converged))
    }

    /// The compiled fast path: the same damped multiplicative KKT fixed point
    /// as [`Self::solve_reference`], but with the objective/constraint term
    /// values computed once per iteration and shared across all `n` analytic
    /// log-space partial derivatives, and with the constraint projection done
    /// by safeguarded Newton on `log g` instead of 200-step bisection.
    ///
    /// Stepping is a sign-based trust region (see the loop comments): each
    /// variable moves by the sign of its ratio deviation times a per-variable
    /// radius that grows under a stable sign and halves on a flip, so the
    /// kink oscillation of max-form constraints (the argmax branch flips,
    /// the one-sided subgradient makes the raw deviation unbounded, and the
    /// old damped step bounced to the iteration cap) damps itself variable
    /// by variable.  Max-form solves additionally anneal the tie window of
    /// [`MaxPosynomial`]'s branch averaging from 25% down to the exact
    /// subgradient — a Polyak-style smoothing that keeps the surrogate
    /// smooth while the iterates travel.
    fn solve_compiled(
        &self,
        c: &CompiledProblem,
        x: f64,
        warm: Option<&[f64]>,
        deadline: Option<&Deadline>,
    ) -> Result<(ProductSolution, u64, bool), Expired> {
        let n = self.variables.len();
        assert!(n > 0, "constrained product needs at least one variable");
        let mut extents: Vec<f64> = match warm {
            Some(w) => w.iter().map(|v| v.max(1.0)).collect(),
            None => vec![x.powf(1.0 / n as f64).max(1.0); n],
        };
        let mut clamped = vec![false; n];
        // Scratch buffers reused across iterations — the solve allocates a
        // fixed set of vectors up front and nothing inside the loop.
        let mut obj_terms = vec![0.0; c.objective.n_terms()];
        let mut d_obj = vec![0.0; n];
        let mut d_con = vec![0.0; n];
        let mut log_ratio = vec![0.0; n];
        let mut scaled = vec![0.0; n];
        let mut scratch = ConstraintScratch::default();
        rescale_newton(
            &c.constraint,
            &mut extents,
            x,
            &clamped,
            &mut scaled,
            &mut scratch,
        );

        let max_form = c.constraint.is_max_form();
        let mut best = (f64::NEG_INFINITY, extents.clone());
        let mut iters_done = 0u64;
        let mut converged = false;
        // Per-variable trust radii and the previous ratio deviations
        // (sign-change detection), plus — for max-form constraints — the
        // Polyak smoothing schedule: the tie window starts wide (branches
        // within 25% average their gradients, so the surrogate is smooth
        // while the iterates travel) and anneals down to the floor (the
        // exact subgradient) as the iterates settle.
        let mut tie_window = if max_form { 0.25 } else { TIE_REL_FLOOR };
        let mut radius = vec![0.1f64; n];
        let mut prev_dev = vec![0.0f64; n];
        let mut best_improved_iter = 0usize;
        // Variables absent from the constraint have an infinite benefit/cost
        // ratio (the objective is unbounded along them — degenerate merged
        // models produce these); stepping them chases an artifact.  They are
        // excluded from the KKT ratios and simply ride the common rescale
        // factor, exactly what they do on the reference path where the huge
        // clamped ratio is immediately undone by the bisection projection.
        let mut in_constraint = vec![false; n];
        c.constraint.mark_occurring_vars(&mut in_constraint);
        let debug = std::env::var("SOAP_DEBUG_KKT").is_ok();
        for iter in 0..KKT_ITERATION_CAP {
            if iter & DEADLINE_POLL_MASK == 0 && deadline.is_some_and(|d| d.expired()) {
                return Err(Expired);
            }
            iters_done += 1;
            if max_form {
                scratch.max.set_tie_window(tie_window);
                tie_window = (tie_window * 0.85).max(TIE_REL_FLOOR);
            }
            c.objective.eval_terms(&extents, &mut obj_terms);
            c.objective.grad_log_from_terms(&obj_terms, &mut d_obj);
            c.constraint.eval_grad(&extents, &mut d_con, &mut scratch);
            let mut n_active = 0usize;
            let mut ratio_sum = 0.0;
            for t in 0..n {
                if !in_constraint[t] {
                    clamped[t] = false;
                    log_ratio[t] = 0.0;
                    continue;
                }
                let num = d_obj[t].max(1e-300);
                let den = d_con[t].max(1e-300);
                log_ratio[t] = (num / den).ln();
                let at_box = extents[t] <= 1.0 + 1e-9;
                clamped[t] = at_box && log_ratio[t] < 0.0;
                if !clamped[t] {
                    n_active += 1;
                    ratio_sum += log_ratio[t];
                }
            }
            if n_active == 0 {
                converged = true;
                break;
            }
            let mean = ratio_sum / n_active as f64;
            let mut max_dev: f64 = 0.0;
            for t in 0..n {
                if !clamped[t] && in_constraint[t] {
                    max_dev = max_dev.max((log_ratio[t] - mean).abs());
                }
            }
            // Trust-region step: each variable moves by the *sign* of its
            // ratio deviation times its own trust radius (resilient
            // propagation).  The radius adapts — it grows while the
            // deviation keeps its sign (steady travel: multi-block and
            // bandwidth-bound models mix so slowly that a deviation-
            // proportional step would creep for hundreds of iterations) and
            // halves when the sign flips (overshoot, or bouncing across a
            // max-form kink where the one-sided subgradient makes the raw
            // deviation essentially unbounded) — damping exactly the
            // variables that oscillate without starving the ones still in
            // transit.
            const MAX_RADIUS: f64 = 0.35;
            let mut applied_max: f64 = 0.0;
            for t in 0..n {
                if clamped[t] || !in_constraint[t] {
                    prev_dev[t] = 0.0;
                    continue;
                }
                let dev = log_ratio[t] - mean;
                // Deadband: a deviation at gradient-noise level must not
                // trigger a radius-sized step (it would kick a converged
                // symmetric iterate off the optimum).
                if dev.abs() < DEV_DEADBAND {
                    prev_dev[t] = 0.0;
                    continue;
                }
                if dev * prev_dev[t] > 0.0 {
                    radius[t] = (radius[t] * 1.2).min(MAX_RADIUS);
                } else if dev * prev_dev[t] < 0.0 {
                    radius[t] *= 0.7;
                }
                prev_dev[t] = dev;
                let step = dev.signum() * radius[t];
                applied_max = applied_max.max(step.abs());
                extents[t] = (extents[t] * step.exp()).max(1.0);
            }
            rescale_newton(
                &c.constraint,
                &mut extents,
                x,
                &clamped,
                &mut scaled,
                &mut scratch,
            );
            let chi = c.objective.eval(&extents);
            if chi > best.0 {
                if chi > best.0 * (1.0 + 1e-7) {
                    best_improved_iter = iter;
                }
                best.0 = chi;
                best.1.copy_from_slice(&extents);
            }
            if debug {
                eprintln!(
                    "iter {iter:3} dev {max_dev:9.3e} applied {applied_max:9.3e} gap {:9.3e} win {tie_window:9.3e} chi {chi:14.8e} radii {:?} extents {:?}",
                    scratch.max.kink_gap(),
                    radius.iter().map(|r| *r as f32).collect::<Vec<_>>(),
                    extents.iter().map(|e| *e as f32).collect::<Vec<_>>()
                );
            }
            if max_dev < DEV_DEADBAND {
                converged = true;
                break;
            }
            // Objective-stagnation convergence: the damped fixed point often
            // orbits the optimum with a ratio deviation that never reaches
            // 1e-10 (slow mixing on multi-block models; on max-form models
            // the uniform branch average is a subgradient, not the exact KKT
            // multiplier combination, so the deviation need not vanish at
            // all).  Once the best objective has not improved by a relative
            // 1e-7 for 30 iterations the orbit's best point is already
            // recorded — the worst further drift (30·1e-7 per window) sits
            // well under the 3e-5 rational/closed-form snapping tolerances,
            // so running to the cap cannot change any output.
            if iter >= best_improved_iter + 30 && (!max_form || tie_window <= TIE_REL_FLOOR) {
                converged = true;
                break;
            }
            // Trust radii collapsed: the iterates sit on a kink (or the box)
            // and nothing can move any more.
            if (!max_form || tie_window <= TIE_REL_FLOOR) && applied_max < 1e-10 {
                converged = true;
                break;
            }
        }
        let extents = best.1;
        let sol = ProductSolution {
            chi: c.objective.eval(&extents),
            constraint_value: c.constraint.eval(&extents, &mut scratch),
            extents,
        };
        Ok((sol, iters_done, !converged))
    }

    /// Fit `χ(X) = c·X^σ` by solving at several large `X` values.
    ///
    /// The exponent is rationalized (denominator ≤ 12) because the theory
    /// guarantees σ is a small rational (an LP optimum over unit constraints).
    pub fn fit_power_law(&self) -> PowerLaw {
        self.fit_power_law_instrumented().0
    }

    /// [`Self::fit_power_law`] plus the aggregated accounting of its probe
    /// solves and the final probe's optimal extents (callers reuse them to
    /// warm-start the tile-shape solve).
    ///
    /// The probes warm-start each other: the `4X` problem continues from the
    /// `X` optimum, which keeps all three in the same basin of the
    /// multi-extremal objective and removes the repeated travel phase.
    pub fn fit_power_law_instrumented(&self) -> (PowerLaw, SolveInfo, Vec<f64>) {
        self.fit_power_law_governed(None)
            // lint:allow(unwrap-expect): Deadline::none() never expires; this fit is explicitly ungoverned
            .expect("ungoverned fit cannot expire")
    }

    /// [`Self::fit_power_law_instrumented`] under a [`Deadline`]: returns
    /// [`Expired`] as soon as any probe solve runs out of budget (a partial
    /// probe set cannot produce a trustworthy exponent fit).
    pub fn fit_power_law_governed(
        &self,
        deadline: Option<&Deadline>,
    ) -> Result<(PowerLaw, SolveInfo, Vec<f64>), Expired> {
        let mut info = SolveInfo::default();
        let xs = POWER_LAW_PROBES;
        let mut warm: Option<Vec<f64>> = None;
        let mut chis = Vec::with_capacity(xs.len());
        for &x in &xs {
            let (sol, i) = self.solve_seeded_governed(x, warm.as_deref(), deadline)?;
            info.absorb(i);
            chis.push(sol.chi);
            warm = Some(sol.extents);
        }
        let sigma_12 = (chis[1] / chis[0]).ln() / (xs[1] / xs[0]).ln();
        let sigma_23 = (chis[2] / chis[1]).ln() / (xs[2] / xs[1]).ln();
        let sigma_est = (sigma_12 + sigma_23) / 2.0;
        let exponent = Rational::approximate(sigma_est, 12, 0.02)
            .unwrap_or_else(|| Rational::approximate(sigma_est, 48, 0.05).unwrap_or(Rational::ONE));
        // The finite-X estimates carry an O(X^{-1/2}) error from the Lemma-3
        // surface terms; Richardson extrapolation over the last two samples
        // (X ratio 4, so the error halves) cancels it to first order.
        let c2 = chis[1] / xs[1].powf(exponent.to_f64());
        let c3 = chis[2] / xs[2].powf(exponent.to_f64());
        let coeff = 2.0 * c3 - c2;
        Ok((
            PowerLaw { coeff, exponent },
            info,
            // lint:allow(unwrap-expect): the probe loop above always runs and sets warm
            warm.expect("three probes ran"),
        ))
    }
}

impl PowerLaw {
    /// The exponent as f64.
    pub fn sigma(&self) -> f64 {
        self.exponent.to_f64()
    }

    /// The optimal `X₀ = σ·S/(σ−1)` minimizing `ρ(X) = c·X^σ/(X−S)`, as an
    /// expression in the symbol `S`.  Returns `None` when σ ≤ 1 (the optimum
    /// is at `X → ∞`).
    pub fn optimal_x(&self) -> Option<Expr> {
        if self.exponent <= Rational::ONE {
            return None;
        }
        let sigma = self.exponent;
        let factor = sigma / (sigma - Rational::ONE);
        Some(Expr::num(factor).mul(Expr::sym("S")))
    }

    /// The computational intensity `ρ(S) = min_X χ(X)/(X−S)` as a symbolic
    /// expression in `S`:
    ///
    /// * σ > 1:  `ρ = c · σ^σ/(σ−1)^{σ−1} · S^{σ−1}`
    /// * σ ≤ 1:  `ρ = c` (the limit X → ∞).
    ///
    /// The leading constant is passed through closed-form recognition so the
    /// result prints like the paper's (e.g. `1/2·sqrt(S)`).
    pub fn intensity(&self) -> Expr {
        let sigma = self.exponent;
        if sigma <= Rational::ONE {
            return ClosedForm::recognize(self.coeff).to_expr();
        }
        let sig_f = sigma.to_f64();
        let constant = self.coeff * sig_f.powf(sig_f) / (sig_f - 1.0).powf(sig_f - 1.0);
        let const_expr = ClosedForm::recognize(constant).to_expr();
        const_expr.mul(Expr::sym("S").pow(sigma - Rational::ONE))
    }

    /// Numeric intensity for a concrete fast-memory size `S`, computed by
    /// golden-section minimization of `c·X^σ/(X−S)` (useful for validating the
    /// closed form and for pebbling comparisons at small S).
    pub fn intensity_at(&self, s: f64) -> f64 {
        let sigma = self.sigma();
        if sigma <= 1.0 {
            return self.coeff;
        }
        let rho = |x: f64| self.coeff * x.powf(sigma) / (x - s);
        // Golden-section search on [S(1+ε), 1000·S·σ].
        let (mut a, mut b) = (s * 1.0001, s * sigma / (sigma - 1.0) * 50.0);
        let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
        for _ in 0..200 {
            let c = b - phi * (b - a);
            let d = a + phi * (b - a);
            if rho(c) < rho(d) {
                b = d;
            } else {
                a = c;
            }
        }
        rho((a + b) / 2.0)
    }
}

/// Scale all *unclamped* extents by a common factor so the compiled
/// constraint is active (`g(D) = x`): safeguarded Newton on `log g` as a
/// function of the log-scale, replacing the reference path's 200-step
/// bisection.  `log g` is near-linear in the log-scale (each term scales like
/// `e^{deg·s}`), so Newton converges in a handful of iterations; every step
/// stays inside a shrinking bisection bracket for robustness, and the
/// `max(·, 1)` box clamp is honoured exactly like the reference.
fn rescale_newton(
    con: &CompiledConstraint,
    extents: &mut [f64],
    x: f64,
    clamped: &[bool],
    scaled: &mut [f64],
    scratch: &mut ConstraintScratch,
) {
    let apply = |u: f64, extents: &[f64], scaled: &mut [f64]| {
        let factor = u.exp();
        for ((s, &v), &c) in scaled.iter_mut().zip(extents.iter()).zip(clamped) {
            *s = if c { v } else { (v * factor).max(1.0) };
        }
    };
    let (mut lo, mut hi) = ((1e-9f64).ln(), (1e9f64).ln());
    apply(hi, extents, scaled);
    if con.eval(scaled, scratch) < x {
        // Constraint can never reach X (all variables effectively capped):
        // leave as-is.
        return;
    }
    let mut u = 0.0f64;
    let mut converged = false;
    for _ in 0..64 {
        apply(u, extents, scaled);
        let (g, dg) =
            con.eval_and_scale_derivative(scaled, |t| !clamped[t] && scaled[t] > 1.0, scratch);
        if (g - x).abs() <= x * 1e-12 {
            converged = true;
            break;
        }
        if g > x {
            hi = u;
        } else {
            lo = u;
        }
        // Newton on log g: u' = u + (log x − log g)·g/g'.
        let newton = if g > 0.0 && dg > 0.0 {
            u + (x.ln() - g.ln()) * g / dg
        } else {
            f64::NAN
        };
        u = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        if hi - lo <= f64::EPSILON * hi.abs().max(1.0) {
            converged = true;
            break;
        }
    }
    if !converged {
        u = 0.5 * (lo + hi);
    }
    apply(u, extents, scaled);
    extents.copy_from_slice(scaled);
}

/// Minimize a univariate function by golden-section search on `[lo, hi]`.
pub fn golden_section_min(f: impl Fn(f64) -> f64, lo: f64, hi: f64, iters: usize) -> (f64, f64) {
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    for _ in 0..iters {
        let c = b - phi * (b - a);
        let d = a + phi * (b - a);
        if f(c) < f(d) {
            b = d;
        } else {
            a = c;
        }
    }
    let x = (a + b) / 2.0;
    (x, f(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(name: &str) -> Expr {
        Expr::sym(name)
    }

    /// Matrix multiplication: χ = Di·Dj·Dk, g = Di·Dk + Dk·Dj + Di·Dj.
    fn mmm_problem() -> ConstrainedProduct {
        let (di, dj, dk) = (d("Di"), d("Dj"), d("Dk"));
        let chi = di.clone().mul(dj.clone()).mul(dk.clone());
        let g = di
            .clone()
            .mul(dk.clone())
            .add(dk.clone().mul(dj.clone()))
            .add(di.clone().mul(dj.clone()));
        ConstrainedProduct::new(vec!["Di".into(), "Dj".into(), "Dk".into()], chi, g)
    }

    #[test]
    fn mmm_solution_is_symmetric() {
        let p = mmm_problem();
        let sol = p.solve(3.0e6);
        // Optimal tiles: Di = Dj = Dk = sqrt(X/3) = 1000.
        for e in &sol.extents {
            assert!((e - 1000.0).abs() / 1000.0 < 0.01, "extent {e}");
        }
        assert!((sol.chi - 1.0e9).abs() / 1.0e9 < 0.02);
    }

    #[test]
    fn mmm_power_law_matches_paper() {
        let p = mmm_problem();
        let law = p.fit_power_law();
        assert_eq!(law.exponent, Rational::new(3, 2));
        // c = (1/3)^{3/2} ≈ 0.19245
        assert!((law.coeff - 0.19245).abs() < 0.005, "coeff {}", law.coeff);
        // Intensity = sqrt(S)/2.
        let rho = law.intensity();
        let mut b = BTreeMap::new();
        b.insert("S".to_string(), 10000.0);
        assert!((rho.eval(&b).unwrap() - 50.0).abs() < 1.0, "rho {}", rho);
        // Numeric intensity agrees.
        assert!((law.intensity_at(10000.0) - 50.0).abs() < 1.0);
        // X0 = 3S.
        let x0 = law.optimal_x().unwrap();
        assert!((x0.eval(&b).unwrap() - 30000.0).abs() < 1e-6);
    }

    #[test]
    fn stencil_problem_gives_linear_intensity() {
        // jacobi1d-style: χ = Di·Dt, g = Di + 2·Dt.
        let (di, dt) = (d("Di"), d("Dt"));
        let chi = di.clone().mul(dt.clone());
        let g = di.clone().add(Expr::int(2).mul(dt.clone()));
        let p = ConstrainedProduct::new(vec!["Di".into(), "Dt".into()], chi, g);
        let law = p.fit_power_law();
        assert_eq!(law.exponent, Rational::int(2));
        // optimum: Di = X/2, Dt = X/4 -> χ = X²/8.
        assert!((law.coeff - 0.125).abs() < 0.01, "coeff {}", law.coeff);
        // ρ = c·4·S = S/2.
        let rho = law.intensity();
        let mut b = BTreeMap::new();
        b.insert("S".to_string(), 100.0);
        assert!((rho.eval(&b).unwrap() - 50.0).abs() < 2.0, "rho {}", rho);
    }

    #[test]
    fn bandwidth_bound_problem_has_sigma_one() {
        // mvt-like single statement: χ = Di·Dj, g = Di·Dj + Di + Dj.
        let (di, dj) = (d("Di"), d("Dj"));
        let chi = di.clone().mul(dj.clone());
        let g = chi.clone().add(di.clone()).add(dj.clone());
        let p = ConstrainedProduct::new(vec!["Di".into(), "Dj".into()], chi, g);
        let law = p.fit_power_law();
        assert_eq!(law.exponent, Rational::ONE);
        assert!((law.coeff - 1.0).abs() < 0.02);
        assert!(law.optimal_x().is_none());
    }

    #[test]
    fn box_constraints_are_respected() {
        // Objective only involves D1; D2 should stay at 1... but the
        // constraint is driven by D1 only too, so D2 is free — it must not
        // produce NaN or negative extents.
        let p = ConstrainedProduct::new(
            vec!["D1".into(), "D2".into()],
            d("D1").mul(d("D2")),
            d("D1").add(d("D2")),
        );
        let sol = p.solve(100.0);
        assert!(sol.extents.iter().all(|&e| e >= 1.0));
        assert!((sol.constraint_value - 100.0).abs() < 1.0);
        assert!((sol.chi - 2500.0).abs() < 50.0);
    }

    #[test]
    fn compiled_and_reference_paths_agree() {
        let p = mmm_problem();
        assert!(p.is_compiled());
        for x in [1.0e5, 3.0e6, 1.0e8] {
            let fast = p.solve(x);
            let slow = p.solve_reference(x);
            assert!(
                (fast.chi - slow.chi).abs() / slow.chi < 1e-6,
                "chi {} vs {}",
                fast.chi,
                slow.chi
            );
            for (a, b) in fast.extents.iter().zip(&slow.extents) {
                assert!((a - b).abs() / b < 1e-4, "extent {a} vs {b}");
            }
        }
        // The fitted laws must snap to the same rational exponent and the
        // same constant within the closed-form recognition tolerance.
        let fast_law = p.fit_power_law();
        let slow_law = ConstrainedProduct::new_reference(
            p.variables.clone(),
            p.objective.clone(),
            p.constraint.clone(),
        )
        .fit_power_law();
        assert_eq!(fast_law.exponent, slow_law.exponent);
        assert!((fast_law.coeff - slow_law.coeff).abs() / slow_law.coeff < 1e-6);
    }

    #[test]
    fn max_dominators_compile_to_the_piecewise_form() {
        // A §5.3 conservative-union dominator containing Max compiles to the
        // max-posynomial form and must agree with the Expr reference path.
        let p = ConstrainedProduct::new(
            vec!["Dr".into(), "Dw".into()],
            d("Dr").mul(d("Dw")),
            d("Dr").max(d("Dw")).add(d("Dr")),
        );
        assert!(p.is_compiled());
        let sol = p.solve(1000.0);
        let slow = p.solve_reference(1000.0);
        assert!(sol.chi.is_finite() && sol.chi > 0.0);
        assert!((sol.constraint_value - 1000.0).abs() < 1.0);
        assert!(
            (sol.chi - slow.chi).abs() / slow.chi < 1e-4,
            "chi {} vs {}",
            sol.chi,
            slow.chi
        );
        // Max-atoms *inside* monomials (non-injective subscripts like
        // Image[r+σ·w]: max(D_r,D_w)·D_c terms) compile too.
        let conv = ConstrainedProduct::new(
            vec!["Dr".into(), "Dw".into(), "Dc".into()],
            d("Dr").mul(d("Dw")).mul(d("Dc")),
            d("Dr").max(d("Dw")).mul(d("Dc")).add(d("Dr").mul(d("Dw"))),
        );
        assert!(conv.is_compiled());
        let fast = conv.solve(1.0e6);
        let slow = conv.solve_reference(1.0e6);
        assert!((fast.constraint_value - 1.0e6).abs() < 1.0e3);
        // The analytic optimum is a²c with ac + a² = X at a² = X/3:
        // χ = √(X/3)·(2X/3) ≈ 3.849e8.  The compiled path must reach it; the
        // finite-difference reference is allowed to be (and is) a hair under.
        let analytic = (1.0e6f64 / 3.0).sqrt() * (2.0e6 / 3.0);
        assert!(
            (fast.chi - analytic).abs() / analytic < 1e-3,
            "chi {} vs analytic {analytic}",
            fast.chi
        );
        assert!(
            fast.chi >= slow.chi * (1.0 - 1e-3),
            "compiled regressed below reference"
        );
    }

    #[test]
    fn solver_counters_accumulate() {
        // Delta-based: the counters are process-wide and other tests solve
        // concurrently, so only monotone growth is asserted.
        let before = solver_counters();
        let p = mmm_problem();
        p.solve(1.0e6);
        let after = solver_counters();
        assert!(after.solves > before.solves);
        assert!(after.compiled_solves > before.compiled_solves);
        assert!(after.kkt_iterations > before.kkt_iterations);
    }

    #[test]
    fn governed_solve_honours_the_deadline() {
        use crate::deadline::Deadline;
        let p = mmm_problem();
        // An already-cancelled deadline trips the very first poll.
        let dead = Deadline::never();
        dead.cancel();
        assert!(matches!(
            p.solve_seeded_governed(1.0e6, None, Some(&dead)),
            Err(Expired)
        ));
        assert!(matches!(
            p.fit_power_law_governed(Some(&dead)),
            Err(Expired)
        ));
        // A live deadline changes nothing: byte-identical to the ungoverned
        // solve (the poll is on the same iteration schedule either way).
        let live = Deadline::never();
        let (gov, _) = p.solve_seeded_governed(1.0e6, None, Some(&live)).unwrap();
        let (plain, _) = p.solve_seeded_instrumented(1.0e6, None);
        assert_eq!(gov.extents, plain.extents);
        assert_eq!(gov.chi.to_bits(), plain.chi.to_bits());
    }

    #[test]
    fn golden_section_finds_minimum() {
        let (x, v) = golden_section_min(|x| (x - 3.0) * (x - 3.0) + 1.0, 0.0, 10.0, 100);
        assert!((x - 3.0).abs() < 1e-6);
        assert!((v - 1.0).abs() < 1e-9);
    }
}
