//! # soap-kernels
//!
//! The 38 applications evaluated in the paper, expressed as SOAP programs:
//!
//! * [`polybench`] — the 30 Polybench/C 4.2 kernels (Table 2, upper block);
//! * [`nn`] — deep-learning operators and networks: direct convolution,
//!   Softmax, MLP, LeNet-5, and a BERT transformer encoder;
//! * [`lulesh`] — the dominant kernel of the LULESH unstructured
//!   shock-hydrodynamics proxy app;
//! * [`weather`] — the COSMO numerical-weather-prediction stencils
//!   (horizontal diffusion, vertical advection).
//!
//! Each kernel is a function returning a [`soap_ir::Program`] whose loop and
//! access structure follows the published reference implementation, projected
//! onto SOAP where necessary (Section 5 of the paper); the projection applied
//! is documented on each function.  The [`registry`] lists all kernels with
//! the groups used by the Table-2 reproduction harness.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lulesh;
pub mod nn;
pub mod polybench;
pub mod weather;

use soap_ir::Program;

/// The Table-2 grouping of a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelGroup {
    /// Polybench/C suite.
    Polybench,
    /// Neural-network operators and full networks.
    NeuralNetworks,
    /// Unstructured physics / numerical weather prediction ("Various").
    Various,
}

/// A registry entry: kernel name, group, and the program itself.
pub struct KernelEntry {
    /// Kernel name as it appears in Table 2.
    pub name: &'static str,
    /// Table-2 group.
    pub group: KernelGroup,
    /// The SOAP program.
    pub program: Program,
    /// True when the paper reports this kernel under the Section-5.3
    /// injectivity assumption (direct convolution).
    pub assume_injective: bool,
}

/// All 38 applications in Table-2 order.
pub fn registry() -> Vec<KernelEntry> {
    use KernelGroup::*;
    fn entry(name: &'static str, group: KernelGroup, program: Program) -> KernelEntry {
        KernelEntry {
            name,
            group,
            program,
            assume_injective: false,
        }
    }
    let mut entries = Vec::new();
    let mut add = |name: &'static str, group: KernelGroup, program: Program| {
        entries.push(entry(name, group, program))
    };

    // --- Polybench (30) ---
    add("adi", Polybench, polybench::adi());
    add("atax", Polybench, polybench::atax());
    add("bicg", Polybench, polybench::bicg());
    add("cholesky", Polybench, polybench::cholesky());
    add("correlation", Polybench, polybench::correlation());
    add("covariance", Polybench, polybench::covariance());
    add("deriche", Polybench, polybench::deriche());
    add("doitgen", Polybench, polybench::doitgen());
    add("durbin", Polybench, polybench::durbin());
    add("fdtd-2d", Polybench, polybench::fdtd2d());
    add("floyd-warshall", Polybench, polybench::floyd_warshall());
    add("gemm", Polybench, polybench::gemm());
    add("gemver", Polybench, polybench::gemver());
    add("gesummv", Polybench, polybench::gesummv());
    add("gramschmidt", Polybench, polybench::gramschmidt());
    add("heat-3d", Polybench, polybench::heat3d());
    add("jacobi-1d", Polybench, polybench::jacobi1d());
    add("jacobi-2d", Polybench, polybench::jacobi2d());
    add("2mm", Polybench, polybench::two_mm());
    add("3mm", Polybench, polybench::three_mm());
    add("lu", Polybench, polybench::lu());
    add("ludcmp", Polybench, polybench::ludcmp());
    add("mvt", Polybench, polybench::mvt());
    add("nussinov", Polybench, polybench::nussinov());
    add("seidel-2d", Polybench, polybench::seidel2d());
    add("symm", Polybench, polybench::symm());
    add("syr2k", Polybench, polybench::syr2k());
    add("syrk", Polybench, polybench::syrk());
    add("trisolv", Polybench, polybench::trisolv());
    add("trmm", Polybench, polybench::trmm());

    // --- Neural networks (5) ---
    add("softmax", NeuralNetworks, nn::softmax());
    add("mlp", NeuralNetworks, nn::mlp());
    add("lenet-5", NeuralNetworks, nn::lenet5());
    add("bert-encoder", NeuralNetworks, nn::bert_encoder());

    // --- Various (3) ---
    add("lulesh", Various, lulesh::lulesh_kernel());
    add(
        "horizontal-diffusion",
        Various,
        weather::horizontal_diffusion(),
    );
    add("vertical-advection", Various, weather::vertical_advection());

    // Direct convolution: Table 2 lists the §5.3 injective (large-stride) case.
    entries.push(KernelEntry {
        name: "direct-conv",
        group: NeuralNetworks,
        program: nn::direct_convolution(),
        assume_injective: true,
    });

    entries
}

/// Look up a kernel by its Table-2 name.
pub fn by_name(name: &str) -> Option<KernelEntry> {
    registry().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_38_applications() {
        let r = registry();
        assert_eq!(r.len(), 38);
        assert_eq!(
            r.iter()
                .filter(|e| e.group == KernelGroup::Polybench)
                .count(),
            30
        );
        assert_eq!(
            r.iter()
                .filter(|e| e.group == KernelGroup::NeuralNetworks)
                .count(),
            5
        );
        assert_eq!(
            r.iter().filter(|e| e.group == KernelGroup::Various).count(),
            3
        );
    }

    #[test]
    fn all_programs_validate() {
        for entry in registry() {
            assert!(
                entry.program.validate().is_ok(),
                "kernel {} failed validation",
                entry.name
            );
            assert!(
                !entry.program.statements.is_empty(),
                "kernel {} has no statements",
                entry.name
            );
        }
    }

    #[test]
    fn kernel_names_are_unique() {
        let r = registry();
        let mut names: Vec<&str> = r.iter().map(|e| e.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), r.len());
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("gemm").is_some());
        assert!(by_name("bert-encoder").is_some());
        assert!(by_name("not-a-kernel").is_none());
    }
}
