//! Differential tests pinning the compiled solver path (analytic gradients,
//! Newton projection, canonical-key cache) against the retained `Expr`-eval
//! reference: for every merged subgraph model of a set of representative
//! programs, the *analysis outputs* — σ, the symbolic intensity ρ(S), X₀ and
//! the tile-shape exponents — must be byte-identical between the two paths
//! (the numeric trajectories differ in the last ulps; the rational/closed-form
//! snapping must absorb that entirely), and the whole-program bound must be
//! byte-identical run-to-run with the cache in play.

use soap_core::{solve_model, solve_model_reference, AnalysisOptions};
use soap_ir::{Program, ProgramBuilder};
use soap_sdg::subgraphs::enumerate_connected_subgraphs;
use soap_sdg::{analyze_program_with, merged_model, Sdg, SdgOptions};

#[path = "common/fixtures.rs"]
mod fixtures;
use fixtures::chain_of_matmuls;

fn atax() -> Program {
    ProgramBuilder::new("atax")
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "M")])
                .update("tmp", "i")
                .read("A", "i,j")
                .read("x", "j")
        })
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "M")])
                .update("y", "j")
                .read("A", "i,j")
                .read("tmp", "i")
        })
        .build()
        .unwrap()
}

fn figure2() -> Program {
    ProgramBuilder::new("figure2")
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "M")])
                .write("C", "i,j")
                .read_multi("A", &["i", "i+1"])
                .read_multi("B", &["j", "j+1"])
        })
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "K"), ("k", "0", "M")])
                .update("E", "i,j")
                .read("C", "i,k")
                .read("D", "k,j")
        })
        .build()
        .unwrap()
}

fn jacobi_like() -> Program {
    ProgramBuilder::new("jacobi")
        .statement(|st| {
            st.loops(&[("t", "0", "T"), ("i", "1", "N")])
                .write("A", "i,t+1")
                .read_multi("A", &["i-1,t", "i,t", "i+1,t"])
        })
        .build()
        .unwrap()
}

/// `k` independent bert-attention-style blocks: each block's two matmuls read
/// the same input `X_s`, so the merged pair model `{K_s,Q_s}` carries a
/// conservative-union `max` over the two (differently-unified) Lemma-3 sizes
/// — and all `k` pair models are renamed-isomorphic max-form models.
fn union_chain(k: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("union_chain{k}"));
    for s in 0..k {
        let (x, w, v) = (format!("X{s}"), format!("W{s}"), format!("V{s}"));
        let (kk, q) = (format!("K{s}"), format!("Q{s}"));
        let xa = x.clone();
        b = b
            .statement(move |st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N"), ("k", "0", "N")])
                    .update(&kk, "i,j")
                    .read(&xa, "i,k")
                    .read(&w, "k,j")
            })
            .statement(move |st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N"), ("k", "0", "N")])
                    .update(&q, "i,j")
                    .read(&x, "i,k")
                    .read(&v, "k,j")
            });
    }
    b.build().expect("union chain builds")
}

/// Every merged subgraph model of `program`: the compiled and reference
/// solver paths must produce byte-identical snapped outputs.
fn assert_models_differentially_identical(program: &Program) {
    let sdg = Sdg::from_program(program);
    let subgraphs = enumerate_connected_subgraphs(&sdg, 3, 512).subgraphs;
    let opts = AnalysisOptions::default();
    let mut compared = 0usize;
    for arrays in &subgraphs {
        let Ok(model) = merged_model(program, arrays, &opts) else {
            continue;
        };
        let fast = solve_model(&model);
        let slow = solve_model_reference(&model);
        match (fast, slow) {
            (Ok(fast), Ok(slow)) => {
                compared += 1;
                let ctx = format!("{}::{arrays:?}", program.name);
                assert_eq!(fast.sigma, slow.sigma, "{ctx}: σ diverged");
                assert_eq!(
                    format!("{}", fast.rho),
                    format!("{}", slow.rho),
                    "{ctx}: ρ diverged"
                );
                assert_eq!(
                    fast.x0.as_ref().map(|e| format!("{e}")),
                    slow.x0.as_ref().map(|e| format!("{e}")),
                    "{ctx}: X₀ diverged"
                );
                assert_eq!(
                    fast.tile_exponents, slow.tile_exponents,
                    "{ctx}: tile exponents diverged"
                );
            }
            (fast, slow) => {
                assert_eq!(
                    fast.is_ok(),
                    slow.is_ok(),
                    "{}::{arrays:?}: one path failed where the other succeeded",
                    program.name
                );
            }
        }
    }
    assert!(compared > 0, "{}: no models compared", program.name);
}

#[test]
fn compiled_solver_outputs_are_byte_identical_to_the_reference() {
    for program in [
        chain_of_matmuls(6),
        atax(),
        figure2(),
        jacobi_like(),
        union_chain(4),
    ] {
        assert_models_differentially_identical(&program);
    }
}

/// The whole-program bound (cache in play, parallel solve order arbitrary)
/// must be reproducible byte-for-byte across runs, and identical to the
/// bound obtained from an analysis of a renamed-but-isomorphic program
/// modulo the renaming of the size parameters (here: same parameter names,
/// so literally identical).
#[test]
fn analysis_bound_is_deterministic_under_the_cache() {
    for program in [chain_of_matmuls(8), atax(), figure2(), union_chain(8)] {
        let opts = SdgOptions {
            max_subgraph_size: 3,
            max_subgraphs: 512,
            ..SdgOptions::default()
        };
        let first = analyze_program_with(&program, &opts).expect("analysis succeeds");
        for _ in 0..3 {
            let again = analyze_program_with(&program, &opts).expect("analysis succeeds");
            assert_eq!(
                format!("{}", first.bound),
                format!("{}", again.bound),
                "{}: bound not reproducible",
                program.name
            );
            for (a, b) in first.per_array.iter().zip(&again.per_array) {
                assert_eq!(a.array, b.array);
                assert_eq!(a.sigma, b.sigma, "{}: σ of {}", program.name, a.array);
                assert_eq!(
                    format!("{}", a.rho),
                    format!("{}", b.rho),
                    "{}: ρ of {}",
                    program.name,
                    a.array
                );
            }
        }
    }
}

/// The chain cache accounting: a 35-link chain has hundreds of isomorphic
/// merged models but only a handful of distinct structures.
#[test]
fn chain_cache_collapses_isomorphic_models() {
    let program = chain_of_matmuls(35);
    let opts = SdgOptions {
        max_subgraph_size: 3,
        max_subgraphs: 512,
        ..SdgOptions::default()
    };
    let analysis = analyze_program_with(&program, &opts).expect("analysis succeeds");
    let s = analysis.solver;
    assert_eq!(s.subgraphs_enumerated, 102);
    assert!(
        s.cache_hits >= 90,
        "expected ≥90 cache hits on the chain, got {}",
        s.cache_hits
    );
    assert!(
        s.cache_misses <= 6,
        "expected ≤6 distinct structures, got {} misses",
        s.cache_misses
    );
    assert_eq!(s.merge_failures + s.solve_failures, 0);
    assert_eq!(s.kkt_cap_hits, 0, "a chain solve exhausted its budget");
}

/// Max-form models participate in the cache: the union chain's `k` merged
/// pair models are renamed-isomorphic max models, so all but the first hit —
/// under `par_iter`, with the accounting still exact.
#[test]
fn union_chain_max_models_hit_the_cache() {
    let program = union_chain(12);
    let analysis = analyze_program_with(&program, &SdgOptions::default()).expect("analysis");
    let s = analysis.solver;
    assert_eq!(s.uncacheable, 0, "max models must be cacheable now");
    assert!(
        s.max_cache_hits >= 11,
        "expected ≥11 max-form hits (12 isomorphic union-pair models), got {}",
        s.max_cache_hits
    );
    assert_eq!(
        s.max_cache_misses, 1,
        "expected exactly one distinct max structure, got {}",
        s.max_cache_misses
    );
    assert_eq!(s.merge_failures + s.solve_failures, 0);
    assert_eq!(s.kkt_cap_hits, 0, "a union solve exhausted its budget");
}

/// No fixture program may exhaust the KKT iteration budget: the trust-region
/// step must converge well before the cap on every merged model.
#[test]
fn no_fixture_program_hits_the_kkt_cap() {
    for program in [
        chain_of_matmuls(8),
        atax(),
        figure2(),
        jacobi_like(),
        union_chain(6),
    ] {
        let analysis =
            analyze_program_with(&program, &SdgOptions::default()).expect("analysis succeeds");
        assert_eq!(
            analysis.solver.kkt_cap_hits, 0,
            "{}: solves exhausted the iteration budget",
            program.name
        );
    }
}
