//! Shimmed `Mutex` and `Condvar`: drop-in signatures for their `std::sync`
//! counterparts, with every acquire/release/wait/notify a schedule point.

use crate::sched::with_ctx;
use std::ops::{Deref, DerefMut};

/// A model-checked mutex.  Construct inside the model closure only.
pub struct Mutex<T> {
    id: usize,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Register a new lock with the current model run.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            id: with_ctx(|ctrl, _| ctrl.register_lock()),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, parking while another model thread holds it.
    /// Infallible (the model scheduler recovers poisoning), so call sites
    /// port from `lock().expect(..)` unchanged via `lock()`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        with_ctx(|ctrl, me| ctrl.lock_acquire(me, self.id));
        MutexGuard {
            lock: self,
            // Uncontended by construction: the model scheduler serialized us.
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

/// Guard returned by [`Mutex::lock`]; releases (and yields) on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // lint:allow(unwrap-expect): the guard owns the value until drop; absence would be a shim invariant violation
        self.inner.as_ref().expect("guard live")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // lint:allow(unwrap-expect): the guard owns the value until drop; absence would be a shim invariant violation
        self.inner.as_mut().expect("guard live")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(real) = self.inner.take() {
            drop(real);
            with_ctx(|ctrl, me| ctrl.lock_release(me, self.lock.id));
        }
    }
}

/// A model-checked condition variable.
///
/// `notify_one` wakes a *scheduler-chosen* waiter, so every possible wake
/// order is explored; a waiter that is never woken parks forever and
/// surfaces as a deadlock failure — which is exactly how lost-wakeup bugs
/// are detected.
pub struct Condvar {
    id: usize,
}

impl Condvar {
    /// Register a new condvar with the current model run.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Condvar {
        Condvar {
            id: with_ctx(|ctrl, _| ctrl.register_cv()),
        }
    }

    /// Release the guard's lock, park until notified, reacquire, return the
    /// new guard.  Infallible, mirroring [`Mutex::lock`].
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let lock = guard.lock;
        // Drop the real guard but NOT the model lock: cv_wait releases the
        // model lock atomically with parking (no missed-notify window).
        drop(guard.inner.take());
        let lock_id = lock.id;
        drop(guard); // inner is None, so this releases nothing
        let cv_id = self.id;
        with_ctx(|ctrl, me| ctrl.cv_wait(me, cv_id, lock_id));
        // Woken: compete for the lock like a real condvar waiter.
        lock.lock()
    }

    /// Wake one waiter (scheduler-chosen among the parked set).
    pub fn notify_one(&self) {
        with_ctx(|ctrl, me| ctrl.cv_notify_one(me, self.id));
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        with_ctx(|ctrl, me| ctrl.cv_notify_all(me, self.id));
    }
}
