//! The red-blue pebble game (Hong & Kung) on an explicit CDAG.

use crate::cdag::Cdag;
use crate::cdag::VertexId;
use soap_bitset::BitSet;

/// One pebbling move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Move {
    /// Place a red pebble on a vertex carrying a blue pebble (a load).
    Load(VertexId),
    /// Place a blue pebble on a vertex carrying a red pebble (a store).
    Store(VertexId),
    /// Place a red pebble on a vertex whose parents all carry red pebbles.
    Compute(VertexId),
    /// Remove the red pebble from a vertex.
    DiscardRed(VertexId),
}

/// Errors raised while validating a pebbling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PebblingError {
    /// A load targeted a vertex without a blue pebble.
    LoadWithoutBlue(VertexId),
    /// A store targeted a vertex without a red pebble.
    StoreWithoutRed(VertexId),
    /// A compute targeted a vertex whose parents are not all red.
    MissingOperands(VertexId),
    /// A discard targeted a vertex without a red pebble.
    DiscardWithoutRed(VertexId),
    /// The number of red pebbles exceeded the budget `S`.
    RedBudgetExceeded {
        /// The offending vertex.
        vertex: VertexId,
        /// The budget.
        budget: usize,
    },
    /// At the end of the game some program output lacks a blue pebble.
    OutputsNotStored(Vec<VertexId>),
}

/// The state of a red-blue pebble game played on a [`Cdag`] with a red-pebble
/// budget of `S`.
///
/// The red and blue pebble sets are bitsets indexed by vertex id, so every
/// rule check in [`PebbleGame::apply`] is a constant-time bit probe and a
/// whole-game validation costs O(moves · degree).
#[derive(Clone, Debug)]
pub struct PebbleGame<'a> {
    cdag: &'a Cdag,
    budget: usize,
    red: BitSet,
    blue: BitSet,
    reds_in_use: usize,
    loads: usize,
    stores: usize,
}

impl<'a> PebbleGame<'a> {
    /// Start a game: all program inputs carry blue pebbles.
    pub fn new(cdag: &'a Cdag, budget: usize) -> Self {
        let mut blue = BitSet::new(cdag.len());
        for v in cdag.inputs() {
            blue.insert(v);
        }
        PebbleGame {
            cdag,
            budget,
            red: BitSet::new(cdag.len()),
            blue,
            reds_in_use: 0,
            loads: 0,
            stores: 0,
        }
    }

    /// Number of load moves so far.
    pub fn loads(&self) -> usize {
        self.loads
    }

    /// Number of store moves so far.
    pub fn stores(&self) -> usize {
        self.stores
    }

    /// Total I/O cost so far.
    pub fn io(&self) -> usize {
        self.loads + self.stores
    }

    /// Current number of red pebbles.
    pub fn reds_in_use(&self) -> usize {
        self.reds_in_use
    }

    /// True if the vertex currently carries a red pebble.
    pub fn is_red(&self, v: VertexId) -> bool {
        self.red.contains(v)
    }

    /// True if the vertex currently carries a blue pebble.
    pub fn is_blue(&self, v: VertexId) -> bool {
        self.blue.contains(v)
    }

    /// Apply one move, validating the game rules.
    pub fn apply(&mut self, mv: Move) -> Result<(), PebblingError> {
        match mv {
            Move::Load(v) => {
                if !self.blue.contains(v) {
                    return Err(PebblingError::LoadWithoutBlue(v));
                }
                self.place_red(v)?;
                self.loads += 1;
            }
            Move::Store(v) => {
                if !self.red.contains(v) {
                    return Err(PebblingError::StoreWithoutRed(v));
                }
                self.blue.insert(v);
                self.stores += 1;
            }
            Move::Compute(v) => {
                if !self.cdag.parents(v).iter().all(|&p| self.red.contains(p)) {
                    return Err(PebblingError::MissingOperands(v));
                }
                self.place_red(v)?;
            }
            Move::DiscardRed(v) => {
                if !self.red.remove(v) {
                    return Err(PebblingError::DiscardWithoutRed(v));
                }
                self.reds_in_use -= 1;
            }
        }
        Ok(())
    }

    fn place_red(&mut self, v: VertexId) -> Result<(), PebblingError> {
        if !self.red.contains(v) && self.reds_in_use >= self.budget {
            return Err(PebblingError::RedBudgetExceeded {
                vertex: v,
                budget: self.budget,
            });
        }
        if self.red.insert(v) {
            self.reds_in_use += 1;
        }
        Ok(())
    }

    /// Apply a whole move sequence, then check that every program output
    /// carries a blue pebble.  Returns the total I/O cost.
    pub fn run(&mut self, moves: &[Move]) -> Result<usize, PebblingError> {
        for &mv in moves {
            self.apply(mv)?;
        }
        let missing: Vec<VertexId> = self
            .cdag
            .outputs
            .iter()
            .copied()
            .filter(|&v| !self.blue.contains(v))
            .collect();
        if missing.is_empty() {
            Ok(self.io())
        } else {
            Err(PebblingError::OutputsNotStored(missing))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdag::Cdag;
    use soap_ir::ProgramBuilder;
    use std::collections::BTreeMap;

    fn tiny_chain() -> Cdag {
        // B[i] = A[i]; C[i] = B[i]  for i in 0..2
        let p = ProgramBuilder::new("chain")
            .statement(|st| st.loops(&[("i", "0", "N")]).write("B", "i").read("A", "i"))
            .statement(|st| st.loops(&[("i", "0", "N")]).write("C", "i").read("B", "i"))
            .build()
            .unwrap();
        let mut params = BTreeMap::new();
        params.insert("N".to_string(), 2i64);
        Cdag::from_program(&p, &params)
    }

    #[test]
    fn legal_sequence_counts_io() {
        let g = tiny_chain();
        let mut game = PebbleGame::new(&g, 3);
        // Work element by element: load A[i], compute B[i], compute C[i], store C[i].
        let mut moves = Vec::new();
        let computes = g.compute_vertices();
        // computes are ordered: B[0], B[1], C[0], C[1]; inputs A[0], A[1].
        let a: Vec<_> = g.inputs();
        for i in 0..2 {
            moves.push(Move::Load(a[i]));
            moves.push(Move::Compute(computes[i])); // B[i]
            moves.push(Move::DiscardRed(a[i]));
            moves.push(Move::Compute(computes[2 + i])); // C[i]
            moves.push(Move::Store(computes[2 + i]));
            moves.push(Move::DiscardRed(computes[i]));
            moves.push(Move::DiscardRed(computes[2 + i]));
        }
        // B is never stored, which is fine: only C's final versions are outputs
        // of this CDAG... but note B elements are also "latest versions" of B,
        // so they are outputs too and must be stored.
        for i in 0..2 {
            // replay storing B as well
            moves.push(Move::Load(a[i]));
            moves.push(Move::Compute(computes[i]));
            moves.push(Move::Store(computes[i]));
            moves.push(Move::DiscardRed(a[i]));
            moves.push(Move::DiscardRed(computes[i]));
        }
        let io = game.run(&moves).expect("legal pebbling");
        assert_eq!(io, game.loads() + game.stores());
        assert!(game.loads() >= 2 && game.stores() >= 4);
    }

    #[test]
    fn compute_requires_red_parents() {
        let g = tiny_chain();
        let mut game = PebbleGame::new(&g, 2);
        let computes = g.compute_vertices();
        assert_eq!(
            game.apply(Move::Compute(computes[0])),
            Err(PebblingError::MissingOperands(computes[0]))
        );
    }

    #[test]
    fn red_budget_is_enforced() {
        let g = tiny_chain();
        let mut game = PebbleGame::new(&g, 1);
        let inputs = g.inputs();
        game.apply(Move::Load(inputs[0])).unwrap();
        assert!(matches!(
            game.apply(Move::Load(inputs[1])),
            Err(PebblingError::RedBudgetExceeded { .. })
        ));
    }

    #[test]
    fn load_requires_blue() {
        let g = tiny_chain();
        let mut game = PebbleGame::new(&g, 4);
        let computes = g.compute_vertices();
        assert_eq!(
            game.apply(Move::Load(computes[0])),
            Err(PebblingError::LoadWithoutBlue(computes[0]))
        );
    }

    #[test]
    fn missing_outputs_are_reported() {
        let g = tiny_chain();
        let mut game = PebbleGame::new(&g, 4);
        assert!(matches!(
            game.run(&[]),
            Err(PebblingError::OutputsNotStored(_))
        ));
    }
}
