//! The compiled posynomial solver core vs the retained `Expr`-eval reference:
//! single solves, full power-law fits, and the cross-subgraph canonical-key
//! cache on a merged-model workload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use soap_bench::fixtures::mmm_access_model;
use soap_core::access_size::tile_var;
use soap_core::{solve_model, AccessModel};
use soap_sdg::SolveCache;
use soap_symbolic::{ConstrainedProduct, Expr};

fn dv(v: &str) -> Expr {
    Expr::sym(tile_var(v))
}

/// Matrix multiplication: the canonical 3-variable problem.
fn mmm() -> (Vec<String>, Expr, Expr) {
    let chi = dv("i").mul(dv("j")).mul(dv("k"));
    let g = dv("i")
        .mul(dv("k"))
        .add(dv("k").mul(dv("j")))
        .add(dv("i").mul(dv("j")));
    (vec![tile_var("i"), tile_var("j"), tile_var("k")], chi, g)
}

/// A fused two-statement model with a conservative-union `max` dominator —
/// the piecewise compiled form.
fn fused_max() -> (Vec<String>, Expr, Expr) {
    let chi = dv("i").mul(dv("j")).add(dv("i").mul(dv("l")));
    let g = dv("i")
        .add(dv("j"))
        .add(dv("l"))
        .add(dv("i").mul(dv("j")).max(dv("i").mul(dv("l"))));
    (vec![tile_var("i"), tile_var("j"), tile_var("l")], chi, g)
}

fn bench_solver_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_core");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    for (label, (vars, chi, g)) in [("mmm", mmm()), ("fused_max", fused_max())] {
        let compiled = ConstrainedProduct::new(vars.clone(), chi.clone(), g.clone());
        let reference = ConstrainedProduct::new_reference(vars, chi, g);
        group.bench_function(format!("solve_compiled/{label}"), |b| {
            b.iter(|| black_box(compiled.solve(black_box(3.0e6))))
        });
        group.bench_function(format!("solve_reference/{label}"), |b| {
            b.iter(|| black_box(reference.solve_reference(black_box(3.0e6))))
        });
        group.bench_function(format!("fit_power_law_compiled/{label}"), |b| {
            b.iter(|| black_box(compiled.fit_power_law()))
        });
    }

    // 64 isomorphic merged models through the canonical-key cache vs solved
    // individually — the cross-subgraph dedup that PR 2 adds.
    let names: Vec<String> = (0..64).map(|s| format!("m{s}")).collect();
    let models: Vec<AccessModel> = names
        .iter()
        .enumerate()
        .map(|(s, name)| {
            let (a, b, c) = (format!("a{s}"), format!("b{s}"), format!("c{s}"));
            mmm_access_model(name, [a.as_str(), b.as_str(), c.as_str()])
        })
        .collect();
    group.bench_function("isomorphic_64/cached", |b| {
        b.iter(|| {
            let cache = SolveCache::new();
            for m in &models {
                black_box(cache.solve(m).expect("solves"));
            }
        })
    });
    group.bench_function("isomorphic_64/uncached", |b| {
        b.iter(|| {
            for m in &models {
                black_box(solve_model(m).expect("solves"));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solver_core);
criterion_main!(benches);
