//! SOAP statements.

use crate::access::ArrayAccess;
use crate::domain::IterationDomain;
use crate::IrError;
use soap_symbolic::Polynomial;
use std::collections::BTreeSet;
use std::fmt;

/// One SOAP statement: a loop nest around `A₀[φ₀(ψ)] ← f(A₁[φ₁(ψ)], …)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Statement {
    /// Statement name (used in reports and the SDG).
    pub name: String,
    /// The enclosing loop nest (iteration domain D).
    pub domain: IterationDomain,
    /// The output access `A₀[φ₀(ψ)]`.
    pub output: ArrayAccess,
    /// The input accesses `A₁[φ₁(ψ)], …, A_m[φ_m(ψ)]`.
    pub inputs: Vec<ArrayAccess>,
    /// True for update statements (`+=`-style): the output element is also
    /// read, i.e. the statement performs a reduction over the loop variables
    /// that do not appear in the output access.
    pub is_update: bool,
}

impl Statement {
    /// Validate structural invariants: non-empty loop nest, unique loop
    /// variables, consistent access arities, and subscripts that reference
    /// only loop variables of this statement.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.domain.loops.is_empty() {
            return Err(IrError::EmptyLoopNest {
                statement: self.name.clone(),
            });
        }
        let mut seen = BTreeSet::new();
        for lv in &self.domain.loops {
            if !seen.insert(lv.name.clone()) {
                return Err(IrError::DuplicateLoopVariable {
                    statement: self.name.clone(),
                    variable: lv.name.clone(),
                });
            }
        }
        for acc in std::iter::once(&self.output).chain(self.inputs.iter()) {
            let dim = acc.dim();
            if acc.components.iter().any(|c| c.arity() != dim) {
                return Err(IrError::InconsistentArity {
                    array: acc.array.clone(),
                });
            }
            for var in acc.variables() {
                if !seen.contains(&var) {
                    return Err(IrError::UnknownVariable {
                        statement: self.name.clone(),
                        variable: var,
                    });
                }
            }
        }
        Ok(())
    }

    /// Names of the loop variables (outermost first).
    pub fn loop_variables(&self) -> Vec<String> {
        self.domain.variable_names()
    }

    /// The loop variables that do **not** appear in the output access — the
    /// reduction variables of an update statement (e.g. `k` in `C[i,j] += …`).
    /// Ordered outermost first.
    pub fn reduction_variables(&self) -> Vec<String> {
        let out_vars: BTreeSet<String> = self.output.variables().into_iter().collect();
        self.loop_variables()
            .into_iter()
            .filter(|v| !out_vars.contains(v))
            .collect()
    }

    /// The innermost reduction variable, if any.  For update statements this
    /// is the dimension along which consecutive output versions are chained.
    pub fn innermost_reduction_variable(&self) -> Option<String> {
        self.reduction_variables().into_iter().last()
    }

    /// All arrays read by the statement (input arrays, deduplicated, in
    /// first-appearance order).
    pub fn input_arrays(&self) -> Vec<String> {
        let mut out = Vec::new();
        for acc in &self.inputs {
            if !out.contains(&acc.array) {
                out.push(acc.array.clone());
            }
        }
        if self.is_update && !out.contains(&self.output.array) {
            out.push(self.output.array.clone());
        }
        out
    }

    /// The array written by the statement.
    pub fn output_array(&self) -> &str {
        &self.output.array
    }

    /// The exact number of statement executions `|D|` as a polynomial in the
    /// symbolic size parameters.
    pub fn execution_count(&self) -> Polynomial {
        self.domain.cardinality()
    }

    /// The symbolic size parameters referenced by the loop bounds (symbols
    /// appearing in bounds that are not themselves loop variables).
    pub fn parameters(&self) -> Vec<String> {
        let loop_vars: BTreeSet<String> = self.loop_variables().into_iter().collect();
        let mut out = BTreeSet::new();
        for lv in &self.domain.loops {
            for s in lv.lower.symbols().chain(lv.upper.symbols()) {
                if !loop_vars.contains(s) {
                    out.insert(s.clone());
                }
            }
        }
        out.into_iter().collect()
    }

    /// All input accesses of a given array.
    pub fn accesses_of(&self, array: &str) -> Vec<&ArrayAccess> {
        self.inputs.iter().filter(|a| a.array == array).collect()
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = if self.is_update { "+=" } else { "=" };
        let inputs: Vec<String> = self.inputs.iter().map(|a| format!("{}", a)).collect();
        write!(
            f,
            "{}: {} {} f({})  over {{{}}}",
            self.name,
            self.output,
            op,
            inputs.join(", "),
            self.loop_variables().join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::StatementBuilder;

    fn mmm() -> Statement {
        StatementBuilder::new("mmm")
            .loops(&[("i", "0", "N"), ("j", "0", "N"), ("k", "0", "N")])
            .update("C", "i,j")
            .read("A", "i,k")
            .read("B", "k,j")
            .build()
            .unwrap()
    }

    #[test]
    fn validation_accepts_well_formed_statements() {
        assert!(mmm().validate().is_ok());
    }

    #[test]
    fn validation_rejects_unknown_variables() {
        let bad = StatementBuilder::new("bad")
            .loops(&[("i", "0", "N")])
            .write("C", "i")
            .read("A", "q")
            .build();
        assert!(matches!(bad, Err(IrError::UnknownVariable { .. })));
    }

    #[test]
    fn validation_rejects_duplicate_loop_variables() {
        let bad = StatementBuilder::new("bad")
            .loops(&[("i", "0", "N"), ("i", "0", "N")])
            .write("C", "i")
            .build();
        assert!(matches!(bad, Err(IrError::DuplicateLoopVariable { .. })));
    }

    #[test]
    fn reduction_variables_of_mmm() {
        let st = mmm();
        assert_eq!(st.reduction_variables(), vec!["k".to_string()]);
        assert_eq!(st.innermost_reduction_variable(), Some("k".to_string()));
        assert_eq!(
            st.input_arrays(),
            vec!["A".to_string(), "B".to_string(), "C".to_string()]
        );
    }

    #[test]
    fn execution_count_is_cubic() {
        let st = mmm();
        let count = st.execution_count();
        let mut b = std::collections::BTreeMap::new();
        b.insert("N".to_string(), 10.0);
        assert_eq!(count.eval(&b).unwrap(), 1000.0);
        assert_eq!(st.parameters(), vec!["N".to_string()]);
    }
}
