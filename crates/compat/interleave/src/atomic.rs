//! Shimmed atomics: `std::sync::atomic` signatures, with every access a
//! schedule point.  All operations execute sequentially consistent
//! regardless of the `Ordering` argument — the checker explores
//! interleavings, not weak-memory reorderings.

use crate::sched::with_ctx;
use std::sync::atomic::Ordering;

macro_rules! atomic_shim {
    ($(#[$doc:meta])* $name:ident, $std:ty, $ty:ty) => {
        $(#[$doc])*
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Wrap an initial value (no schedule point; construction is
            /// not a visible concurrent access).
            pub const fn new(v: $ty) -> $name {
                $name { inner: <$std>::new(v) }
            }

            fn point() {
                with_ctx(|ctrl, me| ctrl.step(me));
            }

            /// Atomic load (schedule point).
            pub fn load(&self, _order: Ordering) -> $ty {
                Self::point();
                self.inner.load(Ordering::SeqCst)
            }

            /// Atomic store (schedule point).
            pub fn store(&self, v: $ty, _order: Ordering) {
                Self::point();
                self.inner.store(v, Ordering::SeqCst)
            }

            /// Atomic swap (schedule point).
            pub fn swap(&self, v: $ty, _order: Ordering) -> $ty {
                Self::point();
                self.inner.swap(v, Ordering::SeqCst)
            }

            /// Atomic compare-exchange (schedule point).
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                Self::point();
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }
        }
    };
}

macro_rules! atomic_int_ops {
    ($name:ident, $ty:ty) => {
        impl $name {
            /// Atomic add, returning the previous value (schedule point).
            pub fn fetch_add(&self, v: $ty, _order: Ordering) -> $ty {
                Self::point();
                self.inner.fetch_add(v, Ordering::SeqCst)
            }

            /// Atomic subtract, returning the previous value (schedule point).
            pub fn fetch_sub(&self, v: $ty, _order: Ordering) -> $ty {
                Self::point();
                self.inner.fetch_sub(v, Ordering::SeqCst)
            }

            /// Atomic max, returning the previous value (schedule point).
            pub fn fetch_max(&self, v: $ty, _order: Ordering) -> $ty {
                Self::point();
                self.inner.fetch_max(v, Ordering::SeqCst)
            }

            /// Atomic read-modify-write loop (one schedule point for the
            /// whole atomic operation, matching the std semantics where the
            /// final CAS is what publishes).
            pub fn fetch_update(
                &self,
                _set_order: Ordering,
                _fetch_order: Ordering,
                f: impl FnMut($ty) -> Option<$ty>,
            ) -> Result<$ty, $ty> {
                Self::point();
                self.inner
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, f)
            }
        }
    };
}

atomic_shim!(
    /// Model-checked `AtomicUsize`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
atomic_int_ops!(AtomicUsize, usize);

atomic_shim!(
    /// Model-checked `AtomicU64`.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
atomic_int_ops!(AtomicU64, u64);

atomic_shim!(
    /// Model-checked `AtomicBool`.
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);
