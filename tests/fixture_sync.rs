//! Sync guard for the documented `chain_of_matmuls` duplication.
//!
//! `soap-sdg`'s tests cannot depend on `soap-bench` (cycle), so they carry a
//! private copy of the chain fixture in `crates/sdg/tests/common/fixtures.rs`.
//! This test includes that exact file and compares the *built programs* —
//! not the source text — against `soap_bench::fixtures::chain_of_matmuls`,
//! so any semantic drift between the two copies fails CI even if the sources
//! merely look similar.

// The very file the sdg tests compile; `#[path]` keeps this a single source
// of truth for the private copy.
#[path = "../crates/sdg/tests/common/fixtures.rs"]
mod sdg_test_fixtures;

#[test]
fn sdg_test_copy_of_chain_of_matmuls_matches_bench_fixture() {
    for k in [1usize, 2, 8, 35] {
        let bench = soap_bench::fixtures::chain_of_matmuls(k);
        let private = sdg_test_fixtures::chain_of_matmuls(k);
        assert_eq!(
            bench, private,
            "chain_of_matmuls({k}): crates/sdg/tests/common/fixtures.rs has drifted from \
             soap_bench::fixtures — update both copies together"
        );
    }
}
