//! Canonical model keys and the cross-subgraph solve cache.
//!
//! On real programs the ~hundreds of merged subgraph models are highly
//! repetitive: a chain of `k` matmuls produces `O(k)` singleton/pair/triple
//! subgraphs whose [`AccessModel`]s differ only in array and variable *names*.
//! Solving each takes thousands of compiled-posynomial probes, so structurally
//! identical models are detected up front and solved once.
//!
//! A model's **canonical key** is the pair of exponent matrices (objective,
//! dominator) of its compiled posynomial forms, with exact rational
//! coefficients, brought to a canonical variable order *modulo renaming*:
//! variables are sorted by an iteratively refined occurrence signature
//! (Weisfeiler–Leman style), the matrices' columns are permuted accordingly,
//! and the term rows sorted.  Equal keys therefore exhibit an explicit
//! isomorphism between the two models; distinct-but-isomorphic models can at
//! worst miss a cache hit (when the refinement cannot separate tied
//! variables), never collide.
//!
//! The cache itself is a mutex-guarded hash map shared across the rayon
//! workers of one program analysis; hits re-instantiate the cached solution
//! under the requesting model's variable names.

use soap_core::{solve_model, AccessModel, AnalysisError, IntensityResult};
use soap_symbolic::{CompiledPosynomial, Expr, Rational};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One term row of a canonical matrix: permuted exponents plus the exact
/// coefficient.
type CanonicalRow = (Vec<i16>, Rational);

/// The canonical key of an [`AccessModel`] modulo variable renaming.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CanonicalKey {
    n_vars: usize,
    objective: Vec<CanonicalRow>,
    dominator: Vec<CanonicalRow>,
}

/// A canonicalized model: the key plus the variable order that produced it
/// (`order[p]` = the model's variable index at canonical position `p`).
pub struct CanonicalModel {
    /// The renaming-invariant key.
    pub key: CanonicalKey,
    /// Canonical position → original variable index.
    pub order: Vec<usize>,
}

/// Compute the canonical form of a model.
///
/// Returns `None` when the model is not cacheable: a non-posynomial
/// objective/dominator (`Max`/`Min` union fallbacks) or a non-empty
/// `access_index_sets` (the exact-LP cross-check depends on data outside the
/// matrices, so such models are solved directly).
pub fn canonicalize(model: &AccessModel) -> Option<CanonicalModel> {
    if !model.access_index_sets.is_empty() {
        return None;
    }
    let vars = &model.tile_variables;
    let obj = CompiledPosynomial::compile(&model.objective, vars)?;
    let dom = CompiledPosynomial::compile(&model.dominator, vars)?;
    let order = canonical_variable_order(&[(0u8, &obj), (1u8, &dom)], vars.len());
    let key = CanonicalKey {
        n_vars: vars.len(),
        objective: permuted_rows(&obj, &order),
        dominator: permuted_rows(&dom, &order),
    };
    Some(CanonicalModel { key, order })
}

/// A variable's signature: a sortable value that is invariant under variable
/// renaming, refined over rounds.  Each entry describes one occurrence of the
/// variable in a term: `(polynomial tag, own exponent, coefficient, sorted
/// co-occurring (signature-rank, exponent) pairs)`.
type Signature = Vec<(u8, i16, Rational, Vec<(usize, i16)>)>;

/// Order the variables canonically by iterated signature refinement.
///
/// Round 0 ranks variables by their raw occurrence profile; each subsequent
/// round re-ranks them using the previous ranks of the co-occurring variables
/// in every term.  Two rounds separate everything the analysis meets in
/// practice; any remaining ties are broken by original index, which can only
/// cost cache hits, never correctness (the full matrices are in the key).
fn canonical_variable_order(polys: &[(u8, &CompiledPosynomial)], n_vars: usize) -> Vec<usize> {
    let mut ranks: Vec<usize> = vec![0; n_vars];
    for _round in 0..2 {
        let mut sigs: Vec<Signature> = vec![Vec::new(); n_vars];
        for &(tag, poly) in polys {
            for k in 0..poly.n_terms() {
                let row = poly.exponent_row(k);
                let coeff = poly.rational_coeff(k);
                for (t, &e) in row.iter().enumerate() {
                    if e == 0 {
                        continue;
                    }
                    let mut others: Vec<(usize, i16)> = row
                        .iter()
                        .enumerate()
                        .filter(|&(u, &eu)| u != t && eu != 0)
                        .map(|(u, &eu)| (ranks[u], eu))
                        .collect();
                    others.sort_unstable();
                    sigs[t].push((tag, e, coeff, others));
                }
            }
        }
        for sig in &mut sigs {
            sig.sort();
        }
        // Re-rank: equal signatures share a rank.
        let mut sorted: Vec<usize> = (0..n_vars).collect();
        sorted.sort_by(|&a, &b| sigs[a].cmp(&sigs[b]));
        let mut next_rank = 0;
        for (i, &t) in sorted.iter().enumerate() {
            if i > 0 && sigs[t] != sigs[sorted[i - 1]] {
                next_rank = i;
            }
            ranks[t] = next_rank;
        }
    }
    let mut order: Vec<usize> = (0..n_vars).collect();
    // Stable on original index for tied ranks.
    order.sort_by_key(|&t| ranks[t]);
    order
}

/// Permute the columns of a compiled posynomial to the canonical order and
/// sort the term rows.
fn permuted_rows(poly: &CompiledPosynomial, order: &[usize]) -> Vec<CanonicalRow> {
    let mut rows: Vec<CanonicalRow> = (0..poly.n_terms())
        .map(|k| {
            let row = poly.exponent_row(k);
            let permuted: Vec<i16> = order.iter().map(|&t| row[t]).collect();
            (permuted, poly.rational_coeff(k))
        })
        .collect();
    rows.sort();
    rows
}

/// A cached solution, stored in canonical variable order.
#[derive(Clone)]
struct CanonicalSolution {
    sigma: Rational,
    chi_coeff: f64,
    rho: Expr,
    x0: Option<Expr>,
    /// Indexed by canonical position.
    tile_exponents: Vec<Rational>,
    tile_coeffs: Vec<f64>,
}

/// Cache statistics, surfaced through `ProgramAnalysis`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Models answered from the cache.
    pub hits: u64,
    /// Models solved and inserted.
    pub misses: u64,
    /// Models solved directly because no canonical key exists.
    pub uncacheable: u64,
}

/// A concurrent solve cache keyed by [`CanonicalKey`], shared across the
/// parallel subgraph workers of one program analysis.
///
/// Each key maps to a [`OnceLock`] cell: the mutex only guards the key→cell
/// lookup, the expensive solve runs outside it, and concurrent requests for
/// the same structure block on the cell instead of duplicating the solve —
/// so `misses` is exactly the number of distinct structures even under
/// parallel first-touches.
#[derive(Default)]
pub struct SolveCache {
    map: Mutex<HashMap<CanonicalKey, Arc<SolveCell>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    uncacheable: AtomicU64,
}

type SolveCell = OnceLock<Result<CanonicalSolution, AnalysisError>>;

impl SolveCache {
    /// An empty cache.
    pub fn new() -> SolveCache {
        SolveCache::default()
    }

    /// Solve `model`, answering structurally identical models from the cache.
    ///
    /// Failures are cached too (a model isomorphic to one that failed will
    /// fail identically).  On a miss the model is solved *as given* — the
    /// first occurrence of every structure therefore takes exactly the same
    /// numeric path as an uncached solve.
    pub fn solve(&self, model: &AccessModel) -> Result<IntensityResult, AnalysisError> {
        let Some(canon) = canonicalize(model) else {
            self.uncacheable.fetch_add(1, Ordering::Relaxed);
            return solve_model(model);
        };
        let cell = Arc::clone(
            self.map
                .lock()
                .expect("cache poisoned")
                .entry(canon.key)
                .or_default(),
        );
        // Whoever wins the cell's initialization race runs the solve; every
        // other requester of the same structure blocks until it lands.
        let mut direct: Option<Result<IntensityResult, AnalysisError>> = None;
        let cached = cell.get_or_init(|| {
            let solved = solve_model(model);
            let canonical = to_canonical(&solved, &canon.order);
            direct = Some(solved);
            canonical
        });
        if let Some(solved) = direct {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return solved;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        instantiate(cached.clone(), model, &canon.order)
    }

    /// Snapshot the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
        }
    }
}

/// Canonicalize one solve outcome for storage: tile data re-indexed by
/// canonical position so any isomorphic model can re-instantiate it.
fn to_canonical(
    solved: &Result<IntensityResult, AnalysisError>,
    order: &[usize],
) -> Result<CanonicalSolution, AnalysisError> {
    let res = solved.as_ref().map_err(Clone::clone)?;
    let mut tile_exponents = vec![Rational::ZERO; order.len()];
    let mut tile_coeffs = vec![0.0; order.len()];
    for (p, &t) in order.iter().enumerate() {
        tile_exponents[p] = res.tile_exponents[t].1;
        tile_coeffs[p] = res.tile_coeffs[t].1;
    }
    Ok(CanonicalSolution {
        sigma: res.sigma,
        chi_coeff: res.chi_coeff,
        rho: res.rho.clone(),
        x0: res.x0.clone(),
        tile_exponents,
        tile_coeffs,
    })
}

/// Re-express a cached canonical solution under `model`'s variable names.
///
/// Cached *failures* are re-labelled with the requesting model's name (the
/// stored message names whichever isomorphic model was solved first).
fn instantiate(
    cached: Result<CanonicalSolution, AnalysisError>,
    model: &AccessModel,
    order: &[usize],
) -> Result<IntensityResult, AnalysisError> {
    let sol = cached.map_err(|e| relabel_error(e, &model.name))?;
    let n = order.len();
    let mut tile_exponents: Vec<(String, Rational)> = vec![(String::new(), Rational::ZERO); n];
    let mut tile_coeffs: Vec<(String, f64)> = vec![(String::new(), 0.0); n];
    for (p, &t) in order.iter().enumerate() {
        tile_exponents[t] = (model.tile_variables[t].clone(), sol.tile_exponents[p]);
        tile_coeffs[t] = (model.tile_variables[t].clone(), sol.tile_coeffs[p]);
    }
    Ok(IntensityResult {
        name: model.name.clone(),
        sigma: sol.sigma,
        chi_coeff: sol.chi_coeff,
        rho: sol.rho,
        x0: sol.x0,
        tile_exponents,
        tile_coeffs,
    })
}

/// Rewrite a cached failure so it names the model that asked, noting that
/// the underlying solve ran on a structurally identical model.
fn relabel_error(e: AnalysisError, name: &str) -> AnalysisError {
    match e {
        AnalysisError::InvalidStatement(msg) => AnalysisError::InvalidStatement(format!(
            "model {name} (via structurally identical cached model): {msg}"
        )),
        AnalysisError::NoInputs(_) => AnalysisError::NoInputs(name.to_string()),
        AnalysisError::NumericalFailure(msg) => AnalysisError::NumericalFailure(format!(
            "model {name} (via structurally identical cached model): {msg}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_core::access_size::tile_var;

    fn dv(v: &str) -> Expr {
        Expr::sym(tile_var(v))
    }

    fn mmm_model(name: &str, v: [&str; 3]) -> AccessModel {
        AccessModel {
            name: name.into(),
            tile_variables: v.iter().map(|x| tile_var(x)).collect(),
            objective: dv(v[0]).mul(dv(v[1])).mul(dv(v[2])),
            dominator: dv(v[0])
                .mul(dv(v[2]))
                .add(dv(v[2]).mul(dv(v[1])))
                .add(dv(v[0]).mul(dv(v[1]))),
            access_index_sets: vec![],
        }
    }

    #[test]
    fn renamed_models_share_a_key() {
        let a = canonicalize(&mmm_model("a", ["i", "j", "k"])).unwrap();
        let b = canonicalize(&mmm_model("b", ["p", "q", "r"])).unwrap();
        assert_eq!(a.key, b.key);
        // Reordered variables too: the canonical order undoes the shuffle.
        let c = canonicalize(&mmm_model("c", ["k", "i", "j"])).unwrap();
        assert_eq!(a.key, c.key);
    }

    #[test]
    fn different_structures_get_different_keys() {
        let mmm = canonicalize(&mmm_model("mmm", ["i", "j", "k"])).unwrap();
        // A stencil-like model over three variables: same variable count,
        // different matrices.
        let stencil = AccessModel {
            name: "stencil".into(),
            tile_variables: vec![tile_var("i"), tile_var("j"), tile_var("k")],
            objective: dv("i").mul(dv("j")).mul(dv("k")),
            dominator: dv("i").add(dv("j")).add(dv("k")),
            access_index_sets: vec![],
        };
        let stencil = canonicalize(&stencil).unwrap();
        assert_ne!(mmm.key, stencil.key);
        // Same matrices but a different coefficient also differs.
        let mut scaled = mmm_model("scaled", ["i", "j", "k"]);
        scaled.objective = Expr::int(2).mul(scaled.objective);
        let scaled = canonicalize(&scaled).unwrap();
        assert_ne!(mmm.key, scaled.key);
    }

    #[test]
    fn asymmetric_variables_order_canonically() {
        // χ = Di²·Dj, g = Di + Dj: Di and Dj have different profiles, so the
        // canonical order must map a renamed copy onto the same key.
        let make = |v: [&str; 2]| AccessModel {
            name: "asym".into(),
            tile_variables: v.iter().map(|x| tile_var(x)).collect(),
            objective: dv(v[0]).pow(Rational::int(2)).mul(dv(v[1])),
            dominator: dv(v[0]).add(dv(v[1])),
            access_index_sets: vec![],
        };
        let a = canonicalize(&make(["x", "y"])).unwrap();
        let b = canonicalize(&make(["u", "t"])).unwrap();
        let c = canonicalize(&make(["t", "u"])).unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.key, c.key);
    }

    #[test]
    fn max_dominators_are_uncacheable() {
        let model = AccessModel {
            name: "union".into(),
            tile_variables: vec![tile_var("i"), tile_var("j")],
            objective: dv("i").mul(dv("j")),
            dominator: dv("i").max(dv("j")),
            access_index_sets: vec![],
        };
        assert!(canonicalize(&model).is_none());
        // The cache still solves it (directly) and counts it.
        let cache = SolveCache::new();
        let _ = cache.solve(&model);
        assert_eq!(cache.stats().uncacheable, 1);
    }

    #[test]
    fn cached_failures_are_relabelled_for_the_requesting_model() {
        let failing = |name: &str, var: &str| AccessModel {
            name: name.into(),
            tile_variables: vec![tile_var(var)],
            objective: dv(var),
            dominator: Expr::zero(),
            access_index_sets: vec![],
        };
        let cache = SolveCache::new();
        let first = cache.solve(&failing("first", "i"));
        let second = cache.solve(&failing("second", "q"));
        assert!(matches!(first, Err(AnalysisError::NoInputs(ref n)) if n == "first"));
        assert!(matches!(second, Err(AnalysisError::NoInputs(ref n)) if n == "second"));
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cache_hits_reproduce_the_direct_solution() {
        let cache = SolveCache::new();
        let first = cache.solve(&mmm_model("first", ["i", "j", "k"])).unwrap();
        let renamed = mmm_model("renamed", ["c", "a", "b"]);
        let hit = cache.solve(&renamed).unwrap();
        let direct = solve_model(&renamed).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(hit.name, "renamed");
        assert_eq!(hit.sigma, direct.sigma);
        assert_eq!(format!("{}", hit.rho), format!("{}", direct.rho));
        assert_eq!(first.sigma, hit.sigma);
        // Tile entries carry the renamed model's variable names, in order.
        let names: Vec<&str> = hit.tile_exponents.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["D_c", "D_a", "D_b"]);
        for ((_, e_hit), (_, e_direct)) in hit.tile_exponents.iter().zip(&direct.tile_exponents) {
            assert_eq!(e_hit, e_direct);
        }
    }
}
