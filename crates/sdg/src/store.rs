//! Disk-persisted canonical-solution store: the solve cache, across processes.
//!
//! PR 4 made every solve a pure function of its [`CanonicalKey`] — the
//! canonical structure modulo variable renaming — which is exactly the
//! property that makes *cross-process* reuse sound: a stored canonical
//! solution is valid for any isomorphic model in any later process, and
//! instantiating it reproduces the solver's output byte-for-byte (exact
//! rationals; floats persisted as raw bit patterns, so even NaN payloads
//! survive).  [`SolveStore`] persists the `CanonicalKey → canonical solution`
//! map of a [`SolveCache`](crate::SolveCache) into a directory of append-only
//! **segment files**, so the 163 distinct structures of the 38-kernel
//! registry are solved once per *store*, not once per process.
//!
//! ## On-disk format (`soap-solve-store/1`)
//!
//! A store is a directory of segment files named
//! `seg-<nanos>-<pid>-<seq>.soapstore`.  Each segment is line-oriented text:
//!
//! ```text
//! soap-solve-store/1                          ← format-version header
//! <16-hex fnv1a-64> <record JSON>\n           ← one record per line
//! ...
//! ```
//!
//! * **Versioned**: the header names the format; a segment with any other
//!   header is rejected whole (counted, never a panic), so a future format
//!   bump cannot be misread as garbage records.
//! * **Integrity-checked per record**: the leading FNV-1a-64 digest covers
//!   the record's JSON payload; a truncated or bit-flipped line fails the
//!   check and is skipped with a counted note while the rest of the segment
//!   still loads — the failure mode of a crashed writer is a short final
//!   line, not a poisoned store.
//! * **Last-writer-wins merge**: every flush writes a *new* uniquely named
//!   segment (never appends into another process's file), and the loader
//!   folds segments in filename order (timestamp-prefixed), later records
//!   overwriting earlier ones per key.  Concurrent processes sharing one
//!   store directory therefore converge to the union of their solves; for
//!   records produced by this workspace the duplicates are byte-identical
//!   anyway (solutions are pure functions of the key).
//!
//! Records store the full solve outcome, *including failures*: a structure
//! that failed to solve fails identically in every process, and persisting
//! the failure is what lets a warm run report zero misses.
//!
//! ## Report records (`soap-report-store/1`)
//!
//! The same directory can additionally hold a second record family: finished
//! [`ProgramAnalysis`](crate::ProgramAnalysis) **reports** keyed by a
//! structural program hash
//! ([`structural_program_key`](crate::structural_program_key)).  Report
//! segments live in `rpt-*.soapstore` files with their own format header, so
//! a store written before this family existed (only `seg-*` solve segments)
//! loads unchanged, and an older reader's `seg-*` filter never sees them.
//! Report records follow the identical discipline — FNV-1a checksum per
//! line, versioned header, staged-rename writes, last-writer-wins merge,
//! floats as raw bit patterns — and degraded reports are never stored, so a
//! warm hit replays a complete cold analysis byte-for-byte while skipping
//! enumeration, merge, instantiation *and* solving.

use crate::analysis::{ArrayBound, SubgraphIntensity};
use crate::cache::{
    CanonicalAtom, CanonicalDominator, CanonicalKey, CanonicalRow, CanonicalSolution,
};
use serde::{DeError, Deserialize, Serialize, Value};
use soap_core::{AnalysisError, IntensityResult};
use soap_symbolic::{Expr, Polynomial, Rational};
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The format-version header every solve segment of the current format
/// starts with.
pub const STORE_HEADER: &str = "soap-solve-store/1";

/// The format-version header every report segment starts with.
pub const REPORT_HEADER: &str = "soap-report-store/1";

/// File-name extension of segment files.
const SEGMENT_EXT: &str = "soapstore";

/// One record family within a store directory: its file-name prefix, its
/// format-version header, and the header stem that identifies a *future*
/// version of the same family (rejected with a version-mismatch note rather
/// than a generic missing-header one).
struct Family {
    prefix: &'static str,
    header: &'static str,
    stem: &'static str,
}

/// The canonical-solution records (`seg-*`, the original store format).
const SOLVE_FAMILY: Family = Family {
    prefix: "seg-",
    header: STORE_HEADER,
    stem: "soap-solve-store/",
};

/// The program-report records (`rpt-*`).
const REPORT_FAMILY: Family = Family {
    prefix: "rpt-",
    header: REPORT_HEADER,
    stem: "soap-report-store/",
};

/// Suffix appended to a segment's file name when it is quarantined.
const QUARANTINE_SUFFIX: &str = ".quarantined";

/// Store I/O attempts per operation (1 initial + bounded retries).  Transient
/// failures — a reader racing a writer's rename, NFS hiccups, injected test
/// faults — heal within the budget; persistent ones surface after it.
const STORE_IO_ATTEMPTS: u32 = 3;

/// Run `op` up to [`STORE_IO_ATTEMPTS`] times with a tiny linear backoff
/// between attempts.  `injected(attempt)` short-circuits the attempt with a
/// synthetic transient error when the active fault plan says so, keeping the
/// injection point *inside* the retry loop so the heal path is the one the
/// production code actually takes.
fn retry_io<T>(
    segment: &str,
    injected: impl Fn(u32) -> bool,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let mut last_err = None;
    for attempt in 0..STORE_IO_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(std::time::Duration::from_millis(u64::from(attempt)));
        }
        let result = if injected(attempt) {
            Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient store fault (segment {segment}, attempt {attempt})"),
            ))
        } else {
            op()
        };
        match result {
            Ok(v) => return Ok(v),
            Err(e) => last_err = Some(e),
        }
    }
    // lint:allow(unwrap-expect): the retry loop always runs at least one attempt before reaching this line
    Err(last_err.expect("at least one attempt ran"))
}

/// Corrupt the digest of the first record line — the fault plan's segment
/// corruption, applied to the in-memory text *after* the read so the genuine
/// integrity-check / quarantine path downstream does all the work.
fn corrupt_first_record(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut corrupted = false;
    for (i, line) in text.lines().enumerate() {
        if i > 0 && !corrupted && line.len() > 16 {
            out.push_str("faultfaultfaultt");
            out.push_str(&line[16..]);
            corrupted = true;
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// One persisted entry: the canonical key and the stored solve outcome.
pub(crate) type StoreEntry = (CanonicalKey, Result<CanonicalSolution, AnalysisError>);

/// The persisted portion of a finished, non-degraded
/// [`ProgramAnalysis`](crate::ProgramAnalysis): everything that is a pure
/// function of the structural program key.  The program *name*, phase
/// timings, and solver accounting measure the run (and are respliced by the
/// warm path); `degraded` is always `false` by construction — degraded
/// reports are never recorded.
#[derive(Clone, Debug)]
pub(crate) struct StoredReport {
    /// Per-array Theorem-1 contributions.
    pub per_array: Vec<ArrayBound>,
    /// Every solved subgraph's intensity.
    pub subgraphs: Vec<SubgraphIntensity>,
    /// The composed program bound.
    pub bound: Expr,
    /// Human-readable analysis notes, replayed verbatim.
    pub notes: Vec<String>,
}

/// One persisted report entry: the structural program key and the report.
pub(crate) type ReportEntry = (u64, StoredReport);

/// Accounting of one store load (hydration at
/// [`SolveCache::with_store`](crate::SolveCache::with_store) open, or a
/// [`SolveStore::stat`] inspection pass).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StoreLoadStats {
    /// Segment files read successfully.
    pub segments: usize,
    /// Segment files rejected whole (unreadable, or format-version mismatch).
    pub segments_rejected: usize,
    /// Valid records read (counting later duplicates of the same key).
    pub records: usize,
    /// Records skipped by the per-record integrity check or record parse
    /// (truncated tail of a crashed writer, bit rot, hand-edited files).
    pub records_skipped: usize,
    /// Segments quarantined by this load: a segment with skipped records is
    /// renamed to `<name>.quarantined` after its good records are merged, so
    /// the corruption is reported once and then set aside for inspection
    /// instead of re-parsed and re-warned on every later hydration.
    pub quarantined: usize,
    /// Distinct keys after the last-writer-wins merge.
    pub entries: usize,
    /// Total size of all segment files in bytes.
    pub bytes: u64,
    /// Human-readable notes for everything counted in
    /// `segments_rejected`/`records_skipped` (one note per affected segment).
    pub notes: Vec<String>,
}

/// Accounting of one [`SolveCache::flush_store`](crate::SolveCache::flush_store).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreFlushStats {
    /// Solve entries persisted by this flush (0 when everything was already
    /// stored).
    pub appended: usize,
    /// The solve segment file written, when `appended > 0`.
    pub segment: Option<PathBuf>,
    /// Finished-program reports persisted by this flush (always 0 for a
    /// solve-only cache, see
    /// [`SolveCache::with_store_solve_only`](crate::SolveCache::with_store_solve_only)).
    pub reports_appended: usize,
}

/// A canonical-solution store directory.  See the module docs for the format.
#[derive(Debug)]
pub struct SolveStore {
    dir: PathBuf,
}

/// Process-wide sequence number making segment names unique even when two
/// flushes — possibly from *different* `SolveStore` instances over the same
/// directory — land in the same `SystemTime` tick.  A per-instance counter
/// would let two instances compute the identical segment name and the later
/// rename silently replace the earlier segment.
static SEGMENT_SEQ: AtomicU64 = AtomicU64::new(0);

impl SolveStore {
    /// Open (creating if necessary) a store directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<SolveStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SolveStore { dir })
    }

    /// Open a store directory that must already exist — for inspection
    /// tooling (`soap-cli cache stat|list|clear`), where auto-creating the
    /// directory would turn a typo'd path into a convincing empty store
    /// instead of an error.
    pub fn open_existing(dir: impl Into<PathBuf>) -> io::Result<SolveStore> {
        let dir = dir.into();
        if !dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("store directory {} does not exist", dir.display()),
            ));
        }
        Ok(SolveStore { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All files of one record family, in load order (sorted by file name —
    /// names are timestamp-prefixed, so this is write order up to clock skew,
    /// which the last-writer-wins merge tolerates).
    fn family_files(&self, prefix: &str) -> io::Result<Vec<PathBuf>> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.extension().and_then(|e| e.to_str()) == Some(SEGMENT_EXT)
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with(prefix))
            })
            .collect();
        files.sort();
        Ok(files)
    }

    /// All solve-record segment files of the store, in load order.
    pub fn segment_files(&self) -> io::Result<Vec<PathBuf>> {
        self.family_files(SOLVE_FAMILY.prefix)
    }

    /// All report-record segment files of the store, in load order.
    pub fn report_files(&self) -> io::Result<Vec<PathBuf>> {
        self.family_files(REPORT_FAMILY.prefix)
    }

    /// Load every segment of one family, decoding records with `decode` and
    /// applying the retry / fault-injection / header-check / salvage +
    /// quarantine discipline shared by both record families.  Decoded records
    /// are returned in segment order (the caller merges last-writer-wins);
    /// `stats.entries` is left for the caller to fill after its merge.
    fn load_family<T>(
        &self,
        family: &Family,
        decode: impl Fn(&str) -> Option<T>,
    ) -> io::Result<(Vec<T>, StoreLoadStats)> {
        let plan = crate::faults::active_plan();
        let mut stats = StoreLoadStats::default();
        let mut decoded: Vec<T> = Vec::new();
        for path in self.family_files(family.prefix)? {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let injected = |attempt: u32| {
                plan.as_deref()
                    .is_some_and(|p| p.store_read_fails(&name, attempt))
            };
            let text = match retry_io(&name, injected, || std::fs::read_to_string(&path)) {
                Ok(t) => t,
                Err(e) => {
                    stats.segments_rejected += 1;
                    stats.notes.push(format!("segment {name}: unreadable: {e}"));
                    continue;
                }
            };
            let text = match plan.as_deref() {
                Some(p) if p.corrupts_segment(&name) => corrupt_first_record(&text),
                _ => text,
            };
            stats.bytes += text.len() as u64;
            let mut lines = text.lines();
            match lines.next() {
                Some(header) if header == family.header => {}
                Some(other) if other.starts_with(family.stem) => {
                    stats.segments_rejected += 1;
                    stats.notes.push(format!(
                        "segment {name}: format-version mismatch (found '{other}', expected '{}'); segment ignored",
                        family.header
                    ));
                    continue;
                }
                _ => {
                    stats.segments_rejected += 1;
                    stats.notes.push(format!(
                        "segment {name}: missing '{}' header; segment ignored",
                        family.header
                    ));
                    continue;
                }
            }
            stats.segments += 1;
            let mut skipped_here = 0usize;
            let mut good_lines: Vec<String> = Vec::new();
            for line in lines {
                if line.is_empty() {
                    continue;
                }
                match decode(line) {
                    Some(record) => {
                        stats.records += 1;
                        decoded.push(record);
                        good_lines.push(line.to_string());
                    }
                    None => skipped_here += 1,
                }
            }
            if skipped_here > 0 {
                stats.records_skipped += skipped_here;
                let mut note = format!(
                    "segment {name}: {skipped_here} corrupt/truncated record(s) skipped (integrity check or parse failure)"
                );
                // Salvage the surviving records into a fresh segment, then
                // quarantine the corrupt file — rename it out of the segment
                // namespace so the corruption is diagnosed once (and surfaced
                // by `cache stat`) instead of re-warned forever.  Quarantine
                // only happens once the good records are durable again (or
                // there were none), so it never costs store entries; a failed
                // salvage or rename is only noted — both are hygiene, not a
                // load precondition.
                let salvaged = if good_lines.is_empty() {
                    Ok(())
                } else {
                    self.write_segment(family, good_lines).map(|_| ())
                };
                match salvaged {
                    Ok(()) => {
                        let mut quarantined_name = name.clone();
                        quarantined_name.push_str(QUARANTINE_SUFFIX);
                        match std::fs::rename(&path, path.with_file_name(&quarantined_name)) {
                            Ok(()) => {
                                stats.quarantined += 1;
                                note.push_str("; segment quarantined");
                            }
                            Err(e) => note.push_str(&format!("; quarantine rename failed: {e}")),
                        }
                    }
                    Err(e) => {
                        note.push_str(&format!("; salvage failed ({e}); segment left in place"))
                    }
                }
                stats.notes.push(note);
            }
        }
        Ok((decoded, stats))
    }

    /// Load every solve segment, folding records with the last-writer-wins
    /// merge.
    pub(crate) fn load(&self) -> io::Result<(Vec<StoreEntry>, StoreLoadStats)> {
        let (records, mut stats) = self.load_family(&SOLVE_FAMILY, decode_record)?;
        let mut merged: HashMap<CanonicalKey, Result<CanonicalSolution, AnalysisError>> =
            HashMap::new();
        for (key, sol) in records {
            merged.insert(key, sol);
        }
        stats.entries = merged.len();
        Ok((merged.into_iter().collect(), stats))
    }

    /// Load every report segment, folding records with the last-writer-wins
    /// merge.
    pub(crate) fn load_reports(&self) -> io::Result<(Vec<ReportEntry>, StoreLoadStats)> {
        let (records, mut stats) = self.load_family(&REPORT_FAMILY, decode_report_record)?;
        let mut merged: HashMap<u64, StoredReport> = HashMap::new();
        for (key, report) in records {
            merged.insert(key, report);
        }
        stats.entries = merged.len();
        Ok((merged.into_iter().collect(), stats))
    }

    /// Load-time accounting of the solve records without keeping the entries
    /// (for `cache stat`).
    pub fn stat(&self) -> io::Result<StoreLoadStats> {
        self.load().map(|(_, stats)| stats)
    }

    /// Load-time accounting of the report records without keeping the
    /// entries (for `cache stat`).
    pub fn report_stat(&self) -> io::Result<StoreLoadStats> {
        self.load_reports().map(|(_, stats)| stats)
    }

    /// Solve segments quarantined by earlier loads
    /// (`seg-*.soapstore.quarantined`), in name order — surfaced by
    /// `soap-cli cache stat` and removed by [`SolveStore::clear`].
    pub fn quarantined_files(&self) -> io::Result<Vec<PathBuf>> {
        self.quarantined_family_files(SOLVE_FAMILY.prefix)
    }

    /// Report segments quarantined by earlier loads
    /// (`rpt-*.soapstore.quarantined`), in name order.
    pub fn report_quarantined_files(&self) -> io::Result<Vec<PathBuf>> {
        self.quarantined_family_files(REPORT_FAMILY.prefix)
    }

    fn quarantined_family_files(&self, prefix: &str) -> io::Result<Vec<PathBuf>> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                    n.starts_with(prefix)
                        && n.ends_with(&format!(".{SEGMENT_EXT}{QUARANTINE_SUFFIX}"))
                })
            })
            .collect();
        files.sort();
        Ok(files)
    }

    /// Persist entries as one new segment file.  Returns the segment path.
    ///
    /// The segment is staged under a dot-prefixed temp name and renamed into
    /// place, so concurrent loaders never observe a half-written segment
    /// under its final name (a crash mid-write leaves only an ignorable temp
    /// file behind).
    pub(crate) fn append(
        &self,
        entries: &[(&CanonicalKey, &Result<CanonicalSolution, AnalysisError>)],
    ) -> io::Result<PathBuf> {
        let lines: Vec<String> = entries
            .iter()
            .map(|(key, sol)| encode_record(key, sol))
            .collect();
        self.write_segment(&SOLVE_FAMILY, lines)
    }

    /// Persist finished-report records as one new `rpt-` segment file.
    /// Returns the segment path.  Same staging + rename discipline as solve
    /// segments.
    pub(crate) fn append_reports(&self, entries: &[(u64, &StoredReport)]) -> io::Result<PathBuf> {
        let lines: Vec<String> = entries
            .iter()
            .map(|(key, report)| encode_report_record(*key, report))
            .collect();
        self.write_segment(&REPORT_FAMILY, lines)
    }

    /// Write already-encoded record lines as one new uniquely named segment
    /// of the given family (the shared tail of [`SolveStore::append`],
    /// [`SolveStore::append_reports`], and load-time salvage).
    fn write_segment(&self, family: &Family, mut lines: Vec<String>) -> io::Result<PathBuf> {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let name = format!(
            "{}{nanos:020}-{}-{:04}.{SEGMENT_EXT}",
            family.prefix,
            std::process::id(),
            SEGMENT_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let tmp = self.dir.join(format!(".tmp-{name}"));
        let path = self.dir.join(&name);
        // Deterministic record order within a segment (callers often walk a
        // HashMap, whose order is arbitrary): sort the encoded lines.  Record
        // order never affects the merge result — keys within one segment are
        // distinct — it only keeps identical caches producing identical
        // segment bytes.
        lines.sort();
        let mut text = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum::<usize>() + 32);
        text.push_str(family.header);
        text.push('\n');
        for line in &lines {
            text.push_str(line);
            text.push('\n');
        }
        let plan = crate::faults::active_plan();
        let injected = |attempt: u32| {
            plan.as_deref()
                .is_some_and(|p| p.store_write_fails(&name, attempt))
        };
        retry_io(&name, injected, || {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, &path)
        })?;
        Ok(path)
    }

    /// Delete all segment files of both record families (plus stale temp
    /// files and quarantined segments).  Returns how many segments were
    /// removed.  The directory itself is kept.
    pub fn clear(&self) -> io::Result<usize> {
        let mut removed = 0usize;
        for path in self
            .segment_files()?
            .into_iter()
            .chain(self.report_files()?)
            .chain(self.quarantined_files()?)
            .chain(self.report_quarantined_files()?)
        {
            std::fs::remove_file(&path)?;
            removed += 1;
        }
        for entry in std::fs::read_dir(&self.dir)?.filter_map(|e| e.ok()) {
            let p = entry.path();
            let is_tmp = p
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(".tmp-seg-") || n.starts_with(".tmp-rpt-"));
            if is_tmp {
                std::fs::remove_file(&p)?;
            }
        }
        Ok(removed)
    }
}

// --- record codec -----------------------------------------------------------
//
// One record per line: `<16-hex fnv1a-64 of payload> <payload JSON>`.  The
// payload reuses the workspace serde stand-in's `Value` model; floats that
// must stay byte-identical across the round trip (`chi_coeff`, the tile
// coefficients) are stored as raw `f64::to_bits` integers, exact `i128`
// rationals as `[num, den]` pairs, and `ρ`/`X₀` in `Expr`'s existing serde
// wire format.

/// FNV-1a 64-bit digest (offset basis `0xcbf29ce484222325`, prime
/// `0x100000001b3`) — tiny, dependency-free, and ample as a corruption (not
/// security) check.  Must match the standard constants exactly: the format
/// docs name FNV-1a-64, so an external tool computing the real thing has to
/// agree with every committed store.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encode one record line (without the trailing newline).
pub(crate) fn encode_record(
    key: &CanonicalKey,
    sol: &Result<CanonicalSolution, AnalysisError>,
) -> String {
    let payload = Value::Object(vec![
        ("key".to_string(), key_to_value(key)),
        ("sol".to_string(), solution_to_value(sol)),
    ]);
    // lint:allow(unwrap-expect): record payloads are plain maps of strings and numbers; serialization cannot fail
    let json = serde_json::to_string(&payload).expect("record serializes");
    format!("{:016x} {json}", fnv1a64(json.as_bytes()))
}

/// Decode one record line; `None` on any integrity or shape failure.
pub(crate) fn decode_record(line: &str) -> Option<StoreEntry> {
    let (digest, json) = line.split_once(' ')?;
    let expected = u64::from_str_radix(digest, 16).ok()?;
    if digest.len() != 16 || fnv1a64(json.as_bytes()) != expected {
        return None;
    }
    let payload: Value = serde_json::from_str(json).ok()?;
    let key = key_from_value(payload.get("key")?).ok()?;
    let sol = solution_from_value(payload.get("sol")?).ok()?;
    Some((key, sol))
}

fn rational_to_value(r: Rational) -> Value {
    Value::Array(vec![Value::Int(r.numer()), Value::Int(r.denom())])
}

fn rational_from_value(v: &Value) -> Result<Rational, DeError> {
    let [num, den] = v
        .as_array()
        .and_then(|a| <&[Value; 2]>::try_from(a).ok())
        .ok_or_else(|| DeError::msg("rational: expected [num, den]"))?;
    let num = num
        .as_i128()
        .ok_or_else(|| DeError::msg("rational: non-integer numerator"))?;
    let den = den
        .as_i128()
        .filter(|&d| d != 0)
        .ok_or_else(|| DeError::msg("rational: bad denominator"))?;
    Ok(Rational::new(num, den))
}

/// `f64` as its raw bit pattern: the only representation that survives the
/// text round trip bit-exactly for every value, including NaN payloads and
/// signed zeros (the JSON layer would flatten non-finite floats to `null`).
fn f64_to_value(x: f64) -> Value {
    Value::Int(i128::from(x.to_bits()))
}

fn f64_from_value(v: &Value) -> Result<f64, DeError> {
    let bits = v
        .as_i128()
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| DeError::msg("float: expected u64 bit pattern"))?;
    Ok(f64::from_bits(bits))
}

fn rows_to_value(rows: &[CanonicalRow]) -> Value {
    Value::Array(
        rows.iter()
            .map(|(exps, coeff)| Value::Array(vec![exps.to_value(), rational_to_value(*coeff)]))
            .collect(),
    )
}

fn rows_from_value(v: &Value) -> Result<Vec<CanonicalRow>, DeError> {
    v.as_array()
        .ok_or_else(|| DeError::msg("rows: expected array"))?
        .iter()
        .map(|row| {
            let [exps, coeff] = row
                .as_array()
                .and_then(|a| <&[Value; 2]>::try_from(a).ok())
                .ok_or_else(|| DeError::msg("row: expected [exps, rational]"))?;
            Ok((Vec::<i16>::from_value(exps)?, rational_from_value(coeff)?))
        })
        .collect()
}

fn key_to_value(key: &CanonicalKey) -> Value {
    let dominator = match &key.dominator {
        CanonicalDominator::Pure(rows) => {
            Value::Object(vec![("Pure".to_string(), rows_to_value(rows))])
        }
        CanonicalDominator::Max { terms, atoms } => {
            let terms = Value::Array(
                terms
                    .iter()
                    .map(|(exps, coeff, atom_ids)| {
                        Value::Array(vec![
                            exps.to_value(),
                            rational_to_value(*coeff),
                            atom_ids.to_value(),
                        ])
                    })
                    .collect(),
            );
            let atoms = Value::Array(
                atoms
                    .iter()
                    .map(|a| {
                        Value::Object(vec![
                            ("min".to_string(), Value::Bool(a.is_min)),
                            (
                                "branches".to_string(),
                                Value::Array(a.branches.iter().map(|b| rows_to_value(b)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            );
            Value::Object(vec![(
                "Max".to_string(),
                Value::Object(vec![
                    ("terms".to_string(), terms),
                    ("atoms".to_string(), atoms),
                ]),
            )])
        }
    };
    Value::Object(vec![
        ("n".to_string(), key.n_vars.to_value()),
        ("obj".to_string(), rows_to_value(&key.objective)),
        ("dom".to_string(), dominator),
    ])
}

fn key_from_value(v: &Value) -> Result<CanonicalKey, DeError> {
    let n_vars = usize::from_value(v.get("n").ok_or_else(|| DeError::msg("key: missing 'n'"))?)?;
    let objective = rows_from_value(
        v.get("obj")
            .ok_or_else(|| DeError::msg("key: missing 'obj'"))?,
    )?;
    let dom = v
        .get("dom")
        .ok_or_else(|| DeError::msg("key: missing 'dom'"))?;
    let dominator = if let Some(rows) = dom.get("Pure") {
        CanonicalDominator::Pure(rows_from_value(rows)?)
    } else if let Some(max) = dom.get("Max") {
        let terms = max
            .get("terms")
            .and_then(Value::as_array)
            .ok_or_else(|| DeError::msg("key: Max missing 'terms'"))?
            .iter()
            .map(|t| {
                let [exps, coeff, atom_ids] = t
                    .as_array()
                    .and_then(|a| <&[Value; 3]>::try_from(a).ok())
                    .ok_or_else(|| DeError::msg("key: Max term shape"))?;
                Ok((
                    Vec::<i16>::from_value(exps)?,
                    rational_from_value(coeff)?,
                    Vec::<u32>::from_value(atom_ids)?,
                ))
            })
            .collect::<Result<Vec<_>, DeError>>()?;
        let atoms = max
            .get("atoms")
            .and_then(Value::as_array)
            .ok_or_else(|| DeError::msg("key: Max missing 'atoms'"))?
            .iter()
            .map(|a| {
                let is_min = bool::from_value(
                    a.get("min")
                        .ok_or_else(|| DeError::msg("key: atom missing 'min'"))?,
                )?;
                let branches = a
                    .get("branches")
                    .and_then(Value::as_array)
                    .ok_or_else(|| DeError::msg("key: atom missing 'branches'"))?
                    .iter()
                    .map(rows_from_value)
                    .collect::<Result<Vec<_>, DeError>>()?;
                Ok(CanonicalAtom { is_min, branches })
            })
            .collect::<Result<Vec<_>, DeError>>()?;
        CanonicalDominator::Max { terms, atoms }
    } else {
        return Err(DeError::msg("key: dominator is neither Pure nor Max"));
    };
    let key = CanonicalKey {
        n_vars,
        objective,
        dominator,
    };
    // Shape validation: a record whose matrices disagree with `n` would
    // poison the cache with a key no live model can produce.
    let row_ok = |rows: &[CanonicalRow]| rows.iter().all(|(e, _)| e.len() == n_vars);
    let shape_ok = row_ok(&key.objective)
        && match &key.dominator {
            CanonicalDominator::Pure(rows) => row_ok(rows),
            CanonicalDominator::Max { terms, atoms } => {
                terms.iter().all(|(e, _, ids)| {
                    e.len() == n_vars && ids.iter().all(|&j| (j as usize) < atoms.len())
                }) && atoms.iter().all(|a| a.branches.iter().all(|b| row_ok(b)))
            }
        };
    if !shape_ok {
        return Err(DeError::msg("key: matrix shape disagrees with 'n'"));
    }
    Ok(key)
}

fn error_to_value(e: &AnalysisError) -> Value {
    let (tag, msg) = match e {
        AnalysisError::InvalidStatement(m) => ("InvalidStatement", m),
        AnalysisError::NoInputs(m) => ("NoInputs", m),
        AnalysisError::NumericalFailure(m) => ("NumericalFailure", m),
        AnalysisError::Internal(m) => ("Internal", m),
        // Kept total for codec symmetry, but never reached from `flush_store`:
        // cancelled results carry the transient scope and are filtered out.
        AnalysisError::Cancelled(m) => ("Cancelled", m),
    };
    Value::Object(vec![(tag.to_string(), Value::Str(msg.clone()))])
}

fn error_from_value(v: &Value) -> Result<AnalysisError, DeError> {
    let Value::Object(fields) = v else {
        return Err(DeError::msg("error: expected single-key object"));
    };
    let [(tag, payload)] = fields.as_slice() else {
        return Err(DeError::msg("error: expected exactly one variant"));
    };
    let msg = String::from_value(payload)?;
    match tag.as_str() {
        "InvalidStatement" => Ok(AnalysisError::InvalidStatement(msg)),
        "NoInputs" => Ok(AnalysisError::NoInputs(msg)),
        "NumericalFailure" => Ok(AnalysisError::NumericalFailure(msg)),
        "Internal" => Ok(AnalysisError::Internal(msg)),
        "Cancelled" => Ok(AnalysisError::Cancelled(msg)),
        other => Err(DeError::msg(format!("error: unknown variant '{other}'"))),
    }
}

fn solution_to_value(sol: &Result<CanonicalSolution, AnalysisError>) -> Value {
    match sol {
        Ok(s) => Value::Object(vec![(
            "Ok".to_string(),
            Value::Object(vec![
                ("sigma".to_string(), rational_to_value(s.sigma)),
                ("chi".to_string(), f64_to_value(s.chi_coeff)),
                ("rho".to_string(), s.rho.to_value()),
                ("x0".to_string(), s.x0.to_value()),
                (
                    "exps".to_string(),
                    Value::Array(
                        s.tile_exponents
                            .iter()
                            .map(|r| rational_to_value(*r))
                            .collect(),
                    ),
                ),
                (
                    "coeffs".to_string(),
                    Value::Array(s.tile_coeffs.iter().map(|c| f64_to_value(*c)).collect()),
                ),
            ]),
        )]),
        Err(e) => Value::Object(vec![("Err".to_string(), error_to_value(e))]),
    }
}

fn solution_from_value(v: &Value) -> Result<Result<CanonicalSolution, AnalysisError>, DeError> {
    if let Some(err) = v.get("Err") {
        return Ok(Err(error_from_value(err)?));
    }
    let s = v
        .get("Ok")
        .ok_or_else(|| DeError::msg("solution: expected Ok or Err"))?;
    let field = |name: &str| {
        s.get(name)
            .ok_or_else(|| DeError::msg(format!("solution: missing '{name}'")))
    };
    let tile_exponents = field("exps")?
        .as_array()
        .ok_or_else(|| DeError::msg("solution: 'exps' not an array"))?
        .iter()
        .map(rational_from_value)
        .collect::<Result<Vec<_>, DeError>>()?;
    let tile_coeffs = field("coeffs")?
        .as_array()
        .ok_or_else(|| DeError::msg("solution: 'coeffs' not an array"))?
        .iter()
        .map(f64_from_value)
        .collect::<Result<Vec<_>, DeError>>()?;
    if tile_exponents.len() != tile_coeffs.len() {
        return Err(DeError::msg("solution: exps/coeffs length mismatch"));
    }
    Ok(Ok(CanonicalSolution {
        sigma: rational_from_value(field("sigma")?)?,
        chi_coeff: f64_from_value(field("chi")?)?,
        rho: Expr::from_value(field("rho")?)?,
        x0: Option::<Expr>::from_value(field("x0")?)?,
        tile_exponents,
        tile_coeffs,
    }))
}

// --- report-record codec -----------------------------------------------------
//
// Same line format and float/rational conventions as solve records; the
// payload is `{"key": <u64 structural program key>, "report": {...}}` with the
// finished per-array Theorem-1 terms, the evaluated subgraphs, and the total
// bound — everything a warm path needs to resplice a `ProgramAnalysis`
// without touching the SDG pipeline.

/// Encode a report-record line (without the trailing newline).
pub(crate) fn encode_report_record(key: u64, report: &StoredReport) -> String {
    let payload = Value::Object(vec![
        ("key".to_string(), Value::Int(i128::from(key))),
        ("report".to_string(), report_to_value(report)),
    ]);
    // lint:allow(unwrap-expect): record payloads are plain maps of strings and numbers; serialization cannot fail
    let json = serde_json::to_string(&payload).expect("report record serializes");
    format!("{:016x} {json}", fnv1a64(json.as_bytes()))
}

/// Decode one report-record line; `None` on any integrity or shape failure.
pub(crate) fn decode_report_record(line: &str) -> Option<ReportEntry> {
    let (digest, json) = line.split_once(' ')?;
    let expected = u64::from_str_radix(digest, 16).ok()?;
    if digest.len() != 16 || fnv1a64(json.as_bytes()) != expected {
        return None;
    }
    let payload: Value = serde_json::from_str(json).ok()?;
    let key = payload
        .get("key")?
        .as_i128()
        .and_then(|n| u64::try_from(n).ok())?;
    let report = report_from_value(payload.get("report")?).ok()?;
    Some((key, report))
}

/// An exact-coefficient polynomial as `[[ [[var, pow], ...], [num, den] ], ...]`.
/// `Polynomial`'s terms are BTreeMap-ordered, so encoding is deterministic and
/// the rebuilt value renders byte-identically.
fn poly_to_value(p: &Polynomial) -> Value {
    Value::Array(
        p.terms()
            .map(|(mono, coeff)| {
                let vars = Value::Array(
                    mono.0
                        .iter()
                        .map(|(v, e)| {
                            Value::Array(vec![Value::Str(v.clone()), Value::Int(i128::from(*e))])
                        })
                        .collect(),
                );
                Value::Array(vec![vars, rational_to_value(*coeff)])
            })
            .collect(),
    )
}

fn poly_from_value(v: &Value) -> Result<Polynomial, DeError> {
    let mut acc = Polynomial::zero();
    for term in v
        .as_array()
        .ok_or_else(|| DeError::msg("poly: expected array of terms"))?
    {
        let [vars, coeff] = term
            .as_array()
            .and_then(|a| <&[Value; 2]>::try_from(a).ok())
            .ok_or_else(|| DeError::msg("poly: term shape"))?;
        let mut mono = Polynomial::constant(rational_from_value(coeff)?);
        for pair in vars
            .as_array()
            .ok_or_else(|| DeError::msg("poly: vars not an array"))?
        {
            let [name, pow] = pair
                .as_array()
                .and_then(|a| <&[Value; 2]>::try_from(a).ok())
                .ok_or_else(|| DeError::msg("poly: var shape"))?;
            let name = String::from_value(name)?;
            let pow = pow
                .as_i128()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| DeError::msg("poly: bad exponent"))?;
            mono = mono.mul(&Polynomial::var(&name).pow(pow));
        }
        acc = acc.add(&mono);
    }
    Ok(acc)
}

fn intensity_to_value(r: &IntensityResult) -> Value {
    Value::Object(vec![
        ("name".to_string(), Value::Str(r.name.clone())),
        ("sigma".to_string(), rational_to_value(r.sigma)),
        ("chi".to_string(), f64_to_value(r.chi_coeff)),
        ("rho".to_string(), r.rho.to_value()),
        ("x0".to_string(), r.x0.to_value()),
        (
            "exps".to_string(),
            Value::Array(
                r.tile_exponents
                    .iter()
                    .map(|(v, e)| Value::Array(vec![Value::Str(v.clone()), rational_to_value(*e)]))
                    .collect(),
            ),
        ),
        (
            "coeffs".to_string(),
            Value::Array(
                r.tile_coeffs
                    .iter()
                    .map(|(v, c)| Value::Array(vec![Value::Str(v.clone()), f64_to_value(*c)]))
                    .collect(),
            ),
        ),
    ])
}

fn intensity_from_value(v: &Value) -> Result<IntensityResult, DeError> {
    let field = |name: &str| {
        v.get(name)
            .ok_or_else(|| DeError::msg(format!("intensity: missing '{name}'")))
    };
    let tile_exponents = field("exps")?
        .as_array()
        .ok_or_else(|| DeError::msg("intensity: 'exps' not an array"))?
        .iter()
        .map(|pair| {
            let [name, e] = pair
                .as_array()
                .and_then(|a| <&[Value; 2]>::try_from(a).ok())
                .ok_or_else(|| DeError::msg("intensity: exps pair shape"))?;
            Ok((String::from_value(name)?, rational_from_value(e)?))
        })
        .collect::<Result<Vec<_>, DeError>>()?;
    let tile_coeffs = field("coeffs")?
        .as_array()
        .ok_or_else(|| DeError::msg("intensity: 'coeffs' not an array"))?
        .iter()
        .map(|pair| {
            let [name, c] = pair
                .as_array()
                .and_then(|a| <&[Value; 2]>::try_from(a).ok())
                .ok_or_else(|| DeError::msg("intensity: coeffs pair shape"))?;
            Ok((String::from_value(name)?, f64_from_value(c)?))
        })
        .collect::<Result<Vec<_>, DeError>>()?;
    Ok(IntensityResult {
        name: String::from_value(field("name")?)?,
        sigma: rational_from_value(field("sigma")?)?,
        chi_coeff: f64_from_value(field("chi")?)?,
        rho: Expr::from_value(field("rho")?)?,
        x0: Option::<Expr>::from_value(field("x0")?)?,
        tile_exponents,
        tile_coeffs,
    })
}

fn array_bound_to_value(b: &ArrayBound) -> Value {
    Value::Object(vec![
        ("array".to_string(), Value::Str(b.array.clone())),
        ("vertices".to_string(), poly_to_value(&b.vertex_count)),
        ("rho".to_string(), b.rho.to_value()),
        ("sigma".to_string(), rational_to_value(b.sigma)),
        ("best".to_string(), b.best_subgraph.to_value()),
        ("bound".to_string(), b.bound.to_value()),
    ])
}

fn array_bound_from_value(v: &Value) -> Result<ArrayBound, DeError> {
    let field = |name: &str| {
        v.get(name)
            .ok_or_else(|| DeError::msg(format!("array bound: missing '{name}'")))
    };
    Ok(ArrayBound {
        array: String::from_value(field("array")?)?,
        vertex_count: poly_from_value(field("vertices")?)?,
        rho: Expr::from_value(field("rho")?)?,
        sigma: rational_from_value(field("sigma")?)?,
        best_subgraph: Vec::<String>::from_value(field("best")?)?,
        bound: Expr::from_value(field("bound")?)?,
    })
}

fn subgraph_to_value(s: &SubgraphIntensity) -> Value {
    Value::Object(vec![
        ("arrays".to_string(), s.arrays.to_value()),
        ("intensity".to_string(), intensity_to_value(&s.intensity)),
        ("rho_ref".to_string(), f64_to_value(s.rho_ref)),
    ])
}

fn subgraph_from_value(v: &Value) -> Result<SubgraphIntensity, DeError> {
    let field = |name: &str| {
        v.get(name)
            .ok_or_else(|| DeError::msg(format!("subgraph: missing '{name}'")))
    };
    Ok(SubgraphIntensity {
        arrays: Vec::<String>::from_value(field("arrays")?)?,
        intensity: intensity_from_value(field("intensity")?)?,
        rho_ref: f64_from_value(field("rho_ref")?)?,
    })
}

fn report_to_value(r: &StoredReport) -> Value {
    Value::Object(vec![
        (
            "per_array".to_string(),
            Value::Array(r.per_array.iter().map(array_bound_to_value).collect()),
        ),
        (
            "subgraphs".to_string(),
            Value::Array(r.subgraphs.iter().map(subgraph_to_value).collect()),
        ),
        ("bound".to_string(), r.bound.to_value()),
        ("notes".to_string(), r.notes.to_value()),
    ])
}

fn report_from_value(v: &Value) -> Result<StoredReport, DeError> {
    let field = |name: &str| {
        v.get(name)
            .ok_or_else(|| DeError::msg(format!("report: missing '{name}'")))
    };
    let per_array = field("per_array")?
        .as_array()
        .ok_or_else(|| DeError::msg("report: 'per_array' not an array"))?
        .iter()
        .map(array_bound_from_value)
        .collect::<Result<Vec<_>, DeError>>()?;
    let subgraphs = field("subgraphs")?
        .as_array()
        .ok_or_else(|| DeError::msg("report: 'subgraphs' not an array"))?
        .iter()
        .map(subgraph_from_value)
        .collect::<Result<Vec<_>, DeError>>()?;
    Ok(StoredReport {
        per_array,
        subgraphs,
        bound: Expr::from_value(field("bound")?)?,
        notes: Vec::<String>::from_value(field("notes")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::canonicalize;
    use soap_core::AccessModel;

    fn sample_key(max_form: bool) -> CanonicalKey {
        let dv = |v: &str| Expr::sym(v);
        let dominator = if max_form {
            dv("a")
                .mul(dv("b"))
                .max(dv("a").mul(dv("c")))
                .add(dv("b").mul(dv("c")))
        } else {
            dv("a").mul(dv("b")).add(dv("b").mul(dv("c")))
        };
        canonicalize(&AccessModel {
            name: "t".into(),
            tile_variables: vec!["a".into(), "b".into(), "c".into()],
            objective: dv("a").mul(dv("b")).mul(dv("c")),
            dominator,
            access_index_sets: vec![],
        })
        .expect("cacheable")
        .key
    }

    fn sample_solution() -> CanonicalSolution {
        CanonicalSolution {
            sigma: Rational::new(3, 2),
            chi_coeff: 2.0_f64.sqrt() * 0.1234567891234567,
            rho: Expr::sym("S").pow(Rational::new(1, 2)).mul(Expr::int(2)),
            x0: Some(Expr::int(3).mul(Expr::sym("S"))),
            tile_exponents: vec![Rational::new(1, 2); 3],
            tile_coeffs: vec![0.5, f64::NAN, -0.0],
        }
    }

    #[test]
    fn fnv1a64_matches_the_published_test_vectors() {
        // Standard FNV-1a-64 vectors (Noll's reference tables): the on-disk
        // format names this hash, so external tooling must reproduce it.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        for max_form in [false, true] {
            let key = sample_key(max_form);
            let line = encode_record(&key, &Ok(sample_solution()));
            let (back_key, back_sol) = decode_record(&line).expect("decodes");
            assert_eq!(back_key, key);
            let sol = back_sol.expect("ok solution");
            let orig = sample_solution();
            assert_eq!(sol.sigma, orig.sigma);
            assert_eq!(sol.chi_coeff.to_bits(), orig.chi_coeff.to_bits());
            assert_eq!(format!("{}", sol.rho), format!("{}", orig.rho));
            assert_eq!(
                sol.x0.map(|e| format!("{e}")),
                orig.x0.map(|e| format!("{e}"))
            );
            assert_eq!(sol.tile_exponents, orig.tile_exponents);
            for (a, b) in sol.tile_coeffs.iter().zip(&orig.tile_coeffs) {
                // Bit compare: NaN and -0.0 must survive the text round trip.
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn failures_round_trip() {
        let key = sample_key(false);
        let err = AnalysisError::NumericalFailure("model t: diverged".into());
        let line = encode_record(&key, &Err(err.clone()));
        let (_, back) = decode_record(&line).expect("decodes");
        assert_eq!(back.err(), Some(err));
    }

    #[test]
    fn corrupt_lines_are_rejected_not_panicked() {
        let key = sample_key(true);
        let line = encode_record(&key, &Ok(sample_solution()));
        // Truncation anywhere in the line fails the digest.
        for cut in [1, 17, line.len() / 2, line.len() - 1] {
            assert!(decode_record(&line[..cut]).is_none(), "cut at {cut}");
        }
        // A flipped payload byte fails the digest.
        let mut flipped = line.clone().into_bytes();
        let last = flipped.len() - 2;
        flipped[last] ^= 0x01;
        assert!(decode_record(std::str::from_utf8(&flipped).unwrap()).is_none());
        // A well-formed digest over a garbage payload fails the parse.
        let garbage = format!("{:016x} {{\"key\":1}}", fnv1a64(b"{\"key\":1}"));
        assert!(decode_record(&garbage).is_none());
        assert!(decode_record("").is_none());
        assert!(decode_record("nonsense").is_none());
    }

    fn sample_report() -> StoredReport {
        let s = sample_solution();
        let intensity = IntensityResult {
            name: "merged(A,B)".into(),
            sigma: s.sigma,
            chi_coeff: s.chi_coeff,
            rho: s.rho.clone(),
            x0: s.x0.clone(),
            tile_exponents: vec![
                ("i".into(), Rational::new(1, 2)),
                ("j".into(), Rational::new(1, 3)),
            ],
            tile_coeffs: vec![("i".into(), 0.5), ("j".into(), f64::NAN)],
        };
        let vertex_count = Polynomial::var("n")
            .mul(&Polynomial::var("m"))
            .add(&Polynomial::constant(Rational::new(-3, 2)).mul(&Polynomial::var("n").pow(2)));
        StoredReport {
            per_array: vec![ArrayBound {
                array: "C".into(),
                vertex_count,
                rho: s.rho.clone(),
                sigma: s.sigma,
                best_subgraph: vec!["A".into(), "B".into(), "C".into()],
                bound: Expr::sym("n").pow(Rational::new(3, 1)).mul(Expr::sym("S")),
            }],
            subgraphs: vec![SubgraphIntensity {
                arrays: vec!["A".into(), "B".into()],
                intensity,
                rho_ref: -0.0,
            }],
            bound: Expr::sym("n").pow(Rational::new(3, 1)),
            notes: vec!["note one".into()],
        }
    }

    #[test]
    fn report_records_round_trip_bit_exactly() {
        let report = sample_report();
        let line = encode_report_record(0xdead_beef_cafe_f00d, &report);
        let (key, back) = decode_report_record(&line).expect("decodes");
        assert_eq!(key, 0xdead_beef_cafe_f00d);
        assert_eq!(back.per_array.len(), 1);
        let (a, b) = (&back.per_array[0], &report.per_array[0]);
        assert_eq!(a.array, b.array);
        // Display equality is the contract the golden-bounds file depends on.
        assert_eq!(format!("{}", a.vertex_count), format!("{}", b.vertex_count));
        assert_eq!(format!("{}", a.rho), format!("{}", b.rho));
        assert_eq!(a.sigma, b.sigma);
        assert_eq!(a.best_subgraph, b.best_subgraph);
        assert_eq!(format!("{}", a.bound), format!("{}", b.bound));
        let (sa, sb) = (&back.subgraphs[0], &report.subgraphs[0]);
        assert_eq!(sa.arrays, sb.arrays);
        assert_eq!(sa.rho_ref.to_bits(), sb.rho_ref.to_bits());
        assert_eq!(
            sa.intensity.chi_coeff.to_bits(),
            sb.intensity.chi_coeff.to_bits()
        );
        assert_eq!(sa.intensity.tile_exponents, sb.intensity.tile_exponents);
        for ((va, ca), (vb, cb)) in sa
            .intensity
            .tile_coeffs
            .iter()
            .zip(&sb.intensity.tile_coeffs)
        {
            assert_eq!(va, vb);
            assert_eq!(ca.to_bits(), cb.to_bits());
        }
        assert_eq!(format!("{}", back.bound), format!("{}", report.bound));
        assert_eq!(back.notes, report.notes);
        // Corruption is rejected, never panicked.
        for cut in [1, 17, line.len() / 2, line.len() - 1] {
            assert!(decode_report_record(&line[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn report_segments_are_a_separate_family() {
        let dir = std::env::temp_dir().join(format!("soap-store-family-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SolveStore::open(&dir).unwrap();
        let key = sample_key(false);
        let sol = Ok(sample_solution());
        store.append(&[(&key, &sol)]).unwrap();
        let report = sample_report();
        store.append_reports(&[(7, &report)]).unwrap();
        // Family listings never bleed into each other.
        assert_eq!(store.segment_files().unwrap().len(), 1);
        assert_eq!(store.report_files().unwrap().len(), 1);
        let solve_stats = store.stat().unwrap();
        assert_eq!((solve_stats.segments, solve_stats.entries), (1, 1));
        let report_stats = store.report_stat().unwrap();
        assert_eq!((report_stats.segments, report_stats.entries), (1, 1));
        let (entries, _) = store.load_reports().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, 7);
        // clear() removes both families.
        assert_eq!(store.clear().unwrap(), 2);
        assert!(store.report_files().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_clear_removes_segments() {
        let dir = std::env::temp_dir().join(format!("soap-store-clear-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SolveStore::open(&dir).unwrap();
        let key = sample_key(false);
        let sol = Ok(sample_solution());
        store.append(&[(&key, &sol)]).unwrap();
        store.append(&[(&key, &sol)]).unwrap();
        assert_eq!(store.segment_files().unwrap().len(), 2);
        let stats = store.stat().unwrap();
        assert_eq!((stats.segments, stats.records, stats.entries), (2, 2, 1));
        assert_eq!(store.clear().unwrap(), 2);
        assert!(store.segment_files().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
