//! `soap-cli` — derive I/O lower bounds directly from provided source code,
//! the command-line face of the analysis (the paper's "open-source tool").
//!
//! ```text
//! soap-cli analyze --lang c path/to/kernel.c
//! soap-cli analyze --lang python path/to/kernel.py [--injective] [--json]
//! soap-cli kernel gemm            # analyze a built-in Table-2 kernel
//! soap-cli list                   # list the built-in kernels
//! ```

use soap_baselines::sota_bound;
use soap_frontend::{parse_c, parse_python};
use soap_ir::Program;
use soap_sdg::{analyze_program_with, SdgOptions};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n  soap-cli analyze --lang <c|python> <file> [--injective] [--json]\n  soap-cli kernel <name> [--json]\n  soap-cli list"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("list") => {
            for entry in soap_kernels::registry() {
                println!("{:<24} ({:?})", entry.name, entry.group);
            }
            ExitCode::SUCCESS
        }
        Some("kernel") => {
            let name = args.get(1).unwrap_or_else(|| usage());
            let Some(entry) = soap_kernels::by_name(name) else {
                eprintln!("unknown kernel '{name}'; run `soap-cli list`");
                return ExitCode::FAILURE;
            };
            report(
                &entry.program,
                entry.assume_injective,
                args.contains(&"--json".to_string()),
            )
        }
        Some("analyze") => {
            let mut lang = "python".to_string();
            let mut file = None;
            let mut injective = false;
            let mut json = false;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--lang" => {
                        i += 1;
                        lang = args.get(i).cloned().unwrap_or_else(|| usage());
                    }
                    "--injective" => injective = true,
                    "--json" => json = true,
                    other if !other.starts_with("--") => file = Some(other.to_string()),
                    _ => usage(),
                }
                i += 1;
            }
            let file = file.unwrap_or_else(|| usage());
            let source = match std::fs::read_to_string(&file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let name = std::path::Path::new(&file)
                .file_stem()
                .map(|s| s.to_string_lossy().to_string())
                .unwrap_or_else(|| "program".to_string());
            let parsed = match lang.as_str() {
                "c" => parse_c(&name, &source),
                "python" | "py" => parse_python(&name, &source),
                other => {
                    eprintln!("unknown language '{other}' (expected c or python)");
                    return ExitCode::FAILURE;
                }
            };
            match parsed {
                Ok(program) => report(&program, injective, json),
                Err(e) => {
                    eprintln!("parse error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

fn report(program: &Program, assume_injective: bool, json: bool) -> ExitCode {
    let opts = SdgOptions {
        assume_injective,
        ..SdgOptions::default()
    };
    match analyze_program_with(program, &opts) {
        Ok(analysis) => {
            if json {
                let record = serde_json::json!({
                    "program": program.name,
                    "bound": format!("{}", analysis.bound),
                    "per_array": analysis.per_array.iter().map(|a| serde_json::json!({
                        "array": a.array,
                        "rho": format!("{}", a.rho),
                        "sigma": format!("{}", a.sigma),
                        "vertices": format!("{}", a.vertex_count),
                        "subgraph": a.best_subgraph,
                    })).collect::<Vec<_>>(),
                    "notes": analysis.notes,
                });
                println!(
                    "{}",
                    serde_json::to_string_pretty(&record).expect("serializable")
                );
            } else {
                println!("program {}", program.name);
                println!("  I/O lower bound: Q ≥ {}", analysis.bound);
                for a in &analysis.per_array {
                    println!(
                        "  array {:<12} |A| = {:<24} ρ = {:<16} via {{{}}}",
                        a.array,
                        format!("{}", a.vertex_count),
                        format!("{}", a.rho),
                        a.best_subgraph.join(",")
                    );
                }
                if let Some(t) = sota_bound(&program.name) {
                    println!(
                        "  paper / prior:   {}  (source: {})",
                        t.paper_soap_bound, t.source
                    );
                }
                for n in &analysis.notes {
                    println!("  note: {n}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("analysis failed: {e}");
            ExitCode::FAILURE
        }
    }
}
