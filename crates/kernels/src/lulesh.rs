//! The dominant LULESH kernel (Table 2, "Various").
//!
//! LULESH (Livermore Unstructured Lagrangian Explicit Shock Hydrodynamics)
//! spends the bulk of one time step in `CalcKinematicsForElems` /
//! `CalcHourglassControlForElems`: for every element, eight nodal coordinates
//! and velocities are gathered through the element-to-node connectivity and a
//! chain of per-element quantities is produced (Jacobian/determinant, strain
//! rates, hourglass forces, …).
//!
//! The gather is data dependent (indirect through `nodelist`), which is
//! outside SOAP; following the paper's guidance ("we find a SOAP
//! representation that bounds the access sizes from below") the gathered
//! nodal fields are modelled as per-element arrays of size `numElem` — a
//! strict lower bound on the accessed data.  The kernel is bandwidth bound
//! (`ρ → 1`), and the number of per-element arrays read and written gives the
//! paper's `22·numElem` leading term.

// lint:allow-file(unwrap-expect): kernel definitions are static tables; an invalid program is an authoring bug caught by tier-1 tests, not a runtime condition
use soap_ir::{Program, ProgramBuilder, StatementBuilder};

/// A per-element statement `out[e] = f(inputs[e]...)` over `numElem` elements.
fn elementwise(name: &str, out: &str, inputs: &[&str]) -> StatementBuilder {
    let mut st = StatementBuilder::new(name)
        .loops(&[("e", "0", "numElem")])
        .write(out, "e");
    for i in inputs {
        st = st.read(i, "e");
    }
    st
}

/// The dominant LULESH element kernel as a SOAP program.
///
/// The statement chain mirrors `CalcKinematicsForElems` +
/// `CalcLagrangeElements` + the element-centred part of
/// `CalcQForElems`/`CalcHourglassControlForElems`: 11 computed per-element
/// fields, each read by the next stage, over 11 gathered/elemental inputs —
/// 22 `numElem`-sized arrays of traffic in total.
pub fn lulesh_kernel() -> Program {
    let chain: Vec<(&str, &str, Vec<&str>)> = vec![
        // (statement, output, inputs)
        ("volume", "vnew", vec!["x8n", "y8n", "z8n"]),
        ("rel_volume", "delv", vec!["vnew", "volo"]),
        ("char_length", "arealg", vec!["vnew", "x8n", "y8n"]),
        ("strain_xx", "dxx", vec!["xd8n", "b_x", "detJ"]),
        ("strain_yy", "dyy", vec!["yd8n", "b_y", "detJ"]),
        ("strain_zz", "dzz", vec!["zd8n", "b_z", "detJ"]),
        ("vdov", "vdovnew", vec!["dxx", "dyy", "dzz"]),
        ("deviatoric_xx", "dxx_dev", vec!["dxx", "vdovnew"]),
        ("deviatoric_yy", "dyy_dev", vec!["dyy", "vdovnew"]),
        ("deviatoric_zz", "dzz_dev", vec!["dzz", "vdovnew"]),
        ("q_gradient", "delv_xi", vec!["xd8n", "vnew", "detJ"]),
    ];
    let mut b = ProgramBuilder::new("lulesh");
    for (name, out, inputs) in chain {
        b = b.push(
            elementwise(name, out, &inputs)
                .build()
                .expect("lulesh element statement is valid"),
        );
    }
    b.build().expect("lulesh is a valid SOAP program")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lulesh_program_validates() {
        let p = lulesh_kernel();
        assert!(p.validate().is_ok());
        assert_eq!(p.statements.len(), 11);
    }

    #[test]
    fn traffic_is_proportional_to_numelem() {
        let p = lulesh_kernel();
        let mut b = std::collections::BTreeMap::new();
        b.insert("numElem".to_string(), 1000.0);
        // 11 computed element arrays → 11000 compute vertices.
        assert_eq!(p.total_vertex_count().eval(&b).unwrap(), 11_000.0);
        // 22 distinct element-sized arrays touched in total (11 computed +
        // 11 gathered/elemental inputs).
        assert_eq!(p.arrays().len(), 22);
    }
}
