//! Self-checks for the model checker itself: it must find classic races and
//! lost wakeups (no vacuous passes), exhaust small schedule spaces, and
//! replay failures deterministically.

use interleave::atomic::AtomicUsize;
use interleave::sync::{Condvar, Mutex};
use interleave::{thread, Model};
use std::sync::atomic::Ordering;
use std::sync::Arc;

#[test]
fn atomic_counter_is_exhaustively_correct() {
    let report = Model::new("self-atomic-counter").check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(
        report.exhaustive,
        "two fetch_adds are a tiny space: {report:?}"
    );
    assert!(
        report.dfs_schedules > 1,
        "must explore more than one schedule"
    );
}

#[test]
fn torn_read_modify_write_is_caught() {
    // The classic lost update: load + store instead of fetch_add.  The
    // checker must find a schedule where both threads read 0.
    let failure = Model::new("self-torn-rmw").expect_failure(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(failure.message.contains("lost update"), "{failure:?}");
    assert!(!failure.schedule.is_empty());
}

#[test]
fn mutex_protected_counter_is_correct() {
    let report = Model::new("self-mutex-counter").check(|| {
        let n = Arc::new(Mutex::new(0usize));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    let mut guard = n.lock();
                    *guard += 1;
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        assert_eq!(*n.lock(), 2);
    });
    assert!(report.failure.is_none());
}

#[test]
fn missing_notify_surfaces_as_deadlock() {
    // A waiter parks on the condvar; the setter flips the flag but never
    // notifies.  The checker must report the lost wakeup as a deadlock.
    let failure = Model::new("self-missing-notify").expect_failure(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter_pair = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (flag, cv) = &*waiter_pair;
            let mut ready = flag.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        {
            let (flag, _cv) = &*pair;
            let mut ready = flag.lock();
            *ready = true;
            // BUG under test: no cv.notify_one() here.
        }
        waiter.join();
    });
    assert!(failure.message.contains("deadlock"), "{failure:?}");
    assert!(failure.message.contains("lost wakeup"), "{failure:?}");
}

#[test]
fn notify_one_with_proper_loop_passes() {
    let report = Model::new("self-notify-one").check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter_pair = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (flag, cv) = &*waiter_pair;
            let mut ready = flag.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        {
            let (flag, cv) = &*pair;
            let mut ready = flag.lock();
            *ready = true;
            cv.notify_one();
        }
        waiter.join();
    });
    assert!(report.failure.is_none());
    assert!(report.exhaustive);
}

#[test]
fn failing_schedule_replays_deterministically() {
    // expect_failure already re-runs the found schedule and asserts the
    // failure reproduces; this pins the schedule string shape on top.
    let failure = Model::new("self-replay").expect_failure(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(
        failure
            .schedule
            .chars()
            .all(|c| c.is_ascii_digit() || c == '.'),
        "schedule must be a dot-separated decision string: {}",
        failure.schedule
    );
}

#[test]
fn random_fallback_runs_when_dfs_is_capped() {
    // Cap the DFS below the space size; the random phase must still probe.
    let report = Model::new("self-random-fallback")
        .max_dfs_schedules(2)
        .max_random_schedules(16)
        .explore(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let workers: Vec<_> = (0..3)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for w in workers {
                w.join();
            }
            assert_eq!(n.load(Ordering::SeqCst), 3);
        });
    assert!(!report.exhaustive);
    assert_eq!(report.dfs_schedules, 2);
    assert_eq!(report.random_schedules, 16);
    assert!(report.failure.is_none());
}
