//! # soap-symbolic
//!
//! Exact rational and symbolic math substrate for the SOAP I/O lower-bound
//! analysis.  The paper ("Pebbles, Graphs, and a Pinch of Combinatorics",
//! SPAA 2021) performs its derivations with the MATLAB symbolic toolbox; this
//! crate provides the equivalent machinery from scratch:
//!
//! * [`Rational`] — exact arithmetic over `i128`.
//! * [`Expr`] — symbolic expressions (sums, products, rational powers, min/max)
//!   with simplification, differentiation, substitution, and evaluation.
//! * [`Polynomial`] — sparse multivariate polynomials, used for exact
//!   iteration-domain counting (including Faulhaber summation over affine
//!   bounds, which handles triangular loop nests such as Cholesky or LU).
//! * [`lp`] — a small exact-rational simplex solver for the access-exponent LP
//!   that determines the exponent σ of `χ(X) = c·X^σ`.
//! * [`posy`] — compiled posynomial forms (dense exponent matrix + flat
//!   coefficients) with allocation-free evaluation and analytic log-space
//!   gradients, the data layout every hot solver probe runs on.
//! * [`opt`] — the numeric KKT solver for the constrained product maximization
//!   (optimization problem (8) of the paper) and the power-law fitting that
//!   recovers the constant `c`.
//! * [`closed_form`] — recognition of fitted constants as low-degree algebraic
//!   numbers so that bounds print like the paper's (`2N³/√S`, `12N²T/√S`, …).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closed_form;
pub mod deadline;
pub mod expr;
pub mod intern;
pub mod lp;
pub mod opt;
pub mod poly;
pub mod posy;
pub mod rational;

pub use closed_form::ClosedForm;
pub use deadline::{Deadline, Expired};
pub use expr::Expr;
pub use intern::Symbol;
pub use lp::LinearProgram;
pub use opt::{
    reset_solver_counters, solver_counters, CompiledConstraint, ConstrainedProduct, PowerLaw,
    SolveInfo, SolverCounters, KKT_HISTOGRAM_EDGES, KKT_ITERATION_CAP, POWER_LAW_PROBES,
};
pub use poly::{Monomial, Polynomial};
pub use posy::{CompiledPosynomial, MaxPosynomial, MaxScratch};
pub use rational::Rational;

/// Total order on `f64` that sorts NaN *below* every number (including
/// `-inf`), shared by every float sort in the workspace that must not panic
/// or misbehave on a rogue NaN:
///
/// * the Theorem-1 intensity maximum in `soap-sdg` (a subgraph whose `ρ`
///   failed to evaluate can never win the maximum),
/// * the timing-sample sorts of the `perf` binary and the criterion stand-in,
///   where a single NaN sample must not panic a whole bench run — under this
///   order it sorts to the front, so it surfaces loudly as a NaN minimum in
///   the printed stats instead of aborting them.
///
/// "Last" refers to preference: NaN loses every `max_by` under this order.
/// This differs from `f64::total_cmp`, which sorts *negative* NaN below all
/// numbers but positive NaN above them — under `total_cmp` a positive-NaN
/// intensity would win the Theorem-1 maximum.
pub fn nan_last(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        // lint:allow(partial-cmp): nan_last IS the sanctioned total order — the one raw comparison site, and both operands are non-NaN here
        (false, false) => a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal),
    }
}

#[cfg(test)]
mod nan_last_tests {
    use super::nan_last;
    use std::cmp::Ordering;

    #[test]
    fn nan_sorts_below_everything() {
        assert_eq!(nan_last(f64::NAN, f64::NEG_INFINITY), Ordering::Less);
        assert_eq!(nan_last(f64::NEG_INFINITY, f64::NAN), Ordering::Greater);
        assert_eq!(nan_last(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(nan_last(1.0, 2.0), Ordering::Less);
        let mut v = [2.0, f64::NAN, 1.0, f64::INFINITY];
        v.sort_by(|a, b| nan_last(*a, *b));
        assert!(v[0].is_nan());
        assert_eq!(&v[1..], &[1.0, 2.0, f64::INFINITY]);
        // A max_by under this order can never be won by NaN.
        let best = [1.0, f64::NAN, 3.0]
            .into_iter()
            .max_by(|a, b| nan_last(*a, *b))
            .unwrap();
        assert_eq!(best, 3.0);
    }
}
