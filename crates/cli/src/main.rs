//! `soap-cli` — derive I/O lower bounds directly from provided source code,
//! the command-line face of the analysis (the paper's "open-source tool").
//!
//! ```text
//! soap-cli analyze --lang c path/to/kernel.c
//! soap-cli analyze --lang python path/to/kernel.py [--injective] [--json]
//! soap-cli kernel gemm            # analyze a built-in Table-2 kernel
//! soap-cli batch gemm 2mm 3mm     # batch-analyze over one shared cache
//! soap-cli batch --all            # the whole built-in registry
//! soap-cli list                   # list the built-in kernels
//! ```
//!
//! `batch` accepts any mix of built-in kernel names and source files (`.c`,
//! `.py`), runs them all through the cross-program batch engine (one shared
//! solve cache, so renamed structures are solved once per *suite*), and
//! emits one JSON line per program followed by a suite-summary line with the
//! shared-cache accounting.

use soap_baselines::sota_bound;
use soap_frontend::{parse_c, parse_python};
use soap_ir::Program;
use soap_sdg::{analyze_program_with, analyze_suite, SdgOptions, SuiteProgram};
use std::io::Write as _;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n  soap-cli analyze --lang <c|python> <file> [--injective] [--json]\n  soap-cli kernel <name> [--json]\n  soap-cli batch [--all] [--injective] [--out FILE] [<kernel-or-file>...]\n  soap-cli list"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("list") => {
            for entry in soap_kernels::registry() {
                println!("{:<24} ({:?})", entry.name, entry.group);
            }
            ExitCode::SUCCESS
        }
        Some("kernel") => {
            let name = args.get(1).unwrap_or_else(|| usage());
            let Some(entry) = soap_kernels::by_name(name) else {
                eprintln!("unknown kernel '{name}'; run `soap-cli list`");
                return ExitCode::FAILURE;
            };
            report(
                &entry.program,
                entry.assume_injective,
                args.contains(&"--json".to_string()),
            )
        }
        Some("batch") => batch(&args[1..]),
        Some("analyze") => {
            let mut lang = "python".to_string();
            let mut file = None;
            let mut injective = false;
            let mut json = false;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--lang" => {
                        i += 1;
                        lang = args.get(i).cloned().unwrap_or_else(|| usage());
                    }
                    "--injective" => injective = true,
                    "--json" => json = true,
                    other if !other.starts_with("--") => file = Some(other.to_string()),
                    _ => usage(),
                }
                i += 1;
            }
            let file = file.unwrap_or_else(|| usage());
            let source = match std::fs::read_to_string(&file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let name = std::path::Path::new(&file)
                .file_stem()
                .map(|s| s.to_string_lossy().to_string())
                .unwrap_or_else(|| "program".to_string());
            let parsed = match lang.as_str() {
                "c" => parse_c(&name, &source),
                "python" | "py" => parse_python(&name, &source),
                other => {
                    eprintln!("unknown language '{other}' (expected c or python)");
                    return ExitCode::FAILURE;
                }
            };
            match parsed {
                Ok(program) => report(&program, injective, json),
                Err(e) => {
                    eprintln!("parse error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// `soap-cli batch`: resolve each spec to a program (built-in kernel name or
/// `.c`/`.py` source file), run them through `analyze_suite` over one shared
/// solve cache, and emit JSON-lines: one record per program, then one
/// `{"suite": ...}` record with the shared-cache accounting.
fn batch(args: &[String]) -> ExitCode {
    let mut specs: Vec<String> = Vec::new();
    let mut all = false;
    let mut injective = false;
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--injective" => injective = true,
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned();
            }
            other if !other.starts_with("--") => specs.push(other.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let mut jobs: Vec<SuiteProgram> = Vec::new();
    if all {
        for entry in soap_kernels::registry() {
            jobs.push(SuiteProgram::new(
                entry.program,
                SdgOptions {
                    assume_injective: entry.assume_injective,
                    ..SdgOptions::default()
                },
            ));
        }
    }
    for spec in &specs {
        let path = std::path::Path::new(spec);
        let extension = path
            .extension()
            .and_then(|e| e.to_str())
            .map(str::to_ascii_lowercase);
        let is_c = extension.as_deref() == Some("c");
        let by_extension = is_c || extension.as_deref() == Some("py");
        if by_extension || path.exists() {
            let source = match std::fs::read_to_string(spec) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {spec}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().to_string())
                .unwrap_or_else(|| "program".to_string());
            let parsed = if is_c {
                parse_c(&name, &source)
            } else {
                parse_python(&name, &source)
            };
            match parsed {
                Ok(program) => jobs.push(SuiteProgram::new(
                    program,
                    SdgOptions {
                        assume_injective: injective,
                        ..SdgOptions::default()
                    },
                )),
                Err(e) => {
                    eprintln!("parse error in {spec}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(entry) = soap_kernels::by_name(spec) {
            jobs.push(SuiteProgram::new(
                entry.program,
                SdgOptions {
                    assume_injective: entry.assume_injective,
                    ..SdgOptions::default()
                },
            ));
        } else {
            eprintln!("'{spec}' is neither a readable source file nor a built-in kernel; run `soap-cli list`");
            return ExitCode::FAILURE;
        }
    }
    if jobs.is_empty() {
        eprintln!("batch: nothing to analyze (pass kernel names / source files, or --all)");
        return ExitCode::FAILURE;
    }

    let batch = analyze_suite(&jobs);
    let mut lines: Vec<String> = Vec::new();
    for report in &batch.reports {
        let record = match &report.outcome {
            Ok(analysis) => serde_json::json!({
                "program": report.name,
                "ok": true,
                "analysis_ms": report.analysis_ms,
                "bound": format!("{}", analysis.bound),
                "per_array": analysis.per_array.iter().map(|a| serde_json::json!({
                    "array": a.array,
                    "rho": format!("{}", a.rho),
                    "sigma": format!("{}", a.sigma),
                })).collect::<Vec<_>>(),
                "cache_hits": analysis.solver.cache_hits,
                "cross_program_hits": analysis.solver.cross_program_hits,
                "notes": analysis.notes,
            }),
            Err(e) => serde_json::json!({
                "program": report.name,
                "ok": false,
                "analysis_ms": report.analysis_ms,
                "error": format!("{e}"),
            }),
        };
        lines.push(serde_json::to_string(&record).expect("record serializes"));
    }
    let s = &batch.summary;
    // The record layout is defined once by `SuiteSummary`'s Serialize impl
    // (shared with `table2 --suite-json` and the perf snapshot).
    let suite_record = serde_json::json!({ "suite": serde_json::to_value(s) });
    lines.push(serde_json::to_string(&suite_record).expect("summary serializes"));
    let text = lines.join("\n") + "\n";
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {path}: {} programs, {} failures, {} cross-program cache hits",
                s.programs, s.failures, s.cache.cross_program_hits
            );
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            let _ = stdout.write_all(text.as_bytes());
        }
    }
    if s.failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn report(program: &Program, assume_injective: bool, json: bool) -> ExitCode {
    let opts = SdgOptions {
        assume_injective,
        ..SdgOptions::default()
    };
    match analyze_program_with(program, &opts) {
        Ok(analysis) => {
            if json {
                let record = serde_json::json!({
                    "program": program.name,
                    "bound": format!("{}", analysis.bound),
                    "per_array": analysis.per_array.iter().map(|a| serde_json::json!({
                        "array": a.array,
                        "rho": format!("{}", a.rho),
                        "sigma": format!("{}", a.sigma),
                        "vertices": format!("{}", a.vertex_count),
                        "subgraph": a.best_subgraph,
                    })).collect::<Vec<_>>(),
                    "notes": analysis.notes,
                });
                println!(
                    "{}",
                    serde_json::to_string_pretty(&record).expect("serializable")
                );
            } else {
                println!("program {}", program.name);
                println!("  I/O lower bound: Q ≥ {}", analysis.bound);
                for a in &analysis.per_array {
                    println!(
                        "  array {:<12} |A| = {:<24} ρ = {:<16} via {{{}}}",
                        a.array,
                        format!("{}", a.vertex_count),
                        format!("{}", a.rho),
                        a.best_subgraph.join(",")
                    );
                }
                if let Some(t) = sota_bound(&program.name) {
                    println!(
                        "  paper / prior:   {}  (source: {})",
                        t.paper_soap_bound, t.source
                    );
                }
                for n in &analysis.notes {
                    println!("  note: {n}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("analysis failed: {e}");
            ExitCode::FAILURE
        }
    }
}
