//! Quickstart: derive the I/O lower bound of matrix multiplication.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the GEMM SOAP program, runs the full SDG analysis, and prints the
//! symbolic bound (`2·NI·NJ·NK/√S`), the computational intensity, the optimal
//! X₀ and the optimal tile shape for a concrete cache size.

use soap::prelude::*;
use std::collections::BTreeMap;

fn main() {
    // C[i,j] += A[i,k] * B[k,j]  over  NI × NJ × NK
    let program = ProgramBuilder::new("gemm")
        .statement(|st| {
            st.loops(&[("i", "0", "NI"), ("j", "0", "NJ"), ("k", "0", "NK")])
                .update("C", "i,j")
                .read("A", "i,k")
                .read("B", "k,j")
        })
        .build()
        .expect("gemm is a valid SOAP program");

    let analysis = analyze_program(&program).expect("analysis succeeds");
    println!("kernel        : {}", program.name);
    println!("I/O lower bound: Q ≥ {}", analysis.bound);
    for array in &analysis.per_array {
        println!(
            "  array {:<4} |A| = {:<22} ρ = {:<14} (via subgraph {{{}}})",
            array.array,
            format!("{}", array.vertex_count),
            format!("{}", array.rho),
            array.best_subgraph.join(",")
        );
    }

    // Per-statement view: intensity, X0 and optimal tiles for S = 32 Ki words.
    let st = &program.statements[0];
    let res = analyze_statement(st, &AnalysisOptions::default()).expect("statement analysis");
    let s_words = 32.0 * 1024.0;
    println!("\nsingle-statement detail");
    println!("  σ              = {}", res.intensity.sigma);
    println!("  ρ(S)           = {}", res.intensity.rho);
    if let Some(x0) = &res.intensity.x0 {
        println!("  X0             = {}", x0);
    }
    if let Some(tiles) = res.intensity.tiles_at(s_words) {
        let rendered: Vec<String> = tiles.iter().map(|(v, t)| format!("{v} ≈ {t:.0}")).collect();
        println!("  optimal tiles  @ S = {s_words}: {}", rendered.join(", "));
    }

    // Numeric value of the bound for a concrete configuration.
    let mut bindings = BTreeMap::new();
    for p in ["NI", "NJ", "NK"] {
        bindings.insert(p.to_string(), 4096.0);
    }
    bindings.insert("S".to_string(), s_words);
    let q = analysis.bound.eval(&bindings).expect("bound evaluates");
    println!("\nQ(N = 4096, S = 32Ki words) ≥ {:.3e} words moved", q);
}
