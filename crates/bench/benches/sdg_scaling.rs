//! Scalability of the SDG analysis with the number of statements (the paper
//! observes practical scaling up to ~35 statements).  Synthetic chains of `k`
//! matrix-multiplication statements are analyzed for growing `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soap_bench::fixtures::chain_of_matmuls;
use soap_sdg::{analyze_program_with, SdgOptions};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdg_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let opts = SdgOptions {
        max_subgraph_size: 3,
        max_subgraphs: 512,
        ..SdgOptions::default()
    };
    for k in [1usize, 4, 8, 16, 35] {
        let program = chain_of_matmuls(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &program, |b, p| {
            b.iter(|| analyze_program_with(p, &opts).expect("analysis succeeds"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
