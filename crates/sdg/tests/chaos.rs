//! Chaos suite: the 38-kernel registry analyzed under seeded fault plans.
//!
//! The contract under test is *isolation with reconciled accounting*: an
//! injected panic, transient I/O error, or corrupt store segment may degrade
//! the program (or segment) it hits, but it must never abort the batch,
//! never perturb the output of unaffected programs, and every enumerated
//! subgraph must be accounted for as exactly one of solved / merge-failed /
//! solve-failed / panicked / cancelled.
//!
//! Every plan decision is a pure function of (seed, stable identity), so the
//! set of faulted operations is predictable from the outside — which is what
//! lets these tests say "this exact program is hit, every other one is
//! byte-identical to the fault-free run".

use soap_kernels::registry;
use soap_sdg::{
    analyze_suite_with, enumerate_connected_subgraphs, override_plan, FaultPlan, Sdg, SdgOptions,
    SolveCache, SolveStore, SuiteProgram,
};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soap-chaos-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The Table-2 analysis options of every registry entry.
fn jobs() -> Vec<SuiteProgram> {
    registry()
        .into_iter()
        .map(|entry| {
            SuiteProgram::new(
                entry.program,
                SdgOptions {
                    assume_injective: entry.assume_injective,
                    ..SdgOptions::default()
                },
            )
        })
        .collect()
}

/// Bit-exact dump of everything in one analysis except timings and cache
/// accounting (which measure the run, not the input).
fn dump(analysis: &soap_sdg::ProgramAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", analysis.name);
    let _ = writeln!(
        out,
        "degraded {} deferred {}",
        analysis.degraded, analysis.arrays_deferred
    );
    let _ = writeln!(out, "bound {}", analysis.bound);
    for a in &analysis.per_array {
        let _ = writeln!(
            out,
            "array {} |A|={} rho={} sigma={:?} via={:?} bound={}",
            a.array, a.vertex_count, a.rho, a.sigma, a.best_subgraph, a.bound
        );
    }
    for s in &analysis.subgraphs {
        let i = &s.intensity;
        let _ = writeln!(
            out,
            "subgraph {:?} sigma={:?} chi_coeff={:016x} rho={} rho_ref={:016x}",
            s.arrays,
            i.sigma,
            i.chi_coeff.to_bits(),
            i.rho,
            s.rho_ref.to_bits(),
        );
    }
    for n in &analysis.notes {
        let _ = writeln!(out, "note {n}");
    }
    out
}

/// Per-program accounting must reconcile: every enumerated subgraph is
/// solved or lands in exactly one failure bucket.
fn assert_reconciled(analysis: &soap_sdg::ProgramAnalysis) {
    let s = &analysis.solver;
    assert_eq!(
        analysis.subgraphs.len()
            + s.merge_failures
            + s.solve_failures
            + s.panic_failures
            + s.cancelled,
        s.subgraphs_enumerated,
        "program {}: accounting does not reconcile (solved {} merge {} solve {} panic {} \
         cancelled {} enumerated {})",
        analysis.name,
        analysis.subgraphs.len(),
        s.merge_failures,
        s.solve_failures,
        s.panic_failures,
        s.cancelled,
        analysis.solver.subgraphs_enumerated,
    );
}

/// Fault-free reference dumps, name → dump, under an explicit empty plan so
/// a stray `SOAP_FAULT_PLAN` in the environment cannot leak in.
fn baseline() -> Vec<(String, String)> {
    let _guard = override_plan(None);
    let batch = analyze_suite_with(&jobs(), &SolveCache::new());
    assert_eq!(batch.summary.failures, 0);
    batch
        .reports
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                dump(r.outcome.as_ref().expect("fault-free analysis succeeds")),
            )
        })
        .collect()
}

#[test]
fn injected_panics_stay_isolated_and_accounting_reconciles() {
    let reference = baseline();
    let plan = FaultPlan {
        seed: 42,
        panic_every: 5,
        ..FaultPlan::default()
    };

    // Predict the hit set from outside the pipeline: a program is affected
    // iff one of its enumerated subgraphs hashes onto the panic set.
    let jobs = jobs();
    let affected: BTreeSet<String> = jobs
        .iter()
        .filter(|job| {
            let sdg = Sdg::from_program(&job.program);
            let opts = &job.opts;
            enumerate_connected_subgraphs(&sdg, opts.max_subgraph_size, opts.max_subgraphs)
                .subgraphs
                .iter()
                .any(|arrays| plan.panics_subgraph(&job.name, arrays))
        })
        .map(|job| job.name.clone())
        .collect();
    assert!(
        !affected.is_empty() && affected.len() < jobs.len(),
        "seed 42 / panic_every 5 must hit a strict, non-empty subset of the registry \
         (hit {} of {})",
        affected.len(),
        jobs.len()
    );

    let _guard = override_plan(Some(plan));
    let batch = analyze_suite_with(&jobs, &SolveCache::new());
    // Panics are absorbed per-subgraph: nothing aborts, no program errors.
    assert_eq!(batch.summary.failures, 0);
    assert_eq!(batch.summary.programs, jobs.len());

    for ((name, expected), report) in reference.iter().zip(&batch.reports) {
        assert_eq!(name, &report.name);
        let analysis = report.outcome.as_ref().expect("no program aborts");
        assert_reconciled(analysis);
        if affected.contains(name) {
            assert!(
                analysis.solver.panic_failures > 0,
                "{name}: predicted a panic hit but none was recorded"
            );
        } else {
            assert_eq!(
                analysis.solver.panic_failures, 0,
                "{name}: predicted fault-free but a panic was recorded"
            );
            assert_eq!(
                expected,
                &dump(analysis),
                "{name}: unaffected program diverged from the fault-free run"
            );
        }
    }
}

/// Populate a store at `dir` fault-free; returns the per-program dumps.
fn seed_store(dir: &Path) -> Vec<(String, String)> {
    let _guard = override_plan(None);
    let cache = SolveCache::with_store(dir).expect("store opens");
    let batch = analyze_suite_with(&jobs(), &cache);
    assert_eq!(batch.summary.failures, 0);
    let flushed = cache.flush_store().expect("flush succeeds");
    assert!(flushed.appended > 0, "cold run must persist solutions");
    batch
        .reports
        .iter()
        .map(|r| (r.name.clone(), dump(r.outcome.as_ref().unwrap())))
        .collect()
}

#[test]
fn transient_store_read_faults_heal_inside_the_retry_loop() {
    let dir = temp_dir("transient-heal");
    let cold = seed_store(&dir);

    // One injected failure per segment: attempt 0 fails, attempt 1 reads the
    // segment — hydration is complete and the warm run re-solves nothing.
    let _guard = override_plan(Some(FaultPlan {
        seed: 7,
        store_read_transient: 1,
        ..FaultPlan::default()
    }));
    let cache = SolveCache::with_store(&dir).expect("store opens through the retry loop");
    let stats = cache.store_load_stats().expect("store stats present");
    assert_eq!(stats.segments_rejected, 0, "notes: {:?}", stats.notes);
    assert_eq!(stats.quarantined, 0);
    let warm = analyze_suite_with(&jobs(), &cache);
    assert_eq!(warm.summary.failures, 0);
    assert_eq!(
        warm.summary.cache.misses, 0,
        "healed hydration must answer every cacheable solve from the store"
    );
    for ((name, expected), report) in cold.iter().zip(&warm.reports) {
        assert_eq!(name, &report.name);
        assert_eq!(
            expected,
            &dump(report.outcome.as_ref().expect("warm analysis succeeds")),
            "{name}: warm output diverged after healed transient faults"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn permanent_store_read_faults_reject_segments_without_aborting() {
    let dir = temp_dir("transient-permanent");
    let cold = seed_store(&dir);

    // More injected failures than the retry budget: every segment read
    // fails permanently.  The store degrades to "nothing hydrated" with
    // counted, noted rejections — and the batch silently re-solves.
    let _guard = override_plan(Some(FaultPlan {
        seed: 7,
        store_read_transient: 10,
        ..FaultPlan::default()
    }));
    let cache = SolveCache::with_store(&dir).expect("open survives rejected segments");
    let stats = cache.store_load_stats().expect("store stats present");
    assert!(stats.segments_rejected > 0);
    assert_eq!(stats.entries, 0);
    assert!(
        stats.notes.iter().any(|n| n.contains("injected")),
        "rejection must be noted: {:?}",
        stats.notes
    );
    let warm = analyze_suite_with(&jobs(), &cache);
    assert_eq!(warm.summary.failures, 0);
    for ((name, expected), report) in cold.iter().zip(&warm.reports) {
        assert_eq!(name, &report.name);
        assert_eq!(
            expected,
            &dump(report.outcome.as_ref().expect("analysis succeeds")),
            "{name}: output diverged when the store was unavailable"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_segments_are_quarantined_once_and_stay_silent_after() {
    let dir = temp_dir("quarantine");
    let cold = seed_store(&dir);
    let segments_before = SolveStore::open_existing(&dir)
        .expect("store opens")
        .segment_files()
        .expect("segments listed")
        .len();
    assert!(segments_before > 0);

    // Corrupt every segment on read: each one loses its records, is counted,
    // and is renamed out of the segment namespace.
    let guard = override_plan(Some(FaultPlan {
        seed: 7,
        corrupt_every: 1,
        ..FaultPlan::default()
    }));
    let cache = SolveCache::with_store(&dir).expect("open survives corrupt segments");
    let stats = cache.store_load_stats().expect("store stats present");
    assert!(stats.records_skipped > 0);
    assert_eq!(stats.quarantined, segments_before);
    assert!(stats.notes.iter().any(|n| n.contains("quarantined")));
    let warm = analyze_suite_with(&jobs(), &cache);
    assert_eq!(warm.summary.failures, 0);
    for ((name, expected), report) in cold.iter().zip(&warm.reports) {
        assert_eq!(name, &report.name);
        assert_eq!(
            expected,
            &dump(report.outcome.as_ref().expect("analysis succeeds")),
            "{name}: output diverged after quarantine"
        );
    }
    drop(guard);

    // On disk: each corrupt segment was renamed `*.quarantined` after its
    // surviving records were salvaged into a fresh segment, so a second open
    // sees a clean store — entries intact, no corruption notes.  This is the
    // bugfix: one warning at quarantine time, silence afterwards.
    let store = SolveStore::open_existing(&dir).expect("store opens");
    assert_eq!(
        store.quarantined_files().expect("quarantined listed").len(),
        segments_before
    );
    assert!(
        !store.segment_files().expect("segments listed").is_empty(),
        "salvage must leave the surviving records in the segment namespace"
    );
    let _guard = override_plan(None);
    let reopened = SolveCache::with_store(&dir).expect("reopen succeeds");
    let stats = reopened.store_load_stats().expect("store stats present");
    assert_eq!(stats.records_skipped, 0);
    assert_eq!(stats.quarantined, 0);
    assert!(stats.entries > 0, "salvaged records must hydrate");
    assert!(
        stats.notes.is_empty(),
        "quarantined segments must not re-warn: {:?}",
        stats.notes
    );
    let _ = std::fs::remove_dir_all(&dir);
}
