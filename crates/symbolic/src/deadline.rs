//! Cooperative cancellation for long-running solves.
//!
//! A [`Deadline`] is a cheap, cloneable handle (an `Arc` around an atomic
//! flag plus an optional wall-clock expiry) that the analysis pipeline
//! threads through its hot loops.  Work never gets interrupted mid-step:
//! each governed loop polls [`Deadline::expired`] at its own deterministic
//! commit points (enumeration level boundaries, per-subgraph closures, KKT
//! iterations) and unwinds cleanly when the budget is gone.
//!
//! The wall-clock check latches: once a deadline has been observed expired
//! it stays expired, so every subsequent poll is a single relaxed atomic
//! load regardless of clock resolution.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A governed loop stopped because its [`Deadline`] expired.
///
/// Deliberately a unit struct: the *reaction* to expiry (degraded result,
/// skipped subgraph, …) is decided by the caller that owns the deadline,
/// not by the loop that noticed it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Expired;

impl std::fmt::Display for Expired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline expired")
    }
}

#[derive(Debug)]
struct DeadlineInner {
    cancelled: AtomicBool,
    expires_at: Option<Instant>,
}

/// A shared cancellation token with an optional wall-clock budget.
///
/// Cloning is cheap (one `Arc` bump); all clones observe the same state, so
/// a suite can hand one deadline to every worker analyzing a program and
/// [`Deadline::cancel`] all of them at once.
#[derive(Clone, Debug)]
pub struct Deadline {
    inner: Arc<DeadlineInner>,
}

impl Deadline {
    /// A deadline that never expires on its own (it can still be
    /// [`Deadline::cancel`]led explicitly).
    pub fn never() -> Self {
        Deadline {
            inner: Arc::new(DeadlineInner {
                cancelled: AtomicBool::new(false),
                expires_at: None,
            }),
        }
    }

    /// A deadline expiring `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            inner: Arc::new(DeadlineInner {
                cancelled: AtomicBool::new(false),
                expires_at: Some(Instant::now() + budget),
            }),
        }
    }

    /// Cancel immediately: every clone observes [`Deadline::expired`] from
    /// this point on.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the budget is gone (explicit cancel or wall-clock expiry).
    ///
    /// Latches: after the first `true` the wall clock is never consulted
    /// again, so polling in a tight loop costs one relaxed load.
    pub fn expired(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.expires_at {
            Some(t) if Instant::now() >= t => {
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Time left before wall-clock expiry: `None` when unbounded, zero when
    /// already expired.
    pub fn remaining(&self) -> Option<Duration> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Some(Duration::ZERO);
        }
        self.inner
            .expires_at
            .map(|t| t.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_does_not_expire() {
        let d = Deadline::never();
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let d = Deadline::never();
        let clone = d.clone();
        clone.cancel();
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn zero_budget_expires_immediately_and_latches() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        // Latched: still expired, and remaining is zero.
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_is_not_expired_yet() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }
}
