//! Model-checked invariants of the sharded `SolveCache` cell protocol and
//! the `InFlight` leader/follower coalescing (see `src/cache.rs::solve_scoped`
//! and `src/service.rs::InFlight`).
//!
//! Each invariant comes in two flavours: the faithful port of the production
//! locking protocol, which must pass every explored schedule, and a
//! deliberately broken **mutation twin** reintroducing the bug class the
//! protocol guards against — the checker must find a failing schedule for it,
//! or the pass on the correct variant would be vacuous.

use interleave::atomic::AtomicUsize;
use interleave::sync::{Condvar, Mutex};
use interleave::{thread, Model};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// SolveCache cell protocol (cache.rs::solve_scoped)
//
// Production shape: shard lock → get-or-insert Arc<SolveCell> (a once-cell)
// → whoever wins the cell's initialization race runs the ONE canonical solve;
// every other requester of the same key blocks until it lands and reads the
// same stored solution.  The map insert happens atomically under the shard
// lock — that atomicity is exactly what the mutation twin removes.
// ---------------------------------------------------------------------------

/// A once-cell modelled with shim primitives: `OnceLock::get_or_init` blocks
/// concurrent callers on an internal lock while the winner runs `init`, so
/// the model holds a Mutex across the init — waiters pile up on the lock and
/// read the landed value when they get in.
struct Cell {
    state: Mutex<CellState>,
}

struct CellState {
    done: bool,
    value: u64,
}

impl Cell {
    fn new() -> Cell {
        Cell {
            state: Mutex::new(CellState {
                done: false,
                value: 0,
            }),
        }
    }

    /// Port of `OnceLock::get_or_init`: exactly one caller runs `init`;
    /// everyone else blocks until the value lands.  Returns (value, solved_here).
    fn get_or_init<F: FnOnce() -> u64>(&self, init: F) -> (u64, bool) {
        let mut st = self.state.lock();
        if st.done {
            return (st.value, false);
        }
        let value = init();
        st.done = true;
        st.value = value;
        (value, true)
    }
}

struct CacheModel {
    map: Mutex<HashMap<u32, Arc<Cell>>>,
    solves: AtomicUsize,
}

impl CacheModel {
    fn new() -> CacheModel {
        CacheModel {
            map: Mutex::new(HashMap::new()),
            solves: AtomicUsize::new(0),
        }
    }

    /// Faithful port: get-or-insert is atomic under the shard lock.
    fn solve(&self, key: u32) -> (u64, bool) {
        let cell = {
            let mut map = self.map.lock();
            if let Some(cell) = map.get(&key) {
                Arc::clone(cell)
            } else {
                let cell = Arc::new(Cell::new());
                map.insert(key, Arc::clone(&cell));
                cell
            }
        };
        cell.get_or_init(|| 100 + self.solves.fetch_add(1, Ordering::SeqCst) as u64)
    }

    /// MUTATION: check-then-insert with the shard lock released in between —
    /// two concurrent requesters can both see the key absent, insert their
    /// own cells, and run two "canonical" solves for one structure.
    fn solve_torn(&self, key: u32) -> (u64, bool) {
        let existing = { self.map.lock().get(&key).map(Arc::clone) };
        let cell = match existing {
            Some(cell) => cell,
            None => {
                let cell = Arc::new(Cell::new());
                self.map.lock().insert(key, Arc::clone(&cell));
                cell
            }
        };
        cell.get_or_init(|| 100 + self.solves.fetch_add(1, Ordering::SeqCst) as u64)
    }
}

fn cache_model(torn: bool) {
    let cache = Arc::new(CacheModel::new());
    // The root model thread is the second requester — fewer schedule points
    // than spawning both, same two-requester race.
    let spawned = {
        let cache = Arc::clone(&cache);
        thread::spawn(move || {
            if torn {
                cache.solve_torn(7)
            } else {
                cache.solve(7)
            }
        })
    };
    let here = if torn {
        cache.solve_torn(7)
    } else {
        cache.solve(7)
    };
    let outcomes: Vec<(u64, bool)> = vec![here, spawned.join()];
    // One canonical solve per key, no matter the schedule…
    assert_eq!(
        cache.solves.load(Ordering::SeqCst),
        1,
        "exactly one canonical solve per key"
    );
    // …and the accounting reconciles: one miss (the solver), the rest hits.
    let misses = outcomes
        .iter()
        .filter(|(_, solved_here)| *solved_here)
        .count();
    assert_eq!(misses, 1, "hits + misses must reconcile to one miss");
    // Every requester observes the one stored solution.
    assert!(
        outcomes.iter().all(|(v, _)| *v == 100),
        "every requester must instantiate the same canonical solution: {outcomes:?}"
    );
}

/// Invariant: concurrent requesters of one key produce exactly one solve,
/// one miss, and identical values on every schedule.
#[test]
fn cache_cell_solves_once_per_key() {
    let report = Model::new("sdg-cache-once-per-key")
        .max_dfs_schedules(200_000)
        .check(|| cache_model(false));
    assert!(report.exhaustive, "{report:?}");
}

/// Mutation twin: the check-then-insert race must be caught double-solving.
#[test]
fn torn_cache_insert_is_caught() {
    let failure = Model::new("sdg-cache-torn-insert-MUTATION").expect_failure(|| cache_model(true));
    assert!(
        failure.message.contains("one canonical solve") || failure.message.contains("reconcile"),
        "{failure:?}"
    );
}

// ---------------------------------------------------------------------------
// InFlight leader/follower coalescing (service.rs)
//
// Production shape: slots map under a Mutex; first claimant of a key inserts
// a Slot and leads, later claimants park on the slot's Condvar until `done`,
// then share the leader's value.  The leader publishes by removing the map
// entry, setting done+value, and notify_all.
// ---------------------------------------------------------------------------

struct Slot {
    state: Mutex<SlotState>,
    cond: Condvar,
}

struct SlotState {
    done: bool,
    value: Option<u64>,
}

/// How the mutated variants break `publish`.
#[derive(Clone, Copy, PartialEq)]
enum Wake {
    /// Faithful port: `notify_all`.
    All,
    /// MUTATION: `notify_one` — with two parked followers one sleeps forever.
    One,
    /// MUTATION: no notify at all — every parked follower sleeps forever.
    None,
}

struct InFlightModel {
    slots: Mutex<HashMap<u64, Arc<Slot>>>,
    /// Executions currently running for the key (the coalescing guarantee:
    /// never more than one at a time).
    running: AtomicUsize,
    wake: Wake,
}

enum Claimed {
    Led(u64),
    Followed(Option<u64>),
}

impl InFlightModel {
    fn new(wake: Wake) -> InFlightModel {
        InFlightModel {
            slots: Mutex::new(HashMap::new()),
            running: AtomicUsize::new(0),
            wake,
        }
    }

    /// Port of `InFlight::claim` + leader work + `LeaderGuard::complete`,
    /// with the model's "analysis" being `100 + tid`.  `claim` decides
    /// leader/follower under the map lock; the leader's work and publish run
    /// after it is released, exactly like the production guard.
    fn claim_and_run(&self, key: u64, tid: u64) -> Claimed {
        // claim(): get-or-insert the slot atomically under the map lock.
        let (slot, leads) = {
            let mut slots = self.slots.lock();
            if let Some(slot) = slots.get(&key) {
                (Arc::clone(slot), false)
            } else {
                let slot = Arc::new(Slot {
                    state: Mutex::new(SlotState {
                        done: false,
                        value: None,
                    }),
                    cond: Condvar::new(),
                });
                slots.insert(key, Arc::clone(&slot));
                (slot, true)
            }
        };
        if leads {
            // Leader path: run the work, then publish.
            let overlapping = self.running.fetch_add(1, Ordering::SeqCst);
            assert_eq!(
                overlapping, 0,
                "coalescing violated: two executions in flight for one key"
            );
            let value = 100 + tid;
            self.running.fetch_sub(1, Ordering::SeqCst);
            // publish(): remove the map entry, set done+value, wake.
            self.slots.lock().remove(&key);
            let mut state = slot.state.lock();
            state.done = true;
            state.value = Some(value);
            match self.wake {
                Wake::All => slot.cond.notify_all(),
                Wake::One => slot.cond.notify_one(),
                Wake::None => {}
            }
            return Claimed::Led(value);
        }
        let mut state = slot.state.lock();
        while !state.done {
            state = slot.cond.wait(state);
        }
        Claimed::Followed(state.value)
    }
}

fn inflight_model(wake: Wake, claimants: u64) {
    let inflight = Arc::new(InFlightModel::new(wake));
    // The root model thread is claimant 0 — fewer schedule points than
    // spawning every claimant, same races.
    let threads: Vec<_> = (1..claimants)
        .map(|tid| {
            let inflight = Arc::clone(&inflight);
            thread::spawn(move || inflight.claim_and_run(9, tid))
        })
        .collect();
    let here = inflight.claim_and_run(9, 0);
    let mut outcomes: Vec<Claimed> = vec![here];
    outcomes.extend(threads.into_iter().map(|t| t.join()));
    let led: Vec<u64> = outcomes
        .iter()
        .filter_map(|o| match o {
            Claimed::Led(v) => Some(*v),
            Claimed::Followed(_) => None,
        })
        .collect();
    assert!(!led.is_empty(), "someone must lead");
    // Every follower saw the value of an actual leader — never a lost or
    // invented result.  (A claimant arriving after the leader published
    // legitimately leads a fresh execution, so leaders may exceed one; the
    // `running` overlap assert above is what pins "one at a time".)
    for outcome in &outcomes {
        if let Claimed::Followed(v) = outcome {
            let v = v.expect("leaders always publish in this model");
            assert!(
                led.contains(&v),
                "follower saw {v}, which no leader published: leaders {led:?}"
            );
        }
    }
}

/// Invariant: at most one execution in flight per key, followers always see
/// a real leader's published value, and nobody is left parked (a lost wakeup
/// would surface as a deadlock failure).
#[test]
fn inflight_coalesces_and_loses_no_wakeups() {
    let report = Model::new("sdg-inflight-coalesce")
        .max_dfs_schedules(200_000)
        .check(|| inflight_model(Wake::All, 2));
    assert!(report.exhaustive, "{report:?}");
}

/// Mutation twin: publishing without notifying must strand a parked follower
/// — the checker reports it as a deadlock (lost wakeup).
#[test]
fn missing_notify_is_caught_as_lost_wakeup() {
    let failure = Model::new("sdg-inflight-no-notify-MUTATION")
        .expect_failure(|| inflight_model(Wake::None, 2));
    assert!(
        failure.message.contains("deadlock") && failure.message.contains("lost wakeup"),
        "{failure:?}"
    );
}

/// Mutation twin: `notify_one` with two parked followers leaves one asleep.
#[test]
fn notify_one_with_two_followers_is_caught() {
    let failure = Model::new("sdg-inflight-notify-one-MUTATION")
        .expect_failure(|| inflight_model(Wake::One, 3));
    assert!(failure.message.contains("deadlock"), "{failure:?}");
}
