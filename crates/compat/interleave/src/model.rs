//! The explorer: bounded DFS over schedules, seeded-random fallback,
//! replay-on-failure, and the stats surface CI uploads.

use crate::sched::{
    clear_ctx, panic_message, set_ctx, Aborted, Controller, Ctrl, Policy, Status, XorShift,
};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A found failing schedule.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong (panic message, deadlock report, step budget).
    pub message: String,
    /// The decision string (`"0.1.2"`) that deterministically replays it.
    pub schedule: String,
}

/// What one [`Model::check`] / [`Model::expect_failure`] exploration did.
#[derive(Debug, Clone)]
pub struct Report {
    /// Model name (the replay key).
    pub name: String,
    /// Schedules explored by the bounded DFS.
    pub dfs_schedules: usize,
    /// Seeded-random schedules run after the DFS cap (0 if DFS finished).
    pub random_schedules: usize,
    /// True when the DFS exhausted the whole schedule space.
    pub exhaustive: bool,
    /// The first failing schedule, if any.
    pub failure: Option<Failure>,
}

/// One run's outcome, private to the explorer.
struct RunOutcome {
    failure: Option<String>,
    decisions: Vec<u8>,
    options: Vec<u8>,
}

/// A named model plus exploration budgets.
///
/// Defaults are sized so a handful of models stay well under a minute in CI:
/// 4096 DFS schedules, then 512 random schedules, 20 000 scheduler steps per
/// run.  Raise per model when the state space warrants it.
pub struct Model {
    name: String,
    max_dfs_schedules: usize,
    max_random_schedules: usize,
    max_steps: usize,
    seed: u64,
}

impl Model {
    /// A model with default budgets.  `name` keys replay
    /// (`INTERLEAVE_REPLAY="name=0.1.2"`) and the stats file, so keep it
    /// unique per test binary.
    pub fn new(name: &str) -> Model {
        Model {
            name: name.to_string(),
            max_dfs_schedules: 4096,
            max_random_schedules: 512,
            max_steps: 20_000,
            seed: 0x5eed_1e1d_5eed_1e1d,
        }
    }

    /// Cap the bounded DFS at `n` schedules.
    pub fn max_dfs_schedules(mut self, n: usize) -> Model {
        self.max_dfs_schedules = n;
        self
    }

    /// Run `n` seeded-random schedules after a capped (non-exhaustive) DFS.
    pub fn max_random_schedules(mut self, n: usize) -> Model {
        self.max_random_schedules = n;
        self
    }

    /// Seed for the random fallback (replay is decision-based, so the seed
    /// only shapes *which* tail schedules get probed).
    pub fn seed(mut self, seed: u64) -> Model {
        self.seed = seed;
        self
    }

    /// Explore and **panic on failure**, printing the failing schedule and
    /// a ready-to-paste `INTERLEAVE_REPLAY` incantation.  This is the entry
    /// point for checking the *correct* variant of an invariant.
    pub fn check<F>(self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let report = self.explore(f);
        if let Some(failure) = &report.failure {
            panic!(
                "interleave: model '{}' failed: {}\n  schedule: {} ({} decisions)\n  replay: INTERLEAVE_REPLAY=\"{}={}\" cargo test -- {}\n",
                report.name,
                failure.message,
                failure.schedule,
                failure.schedule.split('.').count(),
                report.name,
                failure.schedule,
                report.name,
            );
        }
        report
    }

    /// Explore and **panic if no failure is found** — the mutation-twin
    /// entry point: a deliberately broken variant must be caught, otherwise
    /// the checker's pass on the correct variant is vacuous.  The found
    /// schedule is replayed once to prove the failure is deterministic.
    pub fn expect_failure<F>(self, f: F) -> Failure
    where
        F: Fn() + Send + Sync + 'static,
    {
        let name = self.name.clone();
        let max_steps = self.max_steps;
        let f = Arc::new(f);
        let report = self.explore_arc(Arc::clone(&f));
        let Some(failure) = report.failure else {
            panic!(
                "interleave: model '{name}' was expected to fail (seeded mutation) but {} DFS + {} random schedules all passed{}",
                report.dfs_schedules,
                report.random_schedules,
                if report.exhaustive { " (exhaustive)" } else { "" },
            );
        };
        // Replay must reproduce the failure deterministically.
        let forced = parse_schedule(&failure.schedule)
            // lint:allow(unwrap-expect): schedule strings are produced by this module; a parse failure is a checker bug worth a loud panic
            .expect("self-produced schedule strings always parse");
        let replayed = run_once(forced, Policy::Leftmost, max_steps, Arc::clone(&f));
        assert!(
            replayed.failure.is_some(),
            "interleave: model '{name}': schedule {} failed once but passed on replay — model is not deterministic given the schedule",
            failure.schedule,
        );
        failure
    }

    /// Explore without panicking; inspect the [`Report`] yourself.
    pub fn explore<F>(self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.explore_arc(Arc::new(f))
    }

    fn explore_arc<F>(self, f: Arc<F>) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let mut report = Report {
            name: self.name.clone(),
            dfs_schedules: 0,
            random_schedules: 0,
            exhaustive: false,
            failure: None,
        };

        // Replay mode: run exactly the requested schedule, nothing else.
        if let Some(forced) = replay_request(&self.name) {
            let outcome = run_once(forced, Policy::Leftmost, self.max_steps, f);
            report.dfs_schedules = 1;
            report.failure = outcome.failure.map(|message| Failure {
                message,
                schedule: schedule_string(&outcome.decisions),
            });
            self.finish(report.clone());
            return report;
        }

        // Phase 1: bounded DFS (loom-style path backtracking).
        let mut prefix: Vec<u8> = Vec::new();
        loop {
            if report.dfs_schedules >= self.max_dfs_schedules {
                break;
            }
            let outcome = run_once(
                prefix.clone(),
                Policy::Leftmost,
                self.max_steps,
                Arc::clone(&f),
            );
            report.dfs_schedules += 1;
            if let Some(message) = outcome.failure {
                report.failure = Some(Failure {
                    message,
                    schedule: schedule_string(&outcome.decisions),
                });
                self.finish(report.clone());
                return report;
            }
            match next_prefix(&outcome.decisions, &outcome.options) {
                Some(next) => prefix = next,
                None => {
                    report.exhaustive = true;
                    self.finish(report.clone());
                    return report;
                }
            }
        }

        // Phase 2: seeded-random fallback over the unexplored tail.
        for i in 0..self.max_random_schedules {
            let seed = self
                .seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let outcome = run_once(
                Vec::new(),
                Policy::Random(XorShift(seed)),
                self.max_steps,
                Arc::clone(&f),
            );
            report.random_schedules += 1;
            if let Some(message) = outcome.failure {
                report.failure = Some(Failure {
                    message,
                    schedule: schedule_string(&outcome.decisions),
                });
                break;
            }
        }
        self.finish(report.clone());
        report
    }

    /// Emit the stats line CI collects (`INTERLEAVE_STATS_FILE`).
    fn finish(&self, report: Report) {
        let Ok(path) = std::env::var("INTERLEAVE_STATS_FILE") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let line = format!(
            "{} dfs={} random={} exhaustive={} result={}\n",
            report.name,
            report.dfs_schedules,
            report.random_schedules,
            report.exhaustive,
            if report.failure.is_some() {
                "fail"
            } else {
                "pass"
            },
        );
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = file.write_all(line.as_bytes());
        }
    }
}

/// `INTERLEAVE_REPLAY="model-name=0.1.2"` → the forced schedule for that
/// model (other models explore normally).
fn replay_request(name: &str) -> Option<Vec<u8>> {
    let raw = std::env::var("INTERLEAVE_REPLAY").ok()?;
    let (req_name, sched) = raw.split_once('=')?;
    if req_name != name {
        return None;
    }
    parse_schedule(sched)
}

fn parse_schedule(s: &str) -> Option<Vec<u8>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split('.').map(|tok| tok.parse::<u8>().ok()).collect()
}

fn schedule_string(decisions: &[u8]) -> String {
    decisions
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

/// DFS backtracking: the deepest decision with an untried alternative is
/// bumped; everything after it is released to leftmost descent.
fn next_prefix(decisions: &[u8], options: &[u8]) -> Option<Vec<u8>> {
    for i in (0..decisions.len()).rev() {
        if decisions[i] + 1 < options[i] {
            let mut prefix = decisions[..i].to_vec();
            prefix.push(decisions[i] + 1);
            return Some(prefix);
        }
    }
    None
}

/// Execute the model once under the given schedule policy.
fn run_once<F>(forced: Vec<u8>, policy: Policy, max_steps: usize, f: Arc<F>) -> RunOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let ctrl = Arc::new(Controller::new(forced, policy));
    // Register the root model thread (tid 0) before it exists so the
    // scheduler's first pick has something to choose.
    ctrl.register_thread();
    let root_ctrl = Arc::clone(&ctrl);
    let root = std::thread::spawn(move || {
        set_ctx(Arc::clone(&root_ctrl), 0);
        {
            let st = root_ctrl.lock_st();
            let st = root_ctrl.wait_for_turn(st, 0);
            drop(st);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| f()));
        let panic_msg = match outcome {
            Ok(()) => None,
            Err(payload) if payload.is::<Aborted>() => None,
            Err(payload) => Some(panic_message(payload.as_ref())),
        };
        root_ctrl.thread_finished(0, panic_msg);
        clear_ctx();
    });

    // The scheduler loop: wait for quiescence, pick the next runnable
    // thread, repeat until everything finished or something went wrong.
    let mut steps = 0usize;
    let (failure, decisions, options) = loop {
        let mut st = ctrl.lock_st();
        while st.active.is_some() && !st.abort {
            st = ctrl.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.failure.is_some() || st.abort {
            st.abort = true;
            ctrl.cv.notify_all();
            break (st.failure.clone(), st.decisions.clone(), st.options.clone());
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(t, _)| t)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|s| *s == Status::Finished) {
                break (None, st.decisions.clone(), st.options.clone());
            }
            let blocked = describe_blocked(&st);
            st.failure = Some(format!("deadlock: no runnable thread; {blocked}"));
            st.abort = true;
            ctrl.cv.notify_all();
            break (st.failure.clone(), st.decisions.clone(), st.options.clone());
        }
        steps += 1;
        if steps > max_steps {
            st.failure = Some(format!(
                "step budget exceeded ({max_steps} scheduler steps): livelock, or raise the budget"
            ));
            st.abort = true;
            ctrl.cv.notify_all();
            break (st.failure.clone(), st.decisions.clone(), st.options.clone());
        }
        let choice = st.decide(runnable.len());
        st.active = Some(runnable[choice]);
        ctrl.cv.notify_all();
    };

    // Teardown: every model thread either finished or unwinds via Aborted.
    let handles = std::mem::take(&mut *ctrl.os_handles.lock().unwrap_or_else(|e| e.into_inner()));
    for handle in handles {
        let _ = handle.join();
    }
    let _ = root.join();
    RunOutcome {
        failure,
        decisions,
        options,
    }
}

fn describe_blocked(st: &Ctrl) -> String {
    let parts: Vec<String> = st
        .threads
        .iter()
        .enumerate()
        .filter(|(_, s)| **s != Status::Finished)
        .map(|(t, s)| match s {
            Status::BlockedLock(l) => format!("thread {t} blocked on lock {l}"),
            Status::BlockedCv(c) => format!("thread {t} parked on condvar {c} (lost wakeup?)"),
            Status::BlockedJoin(j) => format!("thread {t} joining thread {j}"),
            Status::Runnable | Status::Finished => format!("thread {t} {s:?}"),
        })
        .collect();
    parts.join(", ")
}
