//! Fixed-capacity bitsets for the SDG-enumeration and pebbling hot paths.
//!
//! [`BitSet`] stores membership of `0..capacity` in packed `u64` words.  The
//! SDG subgraph enumeration keys millions of set-dedup probes on these, so
//! `Eq`/`Hash` work directly on the word array (one or two words for every
//! realistic program), and the pebble game keeps its red/blue sets as word
//! arrays so membership tests and inserts are single shifts instead of
//! `BTreeSet` tree walks.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A fixed-capacity set of small integers stored as packed `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitSet {
    words: Box<[u64]>,
}

impl BitSet {
    /// An empty set able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> BitSet {
        BitSet {
            words: vec![0u64; capacity.div_ceil(64).max(1)].into_boxed_slice(),
        }
    }

    /// A set containing exactly `value`, with the given capacity.
    pub fn singleton(capacity: usize, value: usize) -> BitSet {
        let mut s = BitSet::new(capacity);
        s.insert(value);
        s
    }

    /// Number of values this set can hold (rounded up to the word size).
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Insert a value; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, value: usize) -> bool {
        let (w, b) = (value / 64, value % 64);
        let newly = self.words[w] & (1u64 << b) == 0;
        self.words[w] |= 1u64 << b;
        newly
    }

    /// Remove a value; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, value: usize) -> bool {
        let (w, b) = (value / 64, value % 64);
        let present = self.words[w] & (1u64 << b) != 0;
        self.words[w] &= !(1u64 << b);
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, value: usize) -> bool {
        let (w, b) = (value / 64, value % 64);
        self.words
            .get(w)
            .is_some_and(|word| word & (1u64 << b) != 0)
    }

    /// Number of values in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set has no values.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove all values.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// In-place union: `self |= other`.
    ///
    /// Set-algebra operations require equal capacities; zipping would
    /// otherwise silently drop the longer set's high words.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.words.len(), other.words.len(), "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place difference: `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.words.len(), other.words.len(), "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// True if every value of `self` is also in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len(), "capacity mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// True if the two sets share at least one value.
    pub fn intersects(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len(), "capacity mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Iterate the values in ascending order.
    pub fn iter(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect values into a set sized to the largest value seen.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> BitSet {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().max().map(|m| m + 1).unwrap_or(0);
        let mut s = BitSet::new(cap);
        for v in values {
            s.insert(v);
        }
        s
    }
}

/// Ascending iterator over the values of a [`BitSet`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_ascending() {
        let mut s = BitSet::new(200);
        for v in [5usize, 63, 64, 128, 199] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 63, 64, 128, 199]);
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(2);
        b.insert(2);
        b.insert(3);
        assert!(a.intersects(&b));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(a.is_subset(&u));
        let mut d = u.clone();
        d.subtract(&a);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn hash_eq_work_for_dedup() {
        use std::collections::HashSet;
        let mut seen: HashSet<BitSet> = HashSet::new();
        assert!(seen.insert(BitSet::singleton(70, 3)));
        assert!(!seen.insert(BitSet::singleton(70, 3)));
        assert!(seen.insert(BitSet::singleton(70, 65)));
    }

    #[test]
    fn empty_capacity_is_safe() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(!s.contains(5));
        assert_eq!(s.iter().count(), 0);
    }
}
