//! Differential tests for the cross-program batch engine: `analyze_suite`
//! over the full 38-kernel registry must produce **byte-identical**
//! `ProgramAnalysis` output to sequential per-program `analyze_program_with`
//! calls — under shard counts {1, 4, 16} and with the programs in reversed
//! order — while actually deduplicating structures across programs.
//!
//! "Byte-identical" includes the *unsnapped* floats (`chi_coeff`,
//! `tile_coeffs`, `rho_ref`), compared bit-for-bit: the cache solves the
//! canonical model of every structure, so which program triggers the first
//! solve must not leak into any output.

use soap_sdg::{analyze_program_with, analyze_suite_with, SdgOptions, SolveCache, SuiteProgram};
use std::fmt::Write as _;

/// The Table-2 analysis options of a registry entry.
fn jobs() -> Vec<SuiteProgram> {
    soap_kernels::registry()
        .into_iter()
        .map(|entry| {
            SuiteProgram::new(
                entry.program,
                SdgOptions {
                    assume_injective: entry.assume_injective,
                    ..SdgOptions::default()
                },
            )
        })
        .collect()
}

/// Exhaustive bit-exact dump of one analysis (everything except the solver
/// accounting, which legitimately differs between shared and private caches).
fn dump(analysis: &soap_sdg::ProgramAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", analysis.name);
    let _ = writeln!(out, "bound {}", analysis.bound);
    for a in &analysis.per_array {
        let _ = writeln!(
            out,
            "array {} |A|={} rho={} sigma={:?} via={:?} bound={}",
            a.array, a.vertex_count, a.rho, a.sigma, a.best_subgraph, a.bound
        );
    }
    for s in &analysis.subgraphs {
        let i = &s.intensity;
        let _ = writeln!(
            out,
            "subgraph {:?} sigma={:?} chi_coeff={:016x} rho={} x0={:?} rho_ref={:016x}",
            s.arrays,
            i.sigma,
            i.chi_coeff.to_bits(),
            i.rho,
            i.x0.as_ref().map(|e| format!("{e}")),
            s.rho_ref.to_bits(),
        );
        for ((name, e), (_, c)) in i.tile_exponents.iter().zip(&i.tile_coeffs) {
            let _ = writeln!(out, "  tile {name} exp={e:?} coeff={:016x}", c.to_bits());
        }
    }
    for n in &analysis.notes {
        let _ = writeln!(out, "note {n}");
    }
    out
}

#[test]
fn batch_registry_is_byte_identical_to_sequential_per_program_analysis() {
    let jobs = jobs();
    // The baseline: sequential per-program analyses, each over its own
    // private cache (the pre-batch behavior).
    let baseline: Vec<String> = jobs
        .iter()
        .map(|job| {
            let analysis = analyze_program_with(&job.program, &job.opts)
                .unwrap_or_else(|e| panic!("{}: {e}", job.name));
            dump(&analysis)
        })
        .collect();

    for shards in [1usize, 4, 16] {
        let cache = SolveCache::with_shards(shards);
        let batch = analyze_suite_with(&jobs, &cache);
        assert_eq!(batch.summary.failures, 0, "shards={shards}");
        for (expected, report) in baseline.iter().zip(&batch.reports) {
            let analysis = report.outcome.as_ref().expect("analysis succeeds");
            assert_eq!(
                expected,
                &dump(analysis),
                "{}: batch output (shards={shards}) diverged from sequential analysis",
                report.name
            );
        }
    }

    // Program order must not leak either: reverse the suite, compare against
    // the same baseline.
    let reversed: Vec<SuiteProgram> = jobs.iter().rev().cloned().collect();
    let cache = SolveCache::with_shards(16);
    let batch = analyze_suite_with(&reversed, &cache);
    assert_eq!(batch.summary.failures, 0);
    for (expected, report) in baseline.iter().rev().zip(&batch.reports) {
        let analysis = report.outcome.as_ref().expect("analysis succeeds");
        assert_eq!(
            expected,
            &dump(analysis),
            "{}: reversed-order batch output diverged from sequential analysis",
            report.name
        );
    }
}

#[test]
fn polybench_linear_algebra_family_hits_across_programs() {
    // The registry's linear-algebra kernels are full of renamed matmul /
    // matvec structures; a shared cache must answer some of them from other
    // programs' entries.
    let family = [
        "gemm", "2mm", "3mm", "atax", "bicg", "mvt", "gesummv", "syrk", "syr2k", "trmm", "symm",
    ];
    let jobs: Vec<SuiteProgram> = family
        .iter()
        .map(|name| {
            let entry = soap_kernels::by_name(name).expect("kernel exists");
            SuiteProgram::new(
                entry.program,
                SdgOptions {
                    assume_injective: entry.assume_injective,
                    ..SdgOptions::default()
                },
            )
        })
        .collect();
    let cache = SolveCache::new();
    let batch = analyze_suite_with(&jobs, &cache);
    assert_eq!(batch.summary.failures, 0);
    let stats = batch.summary.cache;
    assert!(
        stats.cross_program_hits > 0,
        "expected cross-program hits across the linear-algebra family, got {stats:?}"
    );
    // The suite-wide accounting decomposes: every hit is intra or cross.
    assert!(stats.cross_program_hits <= stats.hits);
    // Per-program summaries sum to the suite-wide cross count.
    let per_program_cross: u64 = batch
        .reports
        .iter()
        .filter_map(|r| r.outcome.as_ref().ok())
        .map(|a| a.solver.cross_program_hits)
        .sum();
    assert_eq!(per_program_cross, stats.cross_program_hits);
}
