//! Published state-of-the-art bounds and the paper's reported SOAP bounds
//! (Table 2), encoded symbolically.

use soap_symbolic::{Expr, Rational};

/// The Table-2 record of one kernel: the paper's reported SOAP bound, the
/// reported improvement factor over the previous state of the art, and the
/// source of that previous bound.
#[derive(Clone, Debug)]
pub struct SotaBound {
    /// Kernel name (matches `soap_kernels::registry`).
    pub kernel: &'static str,
    /// The leading-order bound reported by the paper (in this repository's
    /// parameter names, `S` = fast-memory size).
    pub paper_soap_bound: Expr,
    /// The reported improvement factor over the previous state of the art
    /// (`1` when the paper matches prior work, or when no prior bound exists).
    pub improvement: Expr,
    /// Where the previous bound comes from.
    pub source: &'static str,
}

impl SotaBound {
    /// The previously published bound `paper_soap_bound / improvement`.
    pub fn prior_bound(&self) -> Expr {
        self.paper_soap_bound.clone().div(self.improvement.clone())
    }
}

fn sym(s: &str) -> Expr {
    Expr::sym(s)
}

fn prod(names: &[&str]) -> Expr {
    Expr::product(names.iter().map(|n| sym(n)))
}

fn int(n: i64) -> Expr {
    Expr::int(n)
}

fn sqrt_s() -> Expr {
    sym("S").sqrt()
}

fn cbrt_s() -> Expr {
    sym("S").pow(Rational::new(1, 3))
}

fn over_sqrt_s(coeff: i64, names: &[&str]) -> Expr {
    int(coeff).mul(prod(names)).div(sqrt_s())
}

/// The Table-2 entry of a kernel, if the paper lists one.
pub fn sota_bound(kernel: &str) -> Option<SotaBound> {
    let iolb = "IOLB (Olivry et al., PLDI'20)";
    let new = "no previously published bound";
    let entry = |kernel: &'static str, bound: Expr, improvement: Expr, source: &'static str| {
        Some(SotaBound {
            kernel,
            paper_soap_bound: bound,
            improvement,
            source,
        })
    };
    match kernel {
        // ---- Polybench ----
        "adi" => entry(
            "adi",
            int(12).mul(prod(&["N", "N", "T"])).div(sqrt_s()),
            int(12).div(sqrt_s()),
            iolb,
        ),
        "atax" => entry("atax", prod(&["M", "N"]), int(1), iolb),
        "bicg" => entry("bicg", prod(&["M", "N"]), int(1), iolb),
        "cholesky" => entry(
            "cholesky",
            prod(&["N", "N", "N"]).div(int(3).mul(sqrt_s())),
            int(2),
            iolb,
        ),
        "correlation" => entry(
            "correlation",
            over_sqrt_s(1, &["M", "M", "N"]),
            int(2),
            iolb,
        ),
        "covariance" => entry("covariance", over_sqrt_s(1, &["M", "M", "N"]), int(2), iolb),
        "deriche" => entry("deriche", int(3).mul(prod(&["H", "W"])), int(3), iolb),
        "doitgen" => entry(
            "doitgen",
            over_sqrt_s(2, &["NP", "NP", "NQ", "NR"]),
            int(1),
            iolb,
        ),
        "durbin" => entry(
            "durbin",
            int(3).mul(prod(&["N", "N"])).div(int(2)),
            int(3),
            iolb,
        ),
        "fdtd-2d" => entry(
            "fdtd-2d",
            int(2)
                .mul(int(3).sqrt())
                .mul(prod(&["NX", "NY", "T"]))
                .div(sqrt_s()),
            int(6).mul(int(6).sqrt()),
            iolb,
        ),
        "floyd-warshall" => entry(
            "floyd-warshall",
            over_sqrt_s(2, &["N", "N", "N"]),
            int(2),
            iolb,
        ),
        "gemm" => entry("gemm", over_sqrt_s(2, &["NI", "NJ", "NK"]), int(1), iolb),
        "gemver" => entry("gemver", prod(&["N", "N"]), int(1), iolb),
        "gesummv" => entry("gesummv", int(2).mul(prod(&["N", "N"])), int(1), iolb),
        "gramschmidt" => entry(
            "gramschmidt",
            over_sqrt_s(1, &["M", "N", "N"]),
            int(1),
            iolb,
        ),
        "heat-3d" => entry(
            "heat-3d",
            int(6).mul(prod(&["N", "N", "N", "T"])).div(cbrt_s()),
            int(32).div(int(3).mul(int(3).pow(Rational::new(1, 3)))),
            iolb,
        ),
        "jacobi-1d" => entry(
            "jacobi-1d",
            int(2).mul(prod(&["N", "T"])).div(sym("S")),
            int(8),
            iolb,
        ),
        "jacobi-2d" => entry(
            "jacobi-2d",
            over_sqrt_s(4, &["N", "N", "T"]),
            int(6).mul(int(3).sqrt()),
            iolb,
        ),
        "2mm" => entry(
            "2mm",
            over_sqrt_s(2, &["NI", "NJ", "NK"]).add(over_sqrt_s(2, &["NI", "NL", "NJ"])),
            int(1),
            iolb,
        ),
        "3mm" => entry(
            "3mm",
            over_sqrt_s(2, &["NI", "NJ", "NK"])
                .add(over_sqrt_s(2, &["NJ", "NL", "NM"]))
                .add(over_sqrt_s(2, &["NI", "NL", "NJ"])),
            int(1),
            iolb,
        ),
        "lu" => entry(
            "lu",
            int(2).mul(prod(&["N", "N", "N"])).div(int(3).mul(sqrt_s())),
            int(1),
            iolb,
        ),
        "ludcmp" => entry(
            "ludcmp",
            int(2).mul(prod(&["N", "N", "N"])).div(int(3).mul(sqrt_s())),
            int(1),
            iolb,
        ),
        "mvt" => entry("mvt", prod(&["N", "N"]), int(1), iolb),
        "nussinov" => entry(
            "nussinov",
            prod(&["N", "N", "N"]).div(int(3).mul(sqrt_s())),
            int(2),
            iolb,
        ),
        "seidel-2d" => entry(
            "seidel-2d",
            over_sqrt_s(4, &["N", "N", "T"]),
            int(6).mul(int(3).sqrt()),
            iolb,
        ),
        "symm" => entry("symm", over_sqrt_s(2, &["M", "M", "N"]), int(1), iolb),
        "syr2k" => entry("syr2k", over_sqrt_s(2, &["M", "N", "N"]), int(2), iolb),
        "syrk" => entry("syrk", over_sqrt_s(1, &["M", "N", "N"]), int(2), iolb),
        "trisolv" => entry("trisolv", prod(&["N", "N"]).div(int(2)), int(1), iolb),
        "trmm" => entry("trmm", over_sqrt_s(1, &["M", "M", "N"]), int(1), iolb),

        // ---- Neural networks ----
        "direct-conv" => entry(
            "direct-conv",
            over_sqrt_s(2, &["CIN", "COUT", "HOUT", "BATCH", "WOUT", "WKER", "HKER"]),
            int(8),
            "Zhang et al. 2020",
        ),
        "softmax" => entry(
            "softmax",
            int(4).mul(prod(&["B", "H", "M", "N"])),
            int(1),
            new,
        ),
        "mlp" => entry(
            "mlp",
            over_sqrt_s(2, &["N", "FC1", "FC2"])
                .add(over_sqrt_s(2, &["N", "FC1", "INP"]))
                .add(over_sqrt_s(2, &["N", "FC2", "OUT"])),
            int(1),
            new,
        ),
        "lenet-5" => entry(
            "lenet-5",
            int(300)
                .mul(int(2).sqrt())
                .mul(prod(&["CH", "H", "BATCH", "W"]))
                .div(sqrt_s()),
            int(1),
            new,
        ),
        "bert-encoder" => entry(
            "bert-encoder",
            int(4)
                .mul(prod(&["B", "H", "P", "L"]))
                .mul(sym("L").add(int(2).mul(prod(&["H", "P"]))))
                .div(sqrt_s()),
            int(1),
            new,
        ),

        // ---- Various ----
        "lulesh" => entry("lulesh", int(22).mul(sym("numElem")), int(1), new),
        "horizontal-diffusion" => entry(
            "horizontal-diffusion",
            int(2).mul(prod(&["I", "J", "K"])),
            int(1),
            new,
        ),
        "vertical-advection" => entry(
            "vertical-advection",
            int(5).mul(prod(&["I", "J", "K"])),
            int(1),
            new,
        ),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn eval(e: &Expr, pairs: &[(&str, f64)]) -> f64 {
        let b: BTreeMap<String, f64> = pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        e.eval(&b).unwrap()
    }

    #[test]
    fn every_registered_kernel_has_a_table2_entry() {
        for entry in soap_kernels::registry() {
            assert!(
                sota_bound(entry.name).is_some(),
                "missing Table-2 record for {}",
                entry.name
            );
        }
    }

    #[test]
    fn gemm_paper_bound_evaluates() {
        let b = sota_bound("gemm").unwrap();
        let v = eval(
            &b.paper_soap_bound,
            &[("NI", 100.0), ("NJ", 100.0), ("NK", 100.0), ("S", 100.0)],
        );
        assert_eq!(v, 2.0 * 1.0e6 / 10.0);
        // improvement 1 => prior bound equals the paper bound.
        assert_eq!(
            eval(
                &b.prior_bound(),
                &[("NI", 100.0), ("NJ", 100.0), ("NK", 100.0), ("S", 100.0)]
            ),
            v
        );
    }

    #[test]
    fn improvement_factors_match_the_paper() {
        let jac = sota_bound("jacobi-1d").unwrap();
        assert_eq!(eval(&jac.improvement, &[]), 8.0);
        let fdtd = sota_bound("fdtd-2d").unwrap();
        assert!((eval(&fdtd.improvement, &[]) - 6.0 * 6.0_f64.sqrt()).abs() < 1e-9);
        let heat = sota_bound("heat-3d").unwrap();
        assert!(
            (eval(&heat.improvement, &[]) - 32.0 / (3.0 * 3.0_f64.powf(1.0 / 3.0))).abs() < 1e-9
        );
        let conv = sota_bound("direct-conv").unwrap();
        assert_eq!(eval(&conv.improvement, &[]), 8.0);
    }

    #[test]
    fn prior_bound_is_smaller_when_improved() {
        let chol = sota_bound("cholesky").unwrap();
        let args = &[("N", 100.0), ("S", 64.0)][..];
        assert!(eval(&chol.prior_bound(), args) < eval(&chol.paper_soap_bound, args));
    }
}
