//! Stencil analysis: reproduce the paper's improved bounds for time-tiled
//! stencils (jacobi-1d/2d, heat-3d) and validate one of them against an
//! explicit red-blue pebbling simulation.
//!
//! ```text
//! cargo run --release --example stencil_tiling
//! ```

use soap::pebbling::{simulate_program_order, Cdag};
use soap::prelude::*;
use std::collections::BTreeMap;

fn main() {
    // The three time-versioned stencils from Polybench.
    for name in ["jacobi-1d", "jacobi-2d", "heat-3d"] {
        let entry = soap::kernels::by_name(name).expect("kernel exists");
        let analysis = analyze_program(&entry.program).expect("analysis succeeds");
        println!("{name:<10} Q ≥ {}", analysis.bound);
    }

    // Empirical check on a small jacobi-1d instance: no valid schedule can
    // move fewer words than the bound.
    let entry = soap::kernels::by_name("jacobi-1d").unwrap();
    let analysis = analyze_program(&entry.program).unwrap();
    let (n, t, s) = (48i64, 24i64, 16usize);
    let params: BTreeMap<String, i64> = [("N".to_string(), n), ("T".to_string(), t)]
        .into_iter()
        .collect();
    let cdag = Cdag::from_program(&entry.program, &params);
    let stats = simulate_program_order(&cdag, s).expect("valid pebbling");

    let mut bindings = BTreeMap::new();
    bindings.insert("N".to_string(), n as f64);
    bindings.insert("T".to_string(), t as f64);
    bindings.insert("S".to_string(), s as f64);
    let bound = analysis.bound.eval(&bindings).unwrap();

    println!("\njacobi-1d, N = {n}, T = {t}, S = {s} red pebbles");
    println!("  analytic lower bound : {bound:.0} words");
    println!(
        "  simulated schedule   : {} loads + {} stores = {} words",
        stats.loads,
        stats.stores,
        stats.io()
    );
    println!("  gap (schedule/bound) : {:.2}×", stats.io() as f64 / bound);
    assert!(
        stats.io() as f64 >= bound,
        "a valid schedule can never beat the lower bound"
    );
}
