//! # soap-frontend
//!
//! Parsers that turn source code into SOAP IR, playing the role DaCe plays in
//! the paper's toolchain ("derive lower bounds directly from provided C
//! code").  Two dialects are supported, covering the input class the analysis
//! needs — perfectly or imperfectly nested affine loops around array
//! assignments:
//!
//! * a **Python-like** dialect (`for i in range(lo, hi):` with indentation),
//!   matching the listings in the paper;
//! * a **C-like** dialect (`for (i = lo; i < hi; i++) { ... }` with
//!   `A[i][j]`-style subscripts).
//!
//! Assignments of the form `X[...] = expr` become SOAP statements; `+=`, `-=`
//! and `*=` assignments become update statements; every array reference on the
//! right-hand side becomes an input access component.  Scalar temporaries and
//! arithmetic on the right-hand side are irrelevant for the I/O analysis and
//! are ignored beyond the array references they contain.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod c_like;
mod python_like;
mod rhs;

pub use c_like::parse_c;
pub use python_like::parse_python;

use soap_ir::IrError;

/// Errors produced by the front-end parsers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrontendError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A statement appeared outside of any loop.
    StatementOutsideLoop {
        /// 1-based line number.
        line: usize,
    },
    /// Lowering to the IR failed.
    Ir(IrError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            FrontendError::StatementOutsideLoop { line } => {
                write!(f, "line {line}: statement outside of any loop")
            }
            FrontendError::Ir(e) => write!(f, "IR error: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<IrError> for FrontendError {
    fn from(e: IrError) -> Self {
        FrontendError::Ir(e)
    }
}
