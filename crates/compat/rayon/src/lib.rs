//! Offline stand-in for `rayon`: the `par_iter().map(..)/.filter_map(..)
//! .collect()` shape used by this workspace, executed on `std::thread::scope`
//! threads.
//!
//! Work is split into one contiguous chunk per available core; each thread
//! maps its chunk independently and the per-chunk results are concatenated in
//! order, so collection order matches the sequential iteration order exactly
//! (the same guarantee real rayon gives for indexed parallel iterators).
#![forbid(unsafe_code)]

/// The usual `use rayon::prelude::*;` surface.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Types whose references can be iterated in parallel.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the parallel iterator.
    type Item: Sync + 'a;

    /// Start a parallel iteration over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Parallel map.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Parallel filter-map.
    pub fn filter_map<R, F>(self, f: F) -> ParFilterMap<'a, T, F>
    where
        R: Send,
        F: Fn(&T) -> Option<R> + Sync,
    {
        ParFilterMap {
            items: self.items,
            f,
        }
    }
}

/// Result of [`ParIter::map`], awaiting collection.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map on scoped threads and gather the results in order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&T) -> R + Sync,
        C: From<Vec<R>>,
    {
        let f = &self.f;
        C::from(run_chunked(self.items, |item, out| out.push(f(item))))
    }
}

/// Result of [`ParIter::filter_map`], awaiting collection.
pub struct ParFilterMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParFilterMap<'a, T, F> {
    /// Run the filter-map on scoped threads and gather the results in order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&T) -> Option<R> + Sync,
        C: From<Vec<R>>,
    {
        let f = &self.f;
        C::from(run_chunked(self.items, |item, out| out.extend(f(item))))
    }
}

/// Split `items` into per-thread chunks, apply `per_item` on scoped threads,
/// and concatenate the per-chunk outputs in chunk order.
fn run_chunked<T: Sync, R: Send>(items: &[T], per_item: impl Fn(&T, &mut Vec<R>) + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if threads <= 1 || items.len() <= 1 {
        let mut out = Vec::with_capacity(items.len());
        for it in items {
            per_item(it, &mut out);
        }
        return out;
    }
    let chunk = items.len().div_ceil(threads.min(items.len()));
    let chunks: Vec<&[T]> = items.chunks(chunk).collect();
    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|c| {
                scope.spawn(|| {
                    let mut out = Vec::with_capacity(c.len());
                    for it in *c {
                        per_item(it, &mut out);
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("worker thread panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_preserves_order_and_drops() {
        let input: Vec<u64> = (0..1000).collect();
        let evens: Vec<u64> = input
            .par_iter()
            .filter_map(|x| (x % 2 == 0).then_some(*x))
            .collect();
        assert_eq!(evens, (0..1000).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
