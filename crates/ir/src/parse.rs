//! A tiny parser for affine expressions and subscript lists.
//!
//! This is *not* the program front-end (see `soap-frontend`); it only parses
//! the compact index/bound strings used by the programmatic builder API, e.g.
//! `"i-1"`, `"2*N + 1"`, `"r+2*w, s, c, b"`.

use crate::access::LinIndex;
use crate::domain::AffineExpr;
use crate::IrError;

/// Parse an affine expression such as `"2*N + k - 3"`.
pub fn parse_affine(input: &str) -> Result<AffineExpr, IrError> {
    let mut expr = AffineExpr::zero();
    let mut rest = input.trim();
    let mut sign = 1i64;
    let mut first = true;
    while !rest.is_empty() {
        // Leading sign.
        if let Some(r) = rest.strip_prefix('+') {
            sign = 1;
            rest = r.trim_start();
        } else if let Some(r) = rest.strip_prefix('-') {
            sign = -1;
            rest = r.trim_start();
        } else if !first {
            return Err(IrError::Parse(format!("expected '+' or '-' in '{input}'")));
        }
        first = false;
        // One term: [int][*]ident | int | ident
        let term_end = rest.find(['+', '-']).unwrap_or(rest.len());
        let term = rest[..term_end].trim();
        rest = rest[term_end..].trim_start();
        if term.is_empty() {
            return Err(IrError::Parse(format!("empty term in '{input}'")));
        }
        let (coeff, name) = split_term(term, input)?;
        match name {
            None => expr = expr.offset(sign * coeff),
            Some(n) => {
                expr = expr.add(&AffineExpr::var(&n).scale(sign * coeff));
            }
        }
        sign = 1;
    }
    Ok(expr)
}

/// Split a single term like `"2*N"`, `"N"`, `"3"` into (coefficient, symbol).
fn split_term(term: &str, context: &str) -> Result<(i64, Option<String>), IrError> {
    if let Some((a, b)) = term.split_once('*') {
        let coeff: i64 = a
            .trim()
            .parse()
            .map_err(|_| IrError::Parse(format!("bad coefficient '{a}' in '{context}'")))?;
        let name = b.trim();
        if !is_ident(name) {
            return Err(IrError::Parse(format!(
                "bad symbol '{name}' in '{context}'"
            )));
        }
        Ok((coeff, Some(name.to_string())))
    } else if let Ok(c) = term.parse::<i64>() {
        Ok((c, None))
    } else if is_ident(term) {
        Ok((1, Some(term.to_string())))
    } else {
        Err(IrError::Parse(format!(
            "cannot parse term '{term}' in '{context}'"
        )))
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .map(|c| c.is_alphabetic() || c == '_')
            .unwrap_or(false)
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

/// Parse a comma-separated list of subscripts, e.g. `"i-1, t"` or
/// `"r + 2*w, s, c, b"`.
pub fn parse_indices(input: &str) -> Result<Vec<LinIndex>, IrError> {
    input
        .split(',')
        .map(|part| parse_affine(part).map(|e| LinIndex::from_affine(&e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_constants_variables_and_sums() {
        assert_eq!(parse_affine("3").unwrap().constant, 3);
        let e = parse_affine("N").unwrap();
        assert_eq!(e.terms.get("N"), Some(&1));
        let e = parse_affine("2*N + k - 3").unwrap();
        assert_eq!(e.terms.get("N"), Some(&2));
        assert_eq!(e.terms.get("k"), Some(&1));
        assert_eq!(e.constant, -3);
        let e = parse_affine("-i + 1").unwrap();
        assert_eq!(e.terms.get("i"), Some(&-1));
        assert_eq!(e.constant, 1);
    }

    #[test]
    fn parses_index_lists() {
        let ix = parse_indices("i-1, t").unwrap();
        assert_eq!(ix.len(), 2);
        assert_eq!(ix[0].offset, -1);
        assert_eq!(ix[1].simple_var(), Some("t"));
        let ix = parse_indices("r + 2*w, s, c, b").unwrap();
        assert_eq!(ix.len(), 4);
        assert_eq!(ix[0].coeffs.get("w"), Some(&2));
        assert!(!ix[0].is_simple());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_affine("2 ** N").is_err());
        assert!(parse_affine("N +").is_err());
        assert!(parse_affine("3N").is_err());
        assert!(parse_affine("").is_ok()); // empty string is the zero expression
    }

    #[test]
    fn round_trips_through_display() {
        for s in ["N - 1", "2*N + k", "i + 1", "0"] {
            let e = parse_affine(s).unwrap();
            let reparsed = parse_affine(&format!("{}", e)).unwrap();
            assert_eq!(e, reparsed, "round trip of '{s}'");
        }
    }
}
