//! Canonical model keys and the cross-subgraph solve cache.
//!
//! On real programs the ~hundreds of merged subgraph models are highly
//! repetitive: a chain of `k` matmuls produces `O(k)` singleton/pair/triple
//! subgraphs whose [`AccessModel`]s differ only in array and variable *names*.
//! Solving each takes thousands of compiled-posynomial probes, so structurally
//! identical models are detected up front and solved once.
//!
//! A model's **canonical key** is the pair of exponent matrices (objective,
//! dominator) of its compiled posynomial forms, with exact rational
//! coefficients, brought to a canonical variable order *modulo renaming*:
//! variables are sorted by an iteratively refined occurrence signature
//! (Weisfeiler–Leman style), the matrices' columns are permuted accordingly,
//! and the term rows sorted.  Equal keys therefore exhibit an explicit
//! isomorphism between the two models; distinct-but-isomorphic models can at
//! worst miss a cache hit (when the refinement cannot separate tied
//! variables), never collide.
//!
//! **Max-form dominators** (§5.1/§5.3 conservative-union `max(...)` terms,
//! compiled to [`MaxPosynomial`]) participate too: each term carries the
//! canonical indices of its `max`/`min` atoms, and each atom's branches are
//! stored as an unordered multiset of canonicalized exponent matrices
//! (branch order in the source expression depends on variable names, so it
//! must not leak into the key).  The explicit-isomorphism guarantee carries
//! over: equal keys mean the monomial matrices, the atom multisets and the
//! term↔atom incidence all coincide under the canonical variable renaming.
//!
//! The cache itself is a **sharded** hash map (lock stripes keyed by the
//! canonical key's hash) shared across the rayon workers of one program
//! analysis — or, through [`SolveCache::session`] /
//! [`global_solve_cache`], across *many* program analyses of a batch run.
//! Hits re-instantiate the cached solution under the requesting model's
//! variable names.
//!
//! **Order invariance.**  A miss does not solve the requesting model as
//! given: it solves the *canonical model* reconstructed from the key
//! (canonical variable order, canonically sorted terms) and stores that
//! solution.  Every requester — including the first — then instantiates the
//! canonical solution under its own names, so the full numeric output
//! (including the unsnapped `chi_coeff`/`tile_coeffs` floats) is a pure
//! function of the canonical key: independent of which isomorphic model
//! arrived first, of the shard count, of thread interleaving, and of the
//! order programs are analyzed in.  This is what makes a batch analysis over
//! a shared cache byte-identical to sequential per-program analyses.
//!
//! **Persistence.**  [`SolveCache::with_store`] layers the cache over a
//! disk-persisted canonical-solution store ([`crate::store`]): entries
//! persisted by earlier processes are hydrated at open (hits on them are
//! counted as `store_hits`), and new misses are flushed back at session end —
//! the same order-invariance argument makes warm results byte-identical to
//! cold ones.

use crate::store::{SolveStore, StoreFlushStats, StoreLoadStats, StoredReport};
use soap_core::{
    solve_model_instrumented_governed, solve_model_precompiled_governed, AccessModel,
    AnalysisError, IntensityResult,
};
use soap_symbolic::{
    CompiledConstraint, CompiledPosynomial, Deadline, Expr, MaxPosynomial, Rational,
};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One term row of a canonical matrix: permuted exponents plus the exact
/// coefficient.
pub(crate) type CanonicalRow = (Vec<i16>, Rational);

/// One canonicalized `max`/`min` atom: its branches as an unordered (sorted)
/// multiset of canonical matrices.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct CanonicalAtom {
    pub(crate) is_min: bool,
    pub(crate) branches: Vec<Vec<CanonicalRow>>,
}

/// One term of a canonical max-form dominator: the monomial part plus the
/// sorted canonical indices of its atoms.
pub(crate) type CanonicalMaxTerm = (Vec<i16>, Rational, Vec<u32>);

/// The canonical dominator: pure exponent matrix, or the max-posynomial
/// structure (monomial matrix + atom incidence + atom multiset).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) enum CanonicalDominator {
    Pure(Vec<CanonicalRow>),
    Max {
        terms: Vec<CanonicalMaxTerm>,
        atoms: Vec<CanonicalAtom>,
    },
}

/// The canonical key of an [`AccessModel`] modulo variable renaming.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CanonicalKey {
    pub(crate) n_vars: usize,
    pub(crate) objective: Vec<CanonicalRow>,
    pub(crate) dominator: CanonicalDominator,
}

impl CanonicalKey {
    /// Whether the dominator of this key is in max-posynomial form.
    pub fn is_max_form(&self) -> bool {
        matches!(self.dominator, CanonicalDominator::Max { .. })
    }
}

/// A canonicalized model: the key, the variable order that produced it
/// (`order[p]` = the model's variable index at canonical position `p`), and
/// the compiled forms of both sides (byproducts of building the key, exposed
/// for callers that want to solve the model directly without re-compiling —
/// the cache itself solves the reconstructed canonical model instead, so its
/// stored solutions are representative-independent).
pub struct CanonicalModel {
    /// The renaming-invariant key.
    pub key: CanonicalKey,
    /// Canonical position → original variable index.
    pub order: Vec<usize>,
    /// The objective compiled during canonicalization.
    pub compiled_objective: CompiledPosynomial,
    /// The dominator compiled during canonicalization.
    pub compiled_dominator: CompiledConstraint,
}

/// Compute the canonical form of a model.
///
/// Returns `None` when the model is not cacheable: an objective/dominator
/// outside (max-)posynomial form, or a non-empty `access_index_sets` (the
/// exact-LP cross-check depends on data outside the matrices, so such models
/// are solved directly).
pub fn canonicalize(model: &AccessModel) -> Option<CanonicalModel> {
    if !model.access_index_sets.is_empty() {
        return None;
    }
    let vars = &model.tile_variables;
    let obj = CompiledPosynomial::compile(&model.objective, vars)?;
    if let Some(dom) = CompiledPosynomial::compile(&model.dominator, vars) {
        let order = canonical_variable_order(&[(0u8, &obj), (1u8, &dom)], vars.len());
        let key = CanonicalKey {
            n_vars: vars.len(),
            objective: permuted_rows(&obj, &order),
            dominator: CanonicalDominator::Pure(permuted_rows(&dom, &order)),
        };
        return Some(CanonicalModel {
            key,
            order,
            compiled_objective: obj,
            compiled_dominator: CompiledConstraint::Pure(dom),
        });
    }
    let dom = MaxPosynomial::compile(&model.dominator, vars)?;
    let order = max_variable_order(&obj, &dom, vars.len());
    let key = CanonicalKey {
        n_vars: vars.len(),
        objective: permuted_rows(&obj, &order),
        dominator: canonical_max_dominator(&dom, &order),
    };
    Some(CanonicalModel {
        key,
        order,
        compiled_objective: obj,
        compiled_dominator: CompiledConstraint::Mixed(dom),
    })
}

/// Canonical variable order for a max-form model: the objective (tag 0) and
/// the dominator's monomial-part matrix (tag 1) refine like the pure case;
/// every atom branch contributes under one shared tag (2) — the branch
/// *multiset* is renaming-invariant even though branch order is not, so
/// pooling the branches keeps the order invariant under renaming (pooling
/// can only cost hits, never correctness: the full structure is in the key).
fn max_variable_order(obj: &CompiledPosynomial, dom: &MaxPosynomial, n_vars: usize) -> Vec<usize> {
    let mono = dom.monomial_part();
    let mut polys: Vec<(u8, &CompiledPosynomial)> = vec![(0u8, obj), (1u8, &mono)];
    for j in 0..dom.n_atoms() {
        for branch in dom.atom_branches(j) {
            polys.push((2u8, branch));
        }
    }
    canonical_variable_order(&polys, n_vars)
}

/// Canonicalize a max-form dominator under the given variable order: branch
/// matrices are permuted and sorted within each atom, atoms are sorted (and
/// re-indexed) by their canonical form, each term's atom list is remapped and
/// sorted, and finally the term rows are sorted.
fn canonical_max_dominator(dom: &MaxPosynomial, order: &[usize]) -> CanonicalDominator {
    let canon_atoms: Vec<CanonicalAtom> = (0..dom.n_atoms())
        .map(|j| {
            let mut branches: Vec<Vec<CanonicalRow>> = dom
                .atom_branches(j)
                .iter()
                .map(|b| permuted_rows(b, order))
                .collect();
            branches.sort();
            CanonicalAtom {
                is_min: dom.atom_is_min(j),
                branches,
            }
        })
        .collect();
    // Sort atom indices by canonical form; equal atoms are interchangeable,
    // so their relative order cannot affect the key.
    let mut atom_perm: Vec<usize> = (0..canon_atoms.len()).collect();
    atom_perm.sort_by(|&a, &b| canon_atoms[a].cmp(&canon_atoms[b]));
    let mut atom_rank = vec![0u32; canon_atoms.len()];
    for (new_idx, &old_idx) in atom_perm.iter().enumerate() {
        atom_rank[old_idx] = new_idx as u32;
    }
    let atoms: Vec<CanonicalAtom> = atom_perm.iter().map(|&j| canon_atoms[j].clone()).collect();
    let mut terms: Vec<CanonicalMaxTerm> = (0..dom.n_terms())
        .map(|k| {
            let row = dom.exponent_row(k);
            let permuted: Vec<i16> = order.iter().map(|&t| row[t]).collect();
            let mut atom_ids: Vec<u32> = dom
                .term_atom_indices(k)
                .iter()
                .map(|&j| atom_rank[j as usize])
                .collect();
            atom_ids.sort_unstable();
            (permuted, dom.rational_coeff(k), atom_ids)
        })
        .collect();
    terms.sort();
    CanonicalDominator::Max { terms, atoms }
}

/// A variable's signature: a sortable value that is invariant under variable
/// renaming, refined over rounds.  Each entry describes one occurrence of the
/// variable in a term: `(polynomial tag, own exponent, coefficient, sorted
/// co-occurring (signature-rank, exponent) pairs)`.
type Signature = Vec<(u8, i16, Rational, Vec<(usize, i16)>)>;

/// Order the variables canonically by iterated signature refinement.
///
/// Round 0 ranks variables by their raw occurrence profile; each subsequent
/// round re-ranks them using the previous ranks of the co-occurring variables
/// in every term, until the ranking reaches a fixed point (rank information
/// can take several rounds to propagate through chained statement blocks —
/// bert's 12-variable merged attention models need four).  Any remaining ties
/// are broken by original index, which can only cost cache hits, never
/// correctness (the full matrices are in the key).
fn canonical_variable_order(polys: &[(u8, &CompiledPosynomial)], n_vars: usize) -> Vec<usize> {
    let mut ranks: Vec<usize> = vec![0; n_vars];
    for _round in 0..n_vars.max(2) {
        let prev_ranks = ranks.clone();
        let mut sigs: Vec<Signature> = vec![Vec::new(); n_vars];
        for &(tag, poly) in polys {
            for k in 0..poly.n_terms() {
                let row = poly.exponent_row(k);
                let coeff = poly.rational_coeff(k);
                for (t, &e) in row.iter().enumerate() {
                    if e == 0 {
                        continue;
                    }
                    let mut others: Vec<(usize, i16)> = row
                        .iter()
                        .enumerate()
                        .filter(|&(u, &eu)| u != t && eu != 0)
                        .map(|(u, &eu)| (ranks[u], eu))
                        .collect();
                    others.sort_unstable();
                    sigs[t].push((tag, e, coeff, others));
                }
            }
        }
        for sig in &mut sigs {
            sig.sort();
        }
        // Re-rank: equal signatures share a rank.
        let mut sorted: Vec<usize> = (0..n_vars).collect();
        sorted.sort_by(|&a, &b| sigs[a].cmp(&sigs[b]));
        let mut next_rank = 0;
        for (i, &t) in sorted.iter().enumerate() {
            if i > 0 && sigs[t] != sigs[sorted[i - 1]] {
                next_rank = i;
            }
            ranks[t] = next_rank;
        }
        if ranks == prev_ranks {
            break;
        }
    }
    let mut order: Vec<usize> = (0..n_vars).collect();
    // Stable on original index for tied ranks.
    order.sort_by_key(|&t| ranks[t]);
    order
}

/// Permute the columns of a compiled posynomial to the canonical order and
/// sort the term rows.
fn permuted_rows(poly: &CompiledPosynomial, order: &[usize]) -> Vec<CanonicalRow> {
    let mut rows: Vec<CanonicalRow> = (0..poly.n_terms())
        .map(|k| {
            let row = poly.exponent_row(k);
            let permuted: Vec<i16> = order.iter().map(|&t| row[t]).collect();
            (permuted, poly.rational_coeff(k))
        })
        .collect();
    rows.sort();
    rows
}

/// A cached solution, stored in canonical variable order (also the unit the
/// disk store persists — see [`crate::store`]).
#[derive(Clone)]
pub(crate) struct CanonicalSolution {
    pub(crate) sigma: Rational,
    pub(crate) chi_coeff: f64,
    pub(crate) rho: Expr,
    pub(crate) x0: Option<Expr>,
    /// Indexed by canonical position.
    pub(crate) tile_exponents: Vec<Rational>,
    pub(crate) tile_coeffs: Vec<f64>,
}

/// Cache statistics, surfaced through `ProgramAnalysis` and `SuiteSummary`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Models answered from the cache.
    pub hits: u64,
    /// Models solved and inserted.
    pub misses: u64,
    /// Models solved directly because no canonical key exists.
    pub uncacheable: u64,
    /// The subset of `hits` whose dominator is in max-posynomial form.
    pub max_hits: u64,
    /// The subset of `misses` whose dominator is in max-posynomial form.
    pub max_misses: u64,
    /// KKT solves run by this cache (misses + uncacheable models) that
    /// exhausted the iteration budget without converging.
    pub kkt_cap_hits: u64,
    /// The subset of `hits` answered from an entry first inserted by a
    /// *different* session (another program of a batch run) — the dedup that
    /// only a shared cache can provide.  Always 0 for a private per-program
    /// cache.  Disjoint from `store_hits`.
    pub cross_program_hits: u64,
    /// The subset of `hits` answered from an entry hydrated out of the disk
    /// store at [`SolveCache::with_store`] open — the dedup only cross-process
    /// persistence can provide.  Always 0 for a store-less cache; disjoint
    /// from `cross_program_hits` (a hit is classified as exactly one of
    /// intra-program, cross-program, or persistent-store).
    pub store_hits: u64,
    /// Whole-program analyses answered from a persisted *report* record
    /// (`SolveCache::lookup_report`) — the warm path that skips
    /// enumeration, merging, instantiation, and solving entirely.  Counted
    /// separately from the per-model counters above: a report hit produces
    /// zero model traffic.
    pub report_hits: u64,
}

impl CacheStats {
    /// The counter deltas since an earlier snapshot of the same cache
    /// (saturating, in case another concurrent user reset nothing but raced).
    pub fn since(&self, before: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(before.hits),
            misses: self.misses.saturating_sub(before.misses),
            uncacheable: self.uncacheable.saturating_sub(before.uncacheable),
            max_hits: self.max_hits.saturating_sub(before.max_hits),
            max_misses: self.max_misses.saturating_sub(before.max_misses),
            kkt_cap_hits: self.kkt_cap_hits.saturating_sub(before.kkt_cap_hits),
            cross_program_hits: self
                .cross_program_hits
                .saturating_sub(before.cross_program_hits),
            store_hits: self.store_hits.saturating_sub(before.store_hits),
            report_hits: self.report_hits.saturating_sub(before.report_hits),
        }
    }
}

impl serde::Serialize for CacheStats {
    /// The canonical JSON record of the cache accounting, shared by the CLI
    /// batch subcommand, the bench suite artifacts, and the perf snapshot
    /// (one definition, so the emitters cannot drift apart).
    ///
    /// Every top-level field is a pure function of program structure —
    /// byte-identical for any thread count, shard count, or program order.
    /// The one exception is quarantined under `order_dependent`: *which*
    /// session first solves a shared structure (and therefore how `hits`
    /// splits into cross- vs intra-program) depends on scheduling.  The
    /// totals are invariant (`cross + intra = hits - store_hits`); only the
    /// split moves.  Consumers diffing records for determinism drop that one
    /// object instead of sed-stripping fields across the whole line.
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("hits".to_string(), self.hits.to_value()),
            ("misses".to_string(), self.misses.to_value()),
            ("uncacheable".to_string(), self.uncacheable.to_value()),
            ("store_hits".to_string(), self.store_hits.to_value()),
            ("report_hits".to_string(), self.report_hits.to_value()),
            ("max_hits".to_string(), self.max_hits.to_value()),
            ("max_misses".to_string(), self.max_misses.to_value()),
            ("kkt_cap_hits".to_string(), self.kkt_cap_hits.to_value()),
            (
                "order_dependent".to_string(),
                serde::Value::Object(vec![
                    (
                        "cross_program_hits".to_string(),
                        self.cross_program_hits.to_value(),
                    ),
                    (
                        "intra_program_hits".to_string(),
                        self.hits
                            .saturating_sub(self.cross_program_hits)
                            .saturating_sub(self.store_hits)
                            .to_value(),
                    ),
                ]),
            ),
        ])
    }
}

/// A bundle of cache counters.  The cache itself owns one (process/suite
/// accounting); every [`CacheSession`] owns another, so one shared cache can
/// report exact per-program numbers for many concurrent analyses.
#[derive(Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    uncacheable: AtomicU64,
    /// Nanoseconds spent inside actual KKT solves (misses + uncacheable
    /// models) — the "solve" share of the per-phase timing breakdown.  Not
    /// part of [`CacheStats`]: wall-clock is not a determinism-checked
    /// output.  Summed across workers, so under parallel execution it can
    /// exceed the analysis's wall-clock time.
    solve_ns: AtomicU64,
    max_hits: AtomicU64,
    max_misses: AtomicU64,
    kkt_cap_hits: AtomicU64,
    cross_program_hits: AtomicU64,
    store_hits: AtomicU64,
    report_hits: AtomicU64,
}

impl CacheCounters {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
            max_hits: self.max_hits.load(Ordering::Relaxed),
            max_misses: self.max_misses.load(Ordering::Relaxed),
            kkt_cap_hits: self.kkt_cap_hits.load(Ordering::Relaxed),
            cross_program_hits: self.cross_program_hits.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            report_hits: self.report_hits.load(Ordering::Relaxed),
        }
    }
}

/// Number of lock stripes of [`SolveCache::new`] when `SOAP_CACHE_SHARDS` is
/// unset: enough that the rayon workers of a whole-registry batch run rarely
/// contend on the same mutex, small enough that an empty cache stays cheap to
/// allocate per analysis.
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// Upper clamp of the `SOAP_CACHE_SHARDS` override: far above any plausible
/// core count, low enough that a typo (`SOAP_CACHE_SHARDS=16384`) cannot
/// allocate an absurd stripe array per analysis.
pub const MAX_CACHE_SHARDS: usize = 1024;

/// Parse a `SOAP_CACHE_SHARDS` override: a positive integer, clamped to the
/// nearest power of two ≥ it (lock striping by `hash % n` distributes best at
/// powers of two) and capped at [`MAX_CACHE_SHARDS`].  `None` for anything
/// that does not parse as a positive integer — the caller falls back to
/// [`DEFAULT_CACHE_SHARDS`] rather than guessing what a typo meant.
pub fn parse_cache_shards(raw: &str) -> Option<usize> {
    let n: usize = raw.trim().parse().ok().filter(|&n| n > 0)?;
    // Clamp before rounding: MAX_CACHE_SHARDS is itself a power of two, so
    // min-first is equivalent and cannot overflow `next_power_of_two` the
    // way a near-usize::MAX input would.
    Some(n.min(MAX_CACHE_SHARDS).next_power_of_two())
}

/// The shard count of [`SolveCache::new`]: the validated `SOAP_CACHE_SHARDS`
/// environment override when set (so the single-core reference host and
/// multi-core hosts can both be measured without a rebuild), otherwise
/// [`DEFAULT_CACHE_SHARDS`].  The shard count is a concurrency knob only —
/// results are byte-identical for any value.
pub fn cache_shards_from_env() -> usize {
    std::env::var("SOAP_CACHE_SHARDS")
        .ok()
        .and_then(|raw| parse_cache_shards(&raw))
        .unwrap_or(DEFAULT_CACHE_SHARDS)
}

/// One lock stripe: its slice of the key→cell map.
type CacheShard = Mutex<HashMap<CanonicalKey, Arc<SolveCell>>>;

/// A concurrent solve cache keyed by [`CanonicalKey`], shared across the
/// parallel subgraph workers of one program analysis — or, via
/// [`SolveCache::session`], across the many analyses of a batch run.
///
/// The key→cell map is split into `n` lock stripes selected by the key's
/// hash; each key maps to a [`OnceLock`] cell, so a stripe mutex only guards
/// its slice of lookups while the expensive solve runs outside any lock, and
/// concurrent requests for the same structure block on the cell instead of
/// duplicating the solve — `misses` is exactly the number of distinct
/// structures even under parallel first-touches.  The shard count changes
/// lock contention only, never results (see the module docs on order
/// invariance).
pub struct SolveCache {
    shards: Box<[CacheShard]>,
    counters: CacheCounters,
    scopes: AtomicU64,
    /// The disk-persisted layer, when opened with [`SolveCache::with_store`].
    store: Option<StoreLayer>,
}

/// The disk-persistence state of a store-backed cache: the store itself, the
/// load-time accounting, and the set of keys already on disk (so a flush
/// writes only what this process newly solved).
struct StoreLayer {
    store: SolveStore,
    load_stats: StoreLoadStats,
    persisted: Mutex<std::collections::HashSet<CanonicalKey>>,
    /// Whether this cache participates in the finished-report layer.
    /// [`SolveCache::with_store_solve_only`] opts out: it neither hydrates
    /// nor records nor flushes report records, so a measurement of the
    /// solve-record warm path stays a measurement of the solve-record warm
    /// path.
    reports_enabled: bool,
    /// Finished-program reports keyed by
    /// [`structural_program_key`](crate::structural_program_key) — hydrated
    /// at open, extended by [`SolveCache::record_report`].
    reports: Mutex<HashMap<u64, Arc<StoredReport>>>,
    /// Report load-time accounting (a separate record family with its own
    /// segments, so its stats never mix into `load_stats`).
    report_load_stats: StoreLoadStats,
    /// Report keys already on disk, so a flush writes only what this process
    /// newly analyzed.
    persisted_reports: Mutex<std::collections::HashSet<u64>>,
}

/// The session scope recorded on cells hydrated from the disk store; hits on
/// them are classified as persistent-store hits.  Live sessions use scopes
/// counted up from 1, so this sentinel is unreachable.
const STORE_SCOPE: u64 = u64::MAX;

/// The scope recorded on a cell whose initializing solve did not produce a
/// result *about the model* — it was cancelled by a deadline or died in a
/// panic.  Such cells are transient: the initializer unmaps them from the
/// shard immediately (so the next requester retries against a fresh cell),
/// they are never counted as hits or misses, and [`SolveCache::flush_store`]
/// refuses to persist them even if a flush races the unmapping.
const TRANSIENT_SCOPE: u64 = u64::MAX - 1;

impl Default for SolveCache {
    fn default() -> Self {
        SolveCache::new()
    }
}

impl Drop for SolveCache {
    /// Best-effort session-end flush of a store-backed cache: dropping the
    /// cache persists whatever it solved, so short-lived CLI invocations
    /// cannot lose their work by forgetting the explicit call.  Errors are
    /// swallowed (there is nowhere to report them from a destructor); callers
    /// that care run [`SolveCache::flush_store`] themselves first.
    fn drop(&mut self) {
        if self.store.is_some() {
            let _ = self.flush_store();
        }
    }
}

/// One cached structure: the scope of the session whose solve initialized
/// the cell (used to classify later hits as intra- vs cross-program) plus
/// the canonical solution itself.
type SolveCell = OnceLock<(u64, Result<CanonicalSolution, AnalysisError>)>;

/// The process-lifetime solve cache (the *global solve cache*): one shared
/// [`SolveCache`] that outlives any single analysis, so long-running services
/// can thread it through every `analyze_program_with_cache` /
/// `analyze_suite_with` call and amortize solves across requests.
///
/// Two environment variables shape its first use:
///
/// * `SOAP_CACHE_SHARDS` — validated lock-stripe override, see
///   [`cache_shards_from_env`];
/// * `SOAP_CACHE_DIR` — when set (and non-empty), the global cache opens the
///   disk-persisted store at that directory, hydrating every structure solved
///   by *earlier processes*.  The global cache is never dropped, so services
///   using it should call [`SolveCache::flush_store`] at their own session
///   boundaries; if the store cannot be opened, a warning goes to stderr and
///   the cache degrades to in-memory.
pub fn global_solve_cache() -> &'static SolveCache {
    static GLOBAL: OnceLock<SolveCache> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        if let Ok(dir) = std::env::var("SOAP_CACHE_DIR") {
            if !dir.is_empty() {
                match SolveCache::with_store(&dir) {
                    Ok(cache) => return cache,
                    Err(e) => eprintln!(
                        "soap: cannot open solve store SOAP_CACHE_DIR={dir}: {e}; continuing with an in-memory cache"
                    ),
                }
            }
        }
        SolveCache::new()
    })
}

/// A per-analysis view of a (possibly shared) [`SolveCache`]: carries the
/// session's scope id (for cross-program hit classification) and its own
/// counters, so [`CacheSession::stats`] reports exactly this analysis's
/// traffic even when many analyses share the cache concurrently.
pub struct CacheSession<'a> {
    cache: &'a SolveCache,
    scope: u64,
    local: CacheCounters,
    /// The deadline governing every solve of this session, when opened with
    /// [`SolveCache::session_governed`].  A solve cancelled by it returns
    /// [`AnalysisError::Cancelled`] and leaves no trace in the cache.
    deadline: Option<Deadline>,
}

impl CacheSession<'_> {
    /// Solve `model` through the underlying shared cache, accounting the
    /// outcome to both the cache and this session.
    pub fn solve(&self, model: &AccessModel) -> Result<IntensityResult, AnalysisError> {
        self.cache
            .solve_scoped(model, self.scope, Some(&self.local), self.deadline.as_ref())
    }

    /// This session's traffic only (not the whole cache's).
    pub fn stats(&self) -> CacheStats {
        self.local.snapshot()
    }

    /// Milliseconds this session spent inside actual KKT solves (cache
    /// misses + uncacheable models) — the "solve" share of the per-phase
    /// timing breakdown.  Summed across workers: under parallel execution it
    /// can exceed the analysis's wall-clock time.
    pub fn solve_ms(&self) -> f64 {
        self.local.solve_ns.load(Ordering::Relaxed) as f64 / 1e6
    }
}

impl SolveCache {
    /// An empty cache with [`cache_shards_from_env`] lock stripes
    /// ([`DEFAULT_CACHE_SHARDS`] unless `SOAP_CACHE_SHARDS` overrides it).
    pub fn new() -> SolveCache {
        SolveCache::with_shards(cache_shards_from_env())
    }

    /// An empty cache with `n` lock stripes (clamped to ≥ 1).  The shard
    /// count is a concurrency knob only: results are byte-identical for any
    /// value.
    pub fn with_shards(n: usize) -> SolveCache {
        let n = n.max(1);
        SolveCache {
            shards: (0..n).map(|_| Mutex::default()).collect(),
            counters: CacheCounters::default(),
            scopes: AtomicU64::new(0),
            store: None,
        }
    }

    /// A cache layered over the disk-persisted canonical-solution store at
    /// `dir` (created if absent): every entry already on disk is hydrated
    /// into the shards before the first solve, and
    /// [`flush_store`](SolveCache::flush_store) (also run on drop) persists
    /// whatever this cache solved on top.  Stored results are byte-identical
    /// to cold solves — the store persists the canonical solution itself,
    /// floats as raw bit patterns (see [`crate::store`]) — so a warm cache
    /// changes wall-clock time and nothing else.
    ///
    /// Corrupt records and mismatched-version segments are skipped with
    /// counted notes, never a panic: see
    /// [`store_load_stats`](SolveCache::store_load_stats).
    pub fn with_store(dir: impl Into<std::path::PathBuf>) -> std::io::Result<SolveCache> {
        SolveCache::with_store_and_shards(dir, cache_shards_from_env())
    }

    /// [`with_store`](SolveCache::with_store) without the finished-report
    /// layer: only solve records are hydrated, and
    /// `record_report` / `lookup_report` are no-ops, so analyses
    /// always run the full pipeline against the solve-record warm path.
    /// This is the bench harness's tool for measuring the solve-record path
    /// in isolation (`suite/registry_warm` vs `suite/registry_warm_report`).
    pub fn with_store_solve_only(
        dir: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<SolveCache> {
        SolveCache::with_store_configured(dir, cache_shards_from_env(), false)
    }

    /// [`with_store`](SolveCache::with_store) with an explicit shard count.
    pub fn with_store_and_shards(
        dir: impl Into<std::path::PathBuf>,
        n: usize,
    ) -> std::io::Result<SolveCache> {
        SolveCache::with_store_configured(dir, n, true)
    }

    fn with_store_configured(
        dir: impl Into<std::path::PathBuf>,
        n: usize,
        reports_enabled: bool,
    ) -> std::io::Result<SolveCache> {
        let store = SolveStore::open(dir)?;
        let (entries, load_stats) = store.load()?;
        let mut cache = SolveCache::with_shards(n);
        let mut persisted = std::collections::HashSet::with_capacity(entries.len());
        for (key, solution) in entries {
            let cell: Arc<SolveCell> = Arc::default();
            cell.set((STORE_SCOPE, solution))
                .unwrap_or_else(|_| unreachable!("fresh cell"));
            let shard = cache.shard_of(&key);
            persisted.insert(key.clone());
            cache.shards[shard]
                .lock()
                // lint:allow(unwrap-expect): a poisoned stripe means a solver panicked; propagating keeps fail-stop semantics
                .expect("cache poisoned")
                .insert(key, cell);
        }
        let (reports, report_load_stats, persisted_reports) = if reports_enabled {
            let (entries, stats) = store.load_reports()?;
            let mut reports = HashMap::with_capacity(entries.len());
            let mut persisted = std::collections::HashSet::with_capacity(entries.len());
            for (key, report) in entries {
                persisted.insert(key);
                reports.insert(key, Arc::new(report));
            }
            (reports, stats, persisted)
        } else {
            Default::default()
        };
        cache.store = Some(StoreLayer {
            store,
            load_stats,
            persisted: Mutex::new(persisted),
            reports_enabled,
            reports: Mutex::new(reports),
            report_load_stats,
            persisted_reports: Mutex::new(persisted_reports),
        });
        Ok(cache)
    }

    /// Look up the finished report persisted under a
    /// [`structural_program_key`](crate::structural_program_key).  `None`
    /// (and no counter traffic) for a store-less or solve-only cache.  A hit
    /// is counted in [`CacheStats::report_hits`].
    pub(crate) fn lookup_report(&self, key: u64) -> Option<Arc<StoredReport>> {
        let layer = self.store.as_ref().filter(|l| l.reports_enabled)?;
        let report = layer
            .reports
            .lock()
            // lint:allow(unwrap-expect): a poisoned stripe means a solver panicked; propagating keeps fail-stop semantics
            .expect("report state poisoned")
            .get(&key)
            .cloned()?;
        self.counters.report_hits.fetch_add(1, Ordering::Relaxed);
        Some(report)
    }

    /// Whether this cache participates in the finished-report layer (callers
    /// gate the report clones on this, so store-less caches pay nothing).
    pub(crate) fn reports_enabled(&self) -> bool {
        self.store.as_ref().is_some_and(|l| l.reports_enabled)
    }

    /// Record a finished report for later processes (and later requests of
    /// this one).  First writer wins — the analysis is a pure function of
    /// the key, so concurrent recordings are identical.  A no-op for a
    /// store-less or solve-only cache.
    pub(crate) fn record_report(&self, key: u64, report: StoredReport) {
        let Some(layer) = self.store.as_ref().filter(|l| l.reports_enabled) else {
            return;
        };
        layer
            .reports
            .lock()
            // lint:allow(unwrap-expect): a poisoned stripe means a solver panicked; propagating keeps fail-stop semantics
            .expect("report state poisoned")
            .entry(key)
            .or_insert_with(|| Arc::new(report));
    }

    /// The report-record load accounting, when this cache hydrated the
    /// report layer (`None` for store-less and solve-only caches).
    pub fn report_load_stats(&self) -> Option<&StoreLoadStats> {
        self.store
            .as_ref()
            .filter(|l| l.reports_enabled)
            .map(|l| &l.report_load_stats)
    }

    /// The load-time accounting of the disk store (`None` for a store-less
    /// cache): entries hydrated, corrupt records skipped, segments rejected.
    pub fn store_load_stats(&self) -> Option<&StoreLoadStats> {
        self.store.as_ref().map(|s| &s.load_stats)
    }

    /// The store directory, when this cache is store-backed.
    pub fn store_dir(&self) -> Option<&std::path::Path> {
        self.store.as_ref().map(|s| s.store.dir())
    }

    /// Persist every structure solved since the store was opened (or last
    /// flushed) as one new segment file; entries that came *from* the store
    /// are never rewritten.  A no-op returning `appended: 0` for a store-less
    /// cache or when there is nothing new.  Also runs best-effort on drop, so
    /// a `with_store` session persists its misses even without an explicit
    /// call — long-lived caches (e.g. [`global_solve_cache`]) should flush
    /// explicitly at session boundaries instead.
    pub fn flush_store(&self) -> std::io::Result<StoreFlushStats> {
        let Some(layer) = &self.store else {
            return Ok(StoreFlushStats::default());
        };
        // Collect solved-here entries not yet on disk.  Holding only one
        // stripe lock at a time; the `persisted` set is the cross-flush
        // dedup, so two concurrent flushes may at worst both write a key —
        // harmless under last-writer-wins (the records are identical).
        let mut fresh: Vec<crate::store::StoreEntry> = Vec::new();
        {
            // lint:allow(unwrap-expect): a poisoned stripe means a solver panicked; propagating keeps fail-stop semantics
            let persisted = layer.persisted.lock().expect("store state poisoned");
            for shard in &self.shards {
                // lint:allow(unwrap-expect): a poisoned stripe means a solver panicked; propagating keeps fail-stop semantics
                let map = shard.lock().expect("cache poisoned");
                for (key, cell) in map.iter() {
                    if let Some((scope, solution)) = cell.get() {
                        if *scope != STORE_SCOPE
                            && *scope != TRANSIENT_SCOPE
                            && !persisted.contains(key)
                        {
                            fresh.push((key.clone(), solution.clone()));
                        }
                    }
                }
            }
        }
        // Collect analyzed-here reports not yet on disk (empty for a
        // solve-only cache).
        let fresh_reports: Vec<(u64, Arc<StoredReport>)> = if layer.reports_enabled {
            let persisted = layer
                .persisted_reports
                .lock()
                // lint:allow(unwrap-expect): a poisoned stripe means a solver panicked; propagating keeps fail-stop semantics
                .expect("report state poisoned");
            layer
                .reports
                .lock()
                // lint:allow(unwrap-expect): a poisoned stripe means a solver panicked; propagating keeps fail-stop semantics
                .expect("report state poisoned")
                .iter()
                .filter(|(key, _)| !persisted.contains(key))
                .map(|(key, report)| (*key, Arc::clone(report)))
                .collect()
        } else {
            Vec::new()
        };
        // Nothing new in either family: write no segment file at all, so a
        // drop after an explicit flush cannot litter shared store
        // directories with empty segments.
        if fresh.is_empty() && fresh_reports.is_empty() {
            return Ok(StoreFlushStats::default());
        }
        let (appended, segment) = if fresh.is_empty() {
            (0, None)
        } else {
            let refs: Vec<(&CanonicalKey, &Result<CanonicalSolution, AnalysisError>)> = fresh
                .iter()
                .map(|(key, solution)| (key, solution))
                .collect();
            let segment = layer.store.append(&refs)?;
            drop(refs);
            let appended = fresh.len();
            // lint:allow(unwrap-expect): a poisoned stripe means a solver panicked; propagating keeps fail-stop semantics
            let mut persisted = layer.persisted.lock().expect("store state poisoned");
            for (key, _) in fresh {
                persisted.insert(key);
            }
            (appended, Some(segment))
        };
        let reports_appended = if fresh_reports.is_empty() {
            0
        } else {
            let refs: Vec<(u64, &StoredReport)> = fresh_reports
                .iter()
                .map(|(key, report)| (*key, report.as_ref()))
                .collect();
            layer.store.append_reports(&refs)?;
            let mut persisted = layer
                .persisted_reports
                .lock()
                // lint:allow(unwrap-expect): a poisoned stripe means a solver panicked; propagating keeps fail-stop semantics
                .expect("report state poisoned");
            for (key, _) in &fresh_reports {
                persisted.insert(*key);
            }
            fresh_reports.len()
        };
        Ok(StoreFlushStats {
            appended,
            segment,
            reports_appended,
        })
    }

    /// The number of lock stripes.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Open a new session (one per program analysis).  Sessions are how a
    /// shared cache distinguishes cross-program hits from intra-program hits:
    /// a hit on an entry first inserted by a different session counts as
    /// cross-program.
    pub fn session(&self) -> CacheSession<'_> {
        self.session_governed(None)
    }

    /// [`SolveCache::session`] under an optional [`Deadline`]: every solve of
    /// the session polls the deadline inside its KKT loops and returns
    /// [`AnalysisError::Cancelled`] when it expires mid-solve.  A cancelled
    /// solve is never cached and never persisted — the entry is unmapped so
    /// later requesters (with fresh budgets) retry it cleanly.
    pub fn session_governed(&self, deadline: Option<Deadline>) -> CacheSession<'_> {
        CacheSession {
            cache: self,
            scope: self.scopes.fetch_add(1, Ordering::Relaxed) + 1,
            local: CacheCounters::default(),
            deadline,
        }
    }

    /// Solve `model`, answering structurally identical models from the cache
    /// (scope-less convenience for single-program use; see
    /// [`SolveCache::session`] for batch use).
    pub fn solve(&self, model: &AccessModel) -> Result<IntensityResult, AnalysisError> {
        self.solve_scoped(model, 0, None, None)
    }

    /// Snapshot the cache-wide counters (every session's traffic combined).
    pub fn stats(&self) -> CacheStats {
        self.counters.snapshot()
    }

    fn shard_of(&self, key: &CanonicalKey) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    fn bump(
        &self,
        local: Option<&CacheCounters>,
        f: impl Fn(&CacheCounters) -> &AtomicU64,
        n: u64,
    ) {
        f(&self.counters).fetch_add(n, Ordering::Relaxed);
        if let Some(local) = local {
            f(local).fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Solve `model` for the given session scope.
    ///
    /// Failures are cached too (a model isomorphic to one that failed will
    /// fail identically).  A miss solves the *canonical model* of the key —
    /// not the requesting model as given — and every requester instantiates
    /// the stored canonical solution, so the output is a pure function of the
    /// structure (see the module docs).
    fn solve_scoped(
        &self,
        model: &AccessModel,
        scope: u64,
        local: Option<&CacheCounters>,
        deadline: Option<&Deadline>,
    ) -> Result<IntensityResult, AnalysisError> {
        let Some(canon) = canonicalize(model) else {
            self.bump(local, |c| &c.uncacheable, 1);
            // lint:allow(instant-now): solve timing is perf metadata on the report; bound computation never depends on it
            let solve_start = std::time::Instant::now();
            let (solved, info) = solve_model_instrumented_governed(model, deadline);
            self.bump(local, |c| &c.solve_ns, elapsed_ns(solve_start));
            self.bump(local, |c| &c.kkt_cap_hits, u64::from(info.cap_hits));
            return solved;
        };
        let CanonicalModel { key, order, .. } = canon;
        let max_form = key.is_max_form();
        // Whoever wins a cell's initialization race runs the solve; every
        // other requester of the same structure blocks until it lands.  The
        // cell records the *solver's* scope (not the map-entry inserter's),
        // so a hit is classified cross-program exactly when the solve that
        // answers it ran in a different session — even when two sessions
        // first-touch the same structure concurrently.
        //
        // A solve that was cancelled mid-flight (or panicked) initializes its
        // cell with the TRANSIENT_SCOPE marker instead of a result: the entry
        // is immediately unmapped (so later requesters retry against a fresh
        // cell), the initializer propagates the cancellation/panic, and a
        // waiter that observed the marker loops to retry — unless its own
        // deadline is gone too.  Catching the panic *inside* the closure is
        // what keeps one poisoned solve from wedging every later requester
        // of the same structure.
        let (solver_scope, cached) = loop {
            let cell = {
                let mut map = self.shards[self.shard_of(&key)]
                    .lock()
                    // lint:allow(unwrap-expect): a poisoned stripe means a solver panicked; propagating keeps fail-stop semantics
                    .expect("cache poisoned");
                if let Some(cell) = map.get(&key) {
                    Arc::clone(cell)
                } else {
                    let cell: Arc<SolveCell> = Arc::default();
                    map.insert(key.clone(), Arc::clone(&cell));
                    cell
                }
            };
            let mut solved_here = false;
            let mut cap_hits = 0u32;
            let mut solve_ns = 0u64;
            let mut panicked: Option<String> = None;
            let (solver_scope, cached) = cell.get_or_init(|| {
                solved_here = true;
                // lint:allow(instant-now): solve timing is perf metadata on the report; bound computation never depends on it
                let solve_start = std::time::Instant::now();
                let canonical_model = canonical_access_model(&key);
                let (compiled_objective, compiled_dominator) = canonical_compiled_forms(&key);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    solve_model_precompiled_governed(
                        &canonical_model,
                        compiled_objective,
                        compiled_dominator,
                        deadline,
                    )
                }));
                solve_ns = elapsed_ns(solve_start);
                match outcome {
                    Ok((solved, info)) => {
                        cap_hits = info.cap_hits;
                        let cell_scope = if matches!(&solved, Err(AnalysisError::Cancelled(_))) {
                            TRANSIENT_SCOPE
                        } else {
                            scope
                        };
                        // The canonical model's variables are already in
                        // canonical positions, so the storage order is the
                        // identity.
                        let identity: Vec<usize> = (0..key.n_vars).collect();
                        (cell_scope, to_canonical(&solved, &identity))
                    }
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        panicked = Some(msg.clone());
                        (
                            TRANSIENT_SCOPE,
                            Err(AnalysisError::Cancelled(format!("solver panicked: {msg}"))),
                        )
                    }
                }
            });
            self.bump(local, |c| &c.solve_ns, solve_ns);
            self.bump(local, |c| &c.kkt_cap_hits, u64::from(cap_hits));
            if *solver_scope != TRANSIENT_SCOPE {
                if solved_here {
                    self.bump(local, |c| &c.misses, 1);
                    if max_form {
                        self.bump(local, |c| &c.max_misses, 1);
                    }
                } else {
                    self.bump(local, |c| &c.hits, 1);
                    if max_form {
                        self.bump(local, |c| &c.max_hits, 1);
                    }
                    if *solver_scope == STORE_SCOPE {
                        self.bump(local, |c| &c.store_hits, 1);
                    } else if *solver_scope != scope {
                        self.bump(local, |c| &c.cross_program_hits, 1);
                    }
                }
                break (*solver_scope, cached.clone());
            }
            // Transient outcome: unmap the cell (only if it is still the
            // mapped one — a concurrent requester may have raced ahead).
            {
                let mut map = self.shards[self.shard_of(&key)]
                    .lock()
                    // lint:allow(unwrap-expect): a poisoned stripe means a solver panicked; propagating keeps fail-stop semantics
                    .expect("cache poisoned");
                if map.get(&key).is_some_and(|cur| Arc::ptr_eq(cur, &cell)) {
                    map.remove(&key);
                }
            }
            if let Some(msg) = panicked {
                // Re-raise the original panic so the per-subgraph isolation
                // in `analysis` accounts it exactly like an uncached panic.
                std::panic::resume_unwind(Box::new(msg));
            }
            if solved_here || deadline.is_some_and(|d| d.expired()) {
                // Our own budget is gone (we were the cancelled initializer,
                // or a waiter whose deadline expired while waiting).
                return instantiate(cached.clone(), model, &order);
            }
            // A waiter with budget left: retry against a fresh cell.
        };
        let _ = solver_scope;
        instantiate(cached, model, &order)
    }
}

/// Elapsed nanoseconds since `start`, saturated into a `u64` counter bump.
pub(crate) fn elapsed_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Reconstruct the canonical [`AccessModel`] of a key: canonical variable
/// names (`D_c000`, `D_c001`, … — zero-padded so lexicographic order matches
/// canonical position order) and expressions rebuilt from the canonically
/// sorted matrices.  A pure function of the key, so the solve it feeds is
/// identical no matter which isomorphic model triggered the miss.
fn canonical_access_model(key: &CanonicalKey) -> AccessModel {
    let vars: Vec<String> = (0..key.n_vars).map(|i| format!("D_c{i:03}")).collect();
    let rows_to_expr = |rows: &[CanonicalRow]| -> Expr {
        Expr::sum(
            rows.iter()
                .map(|(exps, coeff)| monomial(exps, *coeff, &vars)),
        )
    };
    let dominator = match &key.dominator {
        CanonicalDominator::Pure(rows) => rows_to_expr(rows),
        CanonicalDominator::Max { terms, atoms } => {
            let atom_exprs: Vec<Expr> = atoms
                .iter()
                .map(|atom| {
                    let mut branches = atom.branches.iter().map(|b| rows_to_expr(b));
                    // lint:allow(unwrap-expect): canonical atoms always carry at least one branch
                    let first = branches.next().expect("atom has at least one branch");
                    branches.fold(
                        first,
                        |acc, b| {
                            if atom.is_min {
                                acc.min(b)
                            } else {
                                acc.max(b)
                            }
                        },
                    )
                })
                .collect();
            Expr::sum(terms.iter().map(|(exps, coeff, atom_ids)| {
                let mut term = monomial(exps, *coeff, &vars);
                for &j in atom_ids {
                    term = term.mul(atom_exprs[j as usize].clone());
                }
                term
            }))
        }
    };
    let objective = rows_to_expr(&key.objective);
    AccessModel {
        name: "canonical".to_string(),
        tile_variables: vars,
        objective,
        dominator,
        access_index_sets: vec![],
    }
}

/// The compiled forms of a key's canonical model, assembled directly from
/// the canonical matrices (`CompiledPosynomial::from_rows` /
/// `MaxPosynomial::from_parts`) — no `Expr` expansion or re-compilation on
/// the miss path, and the term order fed to the solver is exactly the key's
/// canonical row order.
fn canonical_compiled_forms(key: &CanonicalKey) -> (CompiledPosynomial, CompiledConstraint) {
    let objective = CompiledPosynomial::from_rows(key.n_vars, &key.objective);
    let dominator = match &key.dominator {
        CanonicalDominator::Pure(rows) => {
            CompiledConstraint::Pure(CompiledPosynomial::from_rows(key.n_vars, rows))
        }
        CanonicalDominator::Max { terms, atoms } => {
            let atoms = atoms
                .iter()
                .map(|atom| {
                    let branches = atom
                        .branches
                        .iter()
                        .map(|b| CompiledPosynomial::from_rows(key.n_vars, b))
                        .collect();
                    (atom.is_min, branches)
                })
                .collect();
            CompiledConstraint::Mixed(MaxPosynomial::from_parts(key.n_vars, terms, atoms))
        }
    };
    (objective, dominator)
}

/// `coeff · Π vars[t]^exps[t]` as an [`Expr`] (one simplification pass, not
/// one per factor — the reconstruction runs once per cache miss but bert-size
/// models have thousands of factors).
fn monomial(exps: &[i16], coeff: Rational, vars: &[String]) -> Expr {
    Expr::product(
        std::iter::once(Expr::num(coeff)).chain(
            vars.iter()
                .zip(exps)
                .filter(|&(_, &e)| e != 0)
                .map(|(v, &e)| Expr::sym(v).pow(Rational::int(i128::from(e)))),
        ),
    )
}

/// Canonicalize one solve outcome for storage: tile data re-indexed by
/// canonical position so any isomorphic model can re-instantiate it.
fn to_canonical(
    solved: &Result<IntensityResult, AnalysisError>,
    order: &[usize],
) -> Result<CanonicalSolution, AnalysisError> {
    let res = solved.as_ref().map_err(Clone::clone)?;
    let mut tile_exponents = vec![Rational::ZERO; order.len()];
    let mut tile_coeffs = vec![0.0; order.len()];
    for (p, &t) in order.iter().enumerate() {
        tile_exponents[p] = res.tile_exponents[t].1;
        tile_coeffs[p] = res.tile_coeffs[t].1;
    }
    Ok(CanonicalSolution {
        sigma: res.sigma,
        chi_coeff: res.chi_coeff,
        rho: res.rho.clone(),
        x0: res.x0.clone(),
        tile_exponents,
        tile_coeffs,
    })
}

/// Re-express a cached canonical solution under `model`'s variable names.
///
/// Cached *failures* are re-labelled with the requesting model's name (the
/// stored message names whichever isomorphic model was solved first).
fn instantiate(
    cached: Result<CanonicalSolution, AnalysisError>,
    model: &AccessModel,
    order: &[usize],
) -> Result<IntensityResult, AnalysisError> {
    let sol = cached.map_err(|e| relabel_error(e, &model.name))?;
    let n = order.len();
    let mut tile_exponents: Vec<(String, Rational)> = vec![(String::new(), Rational::ZERO); n];
    let mut tile_coeffs: Vec<(String, f64)> = vec![(String::new(), 0.0); n];
    for (p, &t) in order.iter().enumerate() {
        tile_exponents[t] = (model.tile_variables[t].clone(), sol.tile_exponents[p]);
        tile_coeffs[t] = (model.tile_variables[t].clone(), sol.tile_coeffs[p]);
    }
    Ok(IntensityResult {
        name: model.name.clone(),
        sigma: sol.sigma,
        chi_coeff: sol.chi_coeff,
        rho: sol.rho,
        x0: sol.x0,
        tile_exponents,
        tile_coeffs,
    })
}

/// Rewrite a cached failure so it names the model that asked, noting that
/// the underlying solve ran on a structurally identical model.
fn relabel_error(e: AnalysisError, name: &str) -> AnalysisError {
    match e {
        AnalysisError::InvalidStatement(msg) => AnalysisError::InvalidStatement(format!(
            "model {name} (via structurally identical cached model): {msg}"
        )),
        AnalysisError::NoInputs(_) => AnalysisError::NoInputs(name.to_string()),
        AnalysisError::NumericalFailure(msg) => AnalysisError::NumericalFailure(format!(
            "model {name} (via structurally identical cached model): {msg}"
        )),
        AnalysisError::Internal(msg) => AnalysisError::Internal(format!(
            "model {name} (via structurally identical cached model): {msg}"
        )),
        AnalysisError::Cancelled(msg) => AnalysisError::Cancelled(format!("model {name}: {msg}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_core::access_size::tile_var;
    use soap_core::solve_model;

    fn dv(v: &str) -> Expr {
        Expr::sym(tile_var(v))
    }

    fn mmm_model(name: &str, v: [&str; 3]) -> AccessModel {
        AccessModel {
            name: name.into(),
            tile_variables: v.iter().map(|x| tile_var(x)).collect(),
            objective: dv(v[0]).mul(dv(v[1])).mul(dv(v[2])),
            dominator: dv(v[0])
                .mul(dv(v[2]))
                .add(dv(v[2]).mul(dv(v[1])))
                .add(dv(v[0]).mul(dv(v[1]))),
            access_index_sets: vec![],
        }
    }

    #[test]
    fn renamed_models_share_a_key() {
        let a = canonicalize(&mmm_model("a", ["i", "j", "k"])).unwrap();
        let b = canonicalize(&mmm_model("b", ["p", "q", "r"])).unwrap();
        assert_eq!(a.key, b.key);
        // Reordered variables too: the canonical order undoes the shuffle.
        let c = canonicalize(&mmm_model("c", ["k", "i", "j"])).unwrap();
        assert_eq!(a.key, c.key);
    }

    #[test]
    fn different_structures_get_different_keys() {
        let mmm = canonicalize(&mmm_model("mmm", ["i", "j", "k"])).unwrap();
        // A stencil-like model over three variables: same variable count,
        // different matrices.
        let stencil = AccessModel {
            name: "stencil".into(),
            tile_variables: vec![tile_var("i"), tile_var("j"), tile_var("k")],
            objective: dv("i").mul(dv("j")).mul(dv("k")),
            dominator: dv("i").add(dv("j")).add(dv("k")),
            access_index_sets: vec![],
        };
        let stencil = canonicalize(&stencil).unwrap();
        assert_ne!(mmm.key, stencil.key);
        // Same matrices but a different coefficient also differs.
        let mut scaled = mmm_model("scaled", ["i", "j", "k"]);
        scaled.objective = Expr::int(2).mul(scaled.objective);
        let scaled = canonicalize(&scaled).unwrap();
        assert_ne!(mmm.key, scaled.key);
    }

    #[test]
    fn asymmetric_variables_order_canonically() {
        // χ = Di²·Dj, g = Di + Dj: Di and Dj have different profiles, so the
        // canonical order must map a renamed copy onto the same key.
        let make = |v: [&str; 2]| AccessModel {
            name: "asym".into(),
            tile_variables: v.iter().map(|x| tile_var(x)).collect(),
            objective: dv(v[0]).pow(Rational::int(2)).mul(dv(v[1])),
            dominator: dv(v[0]).add(dv(v[1])),
            access_index_sets: vec![],
        };
        let a = canonicalize(&make(["x", "y"])).unwrap();
        let b = canonicalize(&make(["u", "t"])).unwrap();
        let c = canonicalize(&make(["t", "u"])).unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.key, c.key);
    }

    /// A §5.3-style union model: χ = Πv, g = max-union of two Lemma-3 sizes
    /// plus a plain term, parameterized by variable names.
    fn union_model(name: &str, v: [&str; 3]) -> AccessModel {
        AccessModel {
            name: name.into(),
            tile_variables: v.iter().map(|x| tile_var(x)).collect(),
            objective: dv(v[0]).mul(dv(v[1])).mul(dv(v[2])),
            dominator: dv(v[0])
                .mul(dv(v[1]))
                .max(dv(v[0]).mul(dv(v[2])))
                .add(dv(v[1]).mul(dv(v[2]))),
            access_index_sets: vec![],
        }
    }

    #[test]
    fn renamed_max_models_share_a_key() {
        let a = canonicalize(&union_model("a", ["i", "j", "k"])).unwrap();
        assert!(a.key.is_max_form());
        let b = canonicalize(&union_model("b", ["p", "q", "r"])).unwrap();
        assert_eq!(a.key, b.key);
        // Reordered variables: the canonical order undoes the shuffle.  Note
        // the reordering also flips the branch order inside the max (Expr
        // simplification sorts operands by name), so this exercises the
        // unordered branch multiset too.
        let c = canonicalize(&union_model("c", ["k", "i", "j"])).unwrap();
        assert_eq!(a.key, c.key);
    }

    #[test]
    fn max_models_differing_in_one_branch_do_not_collide() {
        let base = canonicalize(&union_model("base", ["i", "j", "k"])).unwrap();
        // Same shape except one max branch has a squared exponent.
        let mut bumped = union_model("bumped", ["i", "j", "k"]);
        bumped.dominator = dv("i")
            .mul(dv("j"))
            .max(dv("i").pow(Rational::int(2)).mul(dv("k")))
            .add(dv("j").mul(dv("k")));
        let bumped = canonicalize(&bumped).unwrap();
        assert_ne!(base.key, bumped.key);
        // A different coefficient inside a branch also differs.
        let mut scaled = union_model("scaled", ["i", "j", "k"]);
        scaled.dominator = dv("i")
            .mul(dv("j"))
            .max(Expr::int(2).mul(dv("i")).mul(dv("k")))
            .add(dv("j").mul(dv("k")));
        let scaled = canonicalize(&scaled).unwrap();
        assert_ne!(base.key, scaled.key);
        // And so does moving the max to a different monomial association:
        // max(...)·j vs max(...) + j·k keeps different term↔atom incidence.
        let mut assoc = union_model("assoc", ["i", "j", "k"]);
        assoc.dominator = dv("i")
            .mul(dv("j"))
            .max(dv("i").mul(dv("k")))
            .mul(dv("j"))
            .add(dv("j").mul(dv("k")));
        let assoc = canonicalize(&assoc).unwrap();
        assert_ne!(base.key, assoc.key);
        // Pure and max-form models can never collide.
        let pure = canonicalize(&mmm_model("pure", ["i", "j", "k"])).unwrap();
        assert!(!pure.key.is_max_form());
        assert_ne!(pure.key, base.key);
    }

    #[test]
    fn max_cache_hits_reproduce_the_direct_solution() {
        let cache = SolveCache::new();
        let first = cache.solve(&union_model("first", ["i", "j", "k"])).unwrap();
        let renamed = union_model("renamed", ["c", "a", "b"]);
        let hit = cache.solve(&renamed).unwrap();
        let direct = solve_model(&renamed).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.max_hits, 1);
        assert_eq!(stats.max_misses, 1);
        assert_eq!(stats.uncacheable, 0);
        assert_eq!(hit.name, "renamed");
        assert_eq!(hit.sigma, direct.sigma);
        assert_eq!(hit.sigma, first.sigma);
        assert_eq!(format!("{}", hit.rho), format!("{}", direct.rho));
        for ((_, e_hit), (_, e_direct)) in hit.tile_exponents.iter().zip(&direct.tile_exponents) {
            assert_eq!(e_hit, e_direct);
        }
    }

    #[test]
    fn index_set_models_are_uncacheable() {
        // Models carrying exact-LP index sets depend on data outside the
        // matrices; the cache solves them directly and counts them.
        let mut model = mmm_model("lp", ["i", "j", "k"]);
        model.access_index_sets = vec![vec![0, 2], vec![2, 1], vec![0, 1]];
        assert!(canonicalize(&model).is_none());
        let cache = SolveCache::new();
        let _ = cache.solve(&model);
        assert_eq!(cache.stats().uncacheable, 1);
    }

    #[test]
    fn cached_failures_are_relabelled_for_the_requesting_model() {
        let failing = |name: &str, var: &str| AccessModel {
            name: name.into(),
            tile_variables: vec![tile_var(var)],
            objective: dv(var),
            dominator: Expr::zero(),
            access_index_sets: vec![],
        };
        let cache = SolveCache::new();
        let first = cache.solve(&failing("first", "i"));
        let second = cache.solve(&failing("second", "q"));
        assert!(matches!(first, Err(AnalysisError::NoInputs(ref n)) if n == "first"));
        assert!(matches!(second, Err(AnalysisError::NoInputs(ref n)) if n == "second"));
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn shard_override_parses_and_clamps() {
        assert_eq!(parse_cache_shards("1"), Some(1));
        assert_eq!(parse_cache_shards(" 8 "), Some(8));
        // Non-powers of two clamp up to the next power of two.
        assert_eq!(parse_cache_shards("3"), Some(4));
        assert_eq!(parse_cache_shards("12"), Some(16));
        // Absurd values cap at MAX_CACHE_SHARDS — including ones whose
        // next_power_of_two would overflow usize.
        assert_eq!(parse_cache_shards("1000000"), Some(MAX_CACHE_SHARDS));
        assert_eq!(
            parse_cache_shards("18446744073709551615"),
            Some(MAX_CACHE_SHARDS)
        );
        // Invalid values are rejected, not guessed at.
        assert_eq!(parse_cache_shards("0"), None);
        assert_eq!(parse_cache_shards("-4"), None);
        assert_eq!(parse_cache_shards("sixteen"), None);
        assert_eq!(parse_cache_shards(""), None);
    }

    #[test]
    fn store_backed_cache_round_trips_and_counts_store_hits() {
        let dir = std::env::temp_dir().join(format!("soap-cache-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let model = mmm_model("first", ["i", "j", "k"]);
        let cold_result = {
            let cold = SolveCache::with_store(&dir).expect("store opens");
            assert_eq!(cold.store_load_stats().unwrap().entries, 0);
            let result = cold.solve(&model).unwrap();
            let flush = cold.flush_store().expect("flush succeeds");
            assert_eq!(flush.appended, 1);
            // A second flush has nothing new.
            assert_eq!(cold.flush_store().unwrap().appended, 0);
            result
        };
        // Fresh "process": hydrate from disk, solve a renamed twin.
        let warm = SolveCache::with_store(&dir).expect("store reopens");
        assert_eq!(warm.store_load_stats().unwrap().entries, 1);
        let renamed = mmm_model("renamed", ["p", "q", "r"]);
        let hit = warm.solve(&renamed).unwrap();
        let stats = warm.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.store_hits, 1);
        assert_eq!(stats.cross_program_hits, 0);
        assert_eq!(hit.sigma, cold_result.sigma);
        assert_eq!(hit.chi_coeff.to_bits(), cold_result.chi_coeff.to_bits());
        assert_eq!(format!("{}", hit.rho), format!("{}", cold_result.rho));
        for ((_, c_cold), (_, c_hit)) in cold_result.tile_coeffs.iter().zip(&hit.tile_coeffs) {
            assert_eq!(c_cold.to_bits(), c_hit.to_bits());
        }
        // Dropping the warm cache (which solved nothing) adds no segment.
        let segments_before = warm.store_dir().map(|d| d.to_path_buf()).unwrap();
        drop(warm);
        let store = SolveStore::open(segments_before).unwrap();
        assert_eq!(store.segment_files().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_failures_persist_too() {
        let dir = std::env::temp_dir().join(format!("soap-cache-fail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let failing = AccessModel {
            name: "failing".into(),
            tile_variables: vec![tile_var("i")],
            objective: dv("i"),
            dominator: Expr::zero(),
            access_index_sets: vec![],
        };
        {
            let cold = SolveCache::with_store(&dir).unwrap();
            assert!(cold.solve(&failing).is_err());
            assert_eq!(cold.flush_store().unwrap().appended, 1);
        }
        let warm = SolveCache::with_store(&dir).unwrap();
        let mut renamed = failing.clone();
        renamed.name = "renamed".into();
        renamed.tile_variables = vec![tile_var("q")];
        renamed.objective = dv("q");
        let err = warm.solve(&renamed);
        assert!(matches!(err, Err(AnalysisError::NoInputs(ref n)) if n == "renamed"));
        let stats = warm.stats();
        assert_eq!((stats.misses, stats.store_hits), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_solves_are_never_cached() {
        let cache = SolveCache::new();
        let expired = Deadline::never();
        expired.cancel();
        // The governed session's solve is cancelled at the cache's init
        // commit point...
        let session = cache.session_governed(Some(expired));
        let err = session.solve(&mmm_model("governed", ["i", "j", "k"]));
        assert!(
            matches!(err, Err(AnalysisError::Cancelled(_))),
            "expected Cancelled, got {err:?}"
        );
        drop(session);
        // ...and leaves no trace: an ungoverned solve of the same structure
        // must run as a plain first-touch miss and succeed.
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0), "{stats:?}");
        let solved = cache.solve(&mmm_model("retry", ["p", "q", "r"]));
        assert!(solved.is_ok());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1), "{stats:?}");
    }

    #[test]
    fn cancelled_solves_are_never_flushed_to_the_store() {
        let dir = std::env::temp_dir().join(format!("soap-cache-cancel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = SolveCache::with_store(&dir).unwrap();
            let expired = Deadline::never();
            expired.cancel();
            let session = cache.session_governed(Some(expired));
            assert!(matches!(
                session.solve(&mmm_model("cancelled", ["i", "j", "k"])),
                Err(AnalysisError::Cancelled(_))
            ));
            drop(session);
            assert_eq!(cache.flush_store().unwrap().appended, 0);
        }
        let store = SolveStore::open(&dir).unwrap();
        assert!(store.segment_files().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn governed_session_with_a_live_deadline_matches_ungoverned_output() {
        let governed_cache = SolveCache::new();
        let session = governed_cache.session_governed(Some(Deadline::never()));
        let governed = session.solve(&mmm_model("m", ["i", "j", "k"])).unwrap();
        drop(session);
        let direct = solve_model(&mmm_model("m", ["i", "j", "k"])).unwrap();
        assert_eq!(governed.sigma, direct.sigma);
        assert_eq!(governed.chi_coeff.to_bits(), direct.chi_coeff.to_bits());
        assert_eq!(format!("{}", governed.rho), format!("{}", direct.rho));
        assert_eq!(governed_cache.stats().misses, 1);
    }

    #[test]
    fn cache_hits_reproduce_the_direct_solution() {
        let cache = SolveCache::new();
        let first = cache.solve(&mmm_model("first", ["i", "j", "k"])).unwrap();
        let renamed = mmm_model("renamed", ["c", "a", "b"]);
        let hit = cache.solve(&renamed).unwrap();
        let direct = solve_model(&renamed).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(hit.name, "renamed");
        assert_eq!(hit.sigma, direct.sigma);
        assert_eq!(format!("{}", hit.rho), format!("{}", direct.rho));
        assert_eq!(first.sigma, hit.sigma);
        // Tile entries carry the renamed model's variable names, in order.
        let names: Vec<&str> = hit.tile_exponents.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["D_c", "D_a", "D_b"]);
        for ((_, e_hit), (_, e_direct)) in hit.tile_exponents.iter().zip(&direct.tile_exponents) {
            assert_eq!(e_hit, e_direct);
        }
    }
}
