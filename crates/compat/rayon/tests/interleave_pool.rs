//! Model-checked invariants of the worker-budget pool and the
//! smallest-index panic discipline (see `src/lib.rs`: `reserve_extra`,
//! `release_extra`, `run_self_scheduled`).
//!
//! Each invariant comes in two flavours: the faithful port of the production
//! protocol, which must pass every explored schedule, and a deliberately
//! broken **mutation twin** that reintroduces the bug class the protocol
//! guards against — the checker must find a failing schedule for it, or the
//! pass on the correct variant would be vacuous.

use interleave::atomic::AtomicUsize;
use interleave::{thread, Model};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The production pool protocol, ported shim-for-shim from
/// `rayon::{reserve_extra, release_extra, set_worker_budget}`.
struct PoolModel {
    budget: AtomicUsize,
    idle_extra: AtomicUsize,
}

impl PoolModel {
    fn new(budget: usize) -> PoolModel {
        PoolModel {
            budget: AtomicUsize::new(budget),
            idle_extra: AtomicUsize::new(budget - 1),
        }
    }

    /// Faithful port: one atomic `fetch_update` claims the whole grant.
    fn reserve_extra(&self, want: usize) -> usize {
        if want == 0 {
            return 0;
        }
        let mut granted = 0;
        let _ = self
            .idle_extra
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |avail| {
                granted = avail.min(want);
                Some(avail - granted)
            });
        granted
    }

    /// MUTATION: the pre-PR6 bug class — a load/store pair instead of one
    /// atomic update, so two concurrent reservers can both see the same
    /// `avail` and oversubscribe the pool.
    fn reserve_extra_torn(&self, want: usize) -> usize {
        if want == 0 {
            return 0;
        }
        let avail = self.idle_extra.load(Ordering::Relaxed);
        let granted = avail.min(want);
        self.idle_extra.store(avail - granted, Ordering::Relaxed);
        granted
    }

    /// Faithful port: return clamps to `budget - 1` so a concurrent budget
    /// shrink can never leave more idle workers than the budget allows.
    fn release_extra(&self, n: usize) {
        if n == 0 {
            return;
        }
        let cap = self.budget.load(Ordering::Relaxed).saturating_sub(1);
        let _ = self
            .idle_extra
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |avail| {
                Some((avail + n).min(cap))
            });
    }

    /// MUTATION: release without the budget clamp.
    fn release_extra_unclamped(&self, n: usize) {
        if n == 0 {
            return;
        }
        let _ = self
            .idle_extra
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |avail| {
                Some(avail + n)
            });
    }

    /// Faithful port of `set_worker_budget`.
    fn set_budget(&self, n: usize) {
        self.budget.swap(n, Ordering::Relaxed);
        self.idle_extra.store(n - 1, Ordering::Relaxed);
    }
}

/// Invariant: with budget B, the extras granted to concurrent reservers
/// never total more than B−1 — the pool cannot oversubscribe — and every
/// grant is returned at quiescence.
#[test]
fn reserve_never_oversubscribes() {
    const BUDGET: usize = 3;
    let report = Model::new("rayon-reserve-no-oversubscribe")
        .max_dfs_schedules(200_000)
        .check(|| {
            let pool = Arc::new(PoolModel::new(BUDGET));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let pool = Arc::clone(&pool);
                    thread::spawn(move || pool.reserve_extra(2))
                })
                .collect();
            let grants: Vec<usize> = workers.into_iter().map(|w| w.join()).collect();
            let total: usize = grants.iter().sum();
            assert!(
                total < BUDGET,
                "oversubscribed: {total} extras granted with budget {BUDGET}"
            );
            assert_eq!(
                pool.idle_extra.load(Ordering::SeqCst),
                BUDGET - 1 - total,
                "grants and idle extras must reconcile"
            );
            pool.release_extra(total);
            // Quiescence: everything returned, nothing lost.
            assert_eq!(pool.idle_extra.load(Ordering::SeqCst), BUDGET - 1);
        });
    assert!(
        report.exhaustive,
        "small model must be fully explored: {report:?}"
    );
}

/// Mutation twin: the torn load/store reserve must be caught oversubscribing.
#[test]
fn torn_reserve_is_caught() {
    const BUDGET: usize = 3;
    let failure = Model::new("rayon-reserve-torn-MUTATION").expect_failure(|| {
        let pool = Arc::new(PoolModel::new(BUDGET));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || pool.reserve_extra_torn(2))
            })
            .collect();
        let grants: Vec<usize> = workers.into_iter().map(|w| w.join()).collect();
        let total: usize = grants.iter().sum();
        assert!(
            total < BUDGET,
            "oversubscribed: {total} extras granted with budget {BUDGET}"
        );
    });
    assert!(failure.message.contains("oversubscribed"), "{failure:?}");
}

/// Invariant: a release racing a budget *shrink* is bounded by the largest
/// budget either side observed — `idle_extra <= max(old, new) - 1` at
/// quiescence, whichever side wins the race.
///
/// Note the invariant is deliberately NOT `idle <= new_budget - 1`: the
/// checker found a real (benign, self-healing) race in the production
/// protocol — `release_extra` reads its cap *before* the `fetch_update`, so
/// a shrink landing between the two leaves `idle = old_budget - 1` until the
/// next reserve/release cycle re-clamps it.  The stronger claim fails on
/// schedule `0.0.0.0.0.0.0.1.1.1.0.0.0.0.0`; see docs/CORRECTNESS.md.
#[test]
fn release_clamp_bounded_by_largest_observed_budget() {
    const OLD: usize = 3;
    const NEW: usize = 2;
    let report = Model::new("rayon-release-clamp")
        .max_dfs_schedules(200_000)
        .check(|| {
            let pool = Arc::new(PoolModel::new(OLD));
            let holder = {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    let got = pool.reserve_extra(2);
                    pool.release_extra(got);
                })
            };
            let shrinker = {
                let pool = Arc::clone(&pool);
                thread::spawn(move || pool.set_budget(NEW))
            };
            holder.join();
            shrinker.join();
            let idle = pool.idle_extra.load(Ordering::SeqCst);
            let cap = OLD.max(NEW) - 1;
            assert!(
                idle <= cap,
                "idle extras {idle} exceed every observed budget cap {cap}"
            );
        });
    assert!(report.exhaustive, "{report:?}");
}

/// Mutation twin: the unclamped release must be caught compounding past even
/// the largest observed budget (the shrink hands back `new - 1` idle extras,
/// then the unclamped release adds its full grant on top).
#[test]
fn unclamped_release_is_caught() {
    const OLD: usize = 3;
    const NEW: usize = 2;
    let failure = Model::new("rayon-release-unclamped-MUTATION").expect_failure(|| {
        let pool = Arc::new(PoolModel::new(OLD));
        let holder = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                let got = pool.reserve_extra(2);
                pool.release_extra_unclamped(got);
            })
        };
        let shrinker = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.set_budget(NEW))
        };
        holder.join();
        shrinker.join();
        let idle = pool.idle_extra.load(Ordering::SeqCst);
        let cap = OLD.max(NEW) - 1;
        assert!(
            idle <= cap,
            "idle extras {idle} exceed every observed budget cap {cap}"
        );
    });
    assert!(
        failure.message.contains("exceed every observed"),
        "{failure:?}"
    );
}

/// The panic-discipline model: workers self-schedule items off a shared
/// atomic index, "panics" are recorded as poisoned outcomes, and the
/// collector must surface the **smallest** poisoned index — the payload a
/// sequential run would have hit first — regardless of which worker finished
/// first (ported from `run_self_scheduled`'s slot collection).
fn panic_discipline_model(pick_first_completed: bool) {
    const ITEMS: usize = 2;
    const POISONED: [bool; ITEMS] = [true, true]; // both items panic
    let next = Arc::new(AtomicUsize::new(0));
    // Completion-order sequence number per item — the order is
    // schedule-dependent, which is exactly what the collector must not
    // depend on.
    let order_ctr = Arc::new(AtomicUsize::new(0));
    let order: Arc<Vec<AtomicUsize>> =
        Arc::new((0..ITEMS).map(|_| AtomicUsize::new(usize::MAX)).collect());
    let workers: Vec<_> = (0..ITEMS)
        .map(|_| {
            let next = Arc::clone(&next);
            let order_ctr = Arc::clone(&order_ctr);
            let order = Arc::clone(&order);
            // One self-scheduled claim per worker: which item a worker gets
            // and the completion order are both schedule-dependent.
            thread::spawn(move || {
                let i = next.fetch_add(1, Ordering::SeqCst);
                let seq = order_ctr.fetch_add(1, Ordering::SeqCst);
                order[i].store(seq, Ordering::SeqCst);
            })
        })
        .collect();
    for w in workers {
        w.join();
    }
    let seqs: Vec<usize> = order.iter().map(|s| s.load(Ordering::SeqCst)).collect();
    assert!(
        seqs.iter().all(|&s| s != usize::MAX),
        "every item ran exactly once"
    );
    let surfaced = if pick_first_completed {
        // MUTATION: surface the first panic in completion order (the old
        // pre-PR6 `join().expect(..)` shape): schedule-dependent.
        (0..ITEMS).filter(|&i| POISONED[i]).min_by_key(|&i| seqs[i])
    } else {
        // Faithful port: the smallest poisoned index wins.
        (0..ITEMS).find(|&i| POISONED[i])
    };
    assert_eq!(
        surfaced,
        Some(0),
        "resumed panic must be the smallest poisoned index (sequential-equivalent)"
    );
}

/// Invariant: the surfaced panic index is 1 on every schedule.
#[test]
fn panic_resumes_smallest_index() {
    let report = Model::new("rayon-panic-smallest-index")
        .max_dfs_schedules(200_000)
        .check(|| panic_discipline_model(false));
    assert!(report.exhaustive, "{report:?}");
}

/// Mutation twin: completion-order panic selection must be caught.
#[test]
fn completion_order_panic_is_caught() {
    let failure = Model::new("rayon-panic-completion-order-MUTATION")
        .expect_failure(|| panic_discipline_model(true));
    assert!(
        failure.message.contains("smallest poisoned index"),
        "{failure:?}"
    );
}
