//! Shared right-hand-side / assignment parsing helpers.

use crate::FrontendError;
use soap_ir::parse::parse_affine;
use soap_ir::{AccessComponent, ArrayAccess, LinIndex};

/// An assignment extracted from one source line.
#[derive(Clone, Debug)]
pub struct Assignment {
    /// The written array and its subscripts.
    pub output: (String, Vec<LinIndex>),
    /// The array references on the right-hand side.
    pub reads: Vec<(String, Vec<LinIndex>)>,
    /// True for compound assignments (`+=`, `-=`, `*=`).
    pub is_update: bool,
}

/// Parse `name [subscripts] (=|+=|-=|*=) rhs`.
///
/// `col_base` is the 1-based column of `line`'s first byte in the original
/// source line; error columns are reported relative to it.
pub fn parse_assignment(
    line: &str,
    line_no: usize,
    col_base: usize,
) -> Result<Assignment, FrontendError> {
    let syntax = |column: usize, message: String| FrontendError::Syntax {
        line: line_no,
        column,
        message,
    };
    // Find the assignment operator outside of brackets.
    let ops = ["+=", "-=", "*=", "="];
    let mut depth = 0i32;
    let bytes = line.as_bytes();
    let mut split: Option<(usize, &str)> = None;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'[' | b'(' => depth += 1,
            b']' | b')' => depth -= 1,
            _ if depth == 0 => {
                // Check compound operators first (they contain '=').  Compare
                // bytes, not `line[i..]`: `i` walks bytes, and slicing the str
                // inside a multi-byte character would panic.
                if let Some(op) = ops
                    .iter()
                    .find(|op| bytes[i..].starts_with(op.as_bytes()))
                    .copied()
                {
                    // Skip relational operators such as '<=' '==' '>='.
                    let prev = if i > 0 { bytes[i - 1] } else { b' ' };
                    let next = bytes.get(i + op.len()).copied().unwrap_or(b' ');
                    if op == "=" && (prev == b'<' || prev == b'>' || prev == b'!' || next == b'=') {
                        i += 1;
                        continue;
                    }
                    split = Some((i, op));
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let (pos, op) = split.ok_or_else(|| syntax(col_base, "expected an assignment".to_string()))?;
    let lhs = line[..pos].trim();
    let rhs = &line[pos + op.len()..];
    let output = parse_array_ref(lhs, line_no, col_base)?.ok_or_else(|| {
        syntax(
            col_base,
            format!("left-hand side '{lhs}' is not an array reference"),
        )
    })?;
    let reads = extract_array_refs(rhs, line_no, col_base + pos + op.len())?;
    Ok(Assignment {
        output,
        reads,
        is_update: op != "=",
    })
}

/// Parse a single array reference `A[i, j]` / `A[i][j]`; returns `None` when
/// the text is not an array reference (e.g. a scalar).
fn parse_array_ref(
    text: &str,
    line_no: usize,
    col: usize,
) -> Result<Option<(String, Vec<LinIndex>)>, FrontendError> {
    let text = text.trim();
    let Some(bracket) = text.find('[') else {
        return Ok(None);
    };
    let name = text[..bracket].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Ok(None);
    }
    // Concatenate every [...] group, turning `A[i][j]` into `i, j`.
    let mut indices_text = String::new();
    let mut rest = &text[bracket..];
    while let Some(open) = rest.find('[') {
        // Look for the close *after* the open — a stray ']' earlier in the
        // text (e.g. `A[i]]x[`) would otherwise invert the slice below.
        let close = rest[open..]
            .find(']')
            .map(|c| open + c)
            .ok_or(FrontendError::Syntax {
                line: line_no,
                column: col,
                message: format!("unbalanced brackets in '{text}'"),
            })?;
        if !indices_text.is_empty() {
            indices_text.push(',');
        }
        indices_text.push_str(&rest[open + 1..close]);
        rest = &rest[close + 1..];
    }
    let indices = indices_text
        .split(',')
        .map(|part| parse_affine(part).map(|e| LinIndex::from_affine(&e)))
        .collect::<Result<Vec<_>, _>>()
        .map_err(FrontendError::from)?;
    Ok(Some((name.to_string(), indices)))
}

/// Extract every array reference appearing in an expression.  `col_base` is
/// the 1-based column of `expr`'s first byte in the original source line.
pub fn extract_array_refs(
    expr: &str,
    line_no: usize,
    col_base: usize,
) -> Result<Vec<(String, Vec<LinIndex>)>, FrontendError> {
    let mut out = Vec::new();
    let bytes = expr.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            // Skip whitespace between the identifier and a possible bracket.
            let mut j = i;
            while j < bytes.len() && bytes[j] == b' ' {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'[' {
                // Consume the chained [...] groups.
                let mut end = j;
                let mut depth = 0;
                while end < bytes.len() {
                    match bytes[end] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                // Possible chained group `][`.
                                let mut k = end + 1;
                                while k < bytes.len() && bytes[k] == b' ' {
                                    k += 1;
                                }
                                if !(k < bytes.len() && bytes[k] == b'[') {
                                    end += 1;
                                    break;
                                }
                            }
                        }
                        _ => {}
                    }
                    end += 1;
                }
                let text = &expr[start..end];
                if let Some(r) = parse_array_ref(text, line_no, col_base + start)? {
                    out.push(r);
                }
                i = end;
            }
        } else {
            i += 1;
        }
    }
    Ok(out)
}

/// Build an [`ArrayAccess`] list from raw reads, merging multiple references
/// to the same array into a multi-component access.
pub fn group_reads(reads: Vec<(String, Vec<LinIndex>)>) -> Vec<ArrayAccess> {
    let mut out: Vec<ArrayAccess> = Vec::new();
    for (array, indices) in reads {
        let comp = AccessComponent::new(indices);
        if let Some(acc) = out.iter_mut().find(|a| a.array == array) {
            if !acc.components.contains(&comp) {
                acc.components.push(comp);
            }
        } else {
            out.push(ArrayAccess::new(array, vec![comp]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_assignment() {
        let a = parse_assignment("C[i, j] = A[i] * B[j]", 1, 1).unwrap();
        assert_eq!(a.output.0, "C");
        assert!(!a.is_update);
        assert_eq!(a.reads.len(), 2);
    }

    #[test]
    fn parses_compound_assignment_and_c_style_subscripts() {
        let a = parse_assignment("E[i][j] += C[i][k] * D[k][j]", 3, 1).unwrap();
        assert!(a.is_update);
        assert_eq!(a.output.1.len(), 2);
        assert_eq!(a.reads[0].0, "C");
        assert_eq!(a.reads[0].1.len(), 2);
    }

    #[test]
    fn extracts_offset_references() {
        let a = parse_assignment(
            "A[i, t+1] = (A[i-1, t] + A[i, t] + A[i+1, t]) / 3 + B[i]",
            1,
            1,
        )
        .unwrap();
        assert_eq!(a.reads.len(), 4);
        let grouped = group_reads(a.reads);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].num_components(), 3);
    }

    #[test]
    fn rejects_scalar_left_hand_side() {
        assert!(parse_assignment("alpha = A[i]", 1, 1).is_err());
    }

    #[test]
    fn error_columns_point_at_the_offending_construct() {
        // `A[i` starts at offset 7 of the statement; with the statement
        // itself starting at column 5 of the source line, the unbalanced
        // bracket is reported at column 12.
        let err = parse_assignment("X[i] = A[i", 1, 5).unwrap_err();
        match err {
            FrontendError::Syntax { line, column, .. } => {
                assert_eq!(line, 1);
                assert_eq!(column, 12);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn multi_byte_characters_do_not_panic() {
        // A non-ASCII byte sequence ahead of the operator used to panic the
        // operator scan (`line[i..]` inside a UTF-8 character).
        assert!(parse_assignment("αβγ = A[i]", 1, 1).is_err());
        assert!(parse_assignment("A[i] = βy[j]", 1, 1).is_ok());
    }

    #[test]
    fn stray_close_bracket_before_open_is_an_error_not_a_panic() {
        assert!(parse_assignment("A[i]]x[ = B[i]", 1, 1).is_err());
    }
}
