//! Access-set size expressions (Lemma 3 and Corollary 1).
//!
//! Every expression is written in the *tile variables* `D_<var>`, one per
//! iteration variable of the (possibly merged) statement.  The expressions
//! lower-bound the number of distinct array vertices touched by a rectangular
//! subcomputation whose iteration-variable ranges have the given sizes — they
//! are exactly the `|A_j|` terms of the optimization problem (8).

use soap_ir::{AccessComponent, ArrayAccess};
use soap_symbolic::{Expr, Rational};

/// The canonical tile-variable name for an iteration variable.
pub fn tile_var(var: &str) -> String {
    format!("D_{var}")
}

/// The tile-size expression of one array *dimension*.
///
/// * indexed by a single iteration variable (`A[i-1]`)  → `D_i`;
/// * indexed by a constant (`A[0]`)                     → `1`;
/// * indexed by a linear combination (`Image[r + σ·w]`) → `max(D_r, D_w)` when
///   `assume_injective` is false (the always-valid lower bound of Section 5.3)
///   or `D_r · D_w` when it is true (the large-stride injective case).
pub fn dimension_extent(component: &AccessComponent, dim: usize, assume_injective: bool) -> Expr {
    let idx = &component.indices[dim];
    let vars: Vec<&String> = idx.variables().collect();
    match vars.len() {
        0 => Expr::one(),
        1 => Expr::sym(tile_var(vars[0])),
        _ => {
            let exprs = vars.iter().map(|v| Expr::sym(tile_var(v)));
            if assume_injective {
                Expr::product(exprs)
            } else {
                let mut it = exprs;
                // lint:allow(unwrap-expect): this branch only runs with two or more variables, checked just above
                let first = it.next().expect("at least two variables");
                it.fold(first, |a, b| a.max(b))
            }
        }
    }
}

/// Lemma 3: the access-set size of a simple-overlap access
/// `|A| ≥ 2·∏ E_i − ∏ (E_i − |t̂_i|)`, where `E_i` is the per-dimension tile
/// extent and `t̂_i` the access-offset set.  For single-component accesses this
/// degenerates to `∏ E_i`.
pub fn lemma3_size(access: &ArrayAccess, assume_injective: bool) -> Expr {
    let base = &access.components[0];
    let dims = base.arity();
    let extents: Vec<Expr> = (0..dims)
        .map(|d| dimension_extent(base, d, assume_injective))
        .collect();
    let offsets = access.offset_sets();
    let offset_counts: Vec<i64> = match &offsets {
        Some(sets) => sets.iter().map(|s| s.len() as i64).collect(),
        None => vec![0; dims],
    };
    let product: Expr = Expr::product(extents.iter().cloned());
    if offset_counts.iter().all(|&c| c == 0) {
        return product;
    }
    // 2·∏E − ∏(E − |t̂|), expanded so that the leading products cancel exactly
    // instead of catastrophically in floating point.
    let shrunk = Expr::product(
        extents
            .iter()
            .zip(&offset_counts)
            .map(|(e, &c)| e.clone().sub(Expr::int(c))),
    );
    Expr::int(2).mul(product).sub(shrunk).expand()
}

/// Corollary 1: when the output access and an input access of the *same*
/// array form a simple overlap (in/out stencils like `A[i,t+1] = f(A[i±1,t])`),
/// up to `∏ E_i` of the touched vertices are computed inside the
/// subcomputation, so the external accesses are only
/// `|A| ≥ ∏ E_i − ∏ (E_i − |t̂_i|)`.
///
/// `offsets` must be the access-offset sets of the *union* `φ₀ ∪ φ_j`.
pub fn corollary1_size(combined: &ArrayAccess, assume_injective: bool) -> Expr {
    let base = &combined.components[0];
    let dims = base.arity();
    let extents: Vec<Expr> = (0..dims)
        .map(|d| dimension_extent(base, d, assume_injective))
        .collect();
    let offset_counts: Vec<i64> = match combined.offset_sets() {
        Some(sets) => sets.iter().map(|s| s.len() as i64).collect(),
        None => vec![0; dims],
    };
    let product: Expr = Expr::product(extents.iter().cloned());
    let shrunk = Expr::product(
        extents
            .iter()
            .zip(&offset_counts)
            .map(|(e, &c)| e.clone().sub(Expr::int(c))),
    );
    product.sub(shrunk).expand()
}

/// The contribution of an update (`+=`) output: one prior version must be
/// available per output element and per combination of the *outer* reduction
/// variables — the accumulation chain is only contiguous along the innermost
/// reduction dimension.
///
/// `output_vars` are the iteration variables appearing in the output access;
/// `outer_reduction_vars` are the reduction variables excluding the innermost
/// one (in `C[i,j] += A[i,k]·B[k,j]` this set is empty and the contribution is
/// `D_i·D_j`; for the 7-loop direct convolution it is `{c, r}`, preventing the
/// spurious rank-1 reuse pattern that the accumulation order forbids).
pub fn update_output_size(output_vars: &[String], outer_reduction_vars: &[String]) -> Expr {
    Expr::product(
        output_vars
            .iter()
            .chain(outer_reduction_vars.iter())
            .map(|v| Expr::sym(tile_var(v))),
    )
}

/// The subcomputation-size (objective) term of one statement: the product of
/// the tile extents of all its iteration variables (Lemma 1).
pub fn statement_chi(vars: &[String]) -> Expr {
    Expr::product(vars.iter().map(|v| Expr::sym(tile_var(v))))
}

/// Convenience: an `Expr` with all offsets dropped (leading order only) —
/// useful to extract the per-access iteration-variable index sets for the
/// exact exponent LP.
pub fn leading_index_set(access: &ArrayAccess) -> Vec<String> {
    access.components[0].variables().into_iter().collect()
}

/// Helper producing a `Rational` count of offsets per dimension for reporting.
pub fn offset_counts(access: &ArrayAccess) -> Vec<Rational> {
    match access.offset_sets() {
        Some(sets) => sets
            .iter()
            .map(|s| Rational::int(s.len() as i128))
            .collect(),
        None => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_ir::parse::parse_indices;
    use soap_ir::AccessComponent;
    use std::collections::BTreeMap;

    fn acc(array: &str, comps: &[&str]) -> ArrayAccess {
        ArrayAccess::new(
            array,
            comps
                .iter()
                .map(|c| AccessComponent::new(parse_indices(c).unwrap()))
                .collect(),
        )
    }

    fn eval(e: &Expr, pairs: &[(&str, f64)]) -> f64 {
        let b: BTreeMap<String, f64> = pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        e.eval(&b).unwrap()
    }

    #[test]
    fn single_component_access_is_a_product() {
        let a = acc("A", &["i,k"]);
        let size = lemma3_size(&a, false);
        assert_eq!(eval(&size, &[("D_i", 8.0), ("D_k", 4.0)]), 32.0);
    }

    #[test]
    fn constant_dimension_contributes_one() {
        let a = acc("A", &["i,0"]);
        let size = lemma3_size(&a, false);
        assert_eq!(eval(&size, &[("D_i", 8.0)]), 8.0);
    }

    #[test]
    fn lemma3_matches_brute_force_union_on_a_stencil_read() {
        // A[i-1], A[i], A[i+1] over a contiguous range of size n:
        // the union has n+2 elements; Lemma 3 with |t̂| = 2 gives
        // 2n − (n−2) = n + 2.  (Offsets are taken w.r.t. the first component.)
        let a = acc("A", &["i-1", "i", "i+1"]);
        let size = lemma3_size(&a, false);
        for n in [1.0, 2.0, 10.0, 100.0] {
            assert_eq!(eval(&size, &[("D_i", n)]), n + 2.0);
        }
    }

    #[test]
    fn lemma3_two_dimensional_stencil() {
        // 5-point stencil reads of A[i,j], A[i±1,j], A[i,j±1]:
        // offsets relative to A[i-1,j]... use the canonical component order of
        // the paper's Example 1 to keep |t̂_i| = 2, |t̂_j| = 2.
        let a = acc("A", &["i,j", "i-1,j", "i+1,j", "i,j-1", "i,j+1"]);
        let size = lemma3_size(&a, false);
        // 2·n·m − (n−2)(m−2)
        let v = eval(&size, &[("D_i", 10.0), ("D_j", 6.0)]);
        assert_eq!(v, 2.0 * 60.0 - 8.0 * 4.0);
    }

    #[test]
    fn corollary1_cancels_computed_versions() {
        // MMM with the version dimension: C[i,j,k] overlaps C[i,j,k-1]:
        // contribution = ∏E − ∏(E − t̂) with t̂ = (0,0,1) = D_i·D_j.
        let combined = acc("C", &["i,j,k", "i,j,k-1"]);
        let size = corollary1_size(&combined, false);
        assert_eq!(
            eval(&size, &[("D_i", 7.0), ("D_j", 5.0), ("D_k", 9.0)]),
            35.0
        );
    }

    #[test]
    fn update_output_counts_outer_reduction_chains() {
        // gemm: output vars {i,j}, no outer reduction vars -> D_i·D_j.
        let e = update_output_size(&["i".into(), "j".into()], &[]);
        assert_eq!(eval(&e, &[("D_i", 3.0), ("D_j", 4.0)]), 12.0);
        // conv: output {k,h,w,b}, outer reduction {c,r} -> product of six.
        let e = update_output_size(
            &["k".into(), "h".into(), "w".into(), "b".into()],
            &["c".into(), "r".into()],
        );
        assert_eq!(
            eval(
                &e,
                &[
                    ("D_k", 2.0),
                    ("D_h", 2.0),
                    ("D_w", 2.0),
                    ("D_b", 2.0),
                    ("D_c", 3.0),
                    ("D_r", 5.0)
                ]
            ),
            240.0
        );
    }

    #[test]
    fn non_injective_dimension_uses_max_or_product() {
        let a = acc("Image", &["r+2*w,c"]);
        let conservative = lemma3_size(&a, false);
        let injective = lemma3_size(&a, true);
        let vals = &[("D_r", 3.0), ("D_w", 5.0), ("D_c", 2.0)];
        assert_eq!(eval(&conservative, vals), 10.0); // max(3,5)·2
        assert_eq!(eval(&injective, vals), 30.0); // 3·5·2
    }
}
