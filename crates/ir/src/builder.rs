//! Ergonomic builders for statements and programs.
//!
//! The kernel library defines 38 applications; the builder keeps those
//! definitions close to the pseudocode in the paper:
//!
//! ```
//! use soap_ir::ProgramBuilder;
//!
//! let gemm = ProgramBuilder::new("gemm")
//!     .statement(|st| {
//!         st.loops(&[("i", "0", "NI"), ("j", "0", "NJ"), ("k", "0", "NK")])
//!             .update("C", "i,j")
//!             .read("A", "i,k")
//!             .read("B", "k,j")
//!     })
//!     .build()
//!     .unwrap();
//! assert_eq!(gemm.statements.len(), 1);
//! ```

use crate::access::{AccessComponent, ArrayAccess};
use crate::domain::{IterationDomain, LoopVar};
use crate::parse::{parse_affine, parse_indices};
use crate::program::Program;
use crate::statement::Statement;
use crate::IrError;

/// Builder for a single [`Statement`].
#[derive(Clone, Debug)]
pub struct StatementBuilder {
    name: String,
    loops: Vec<LoopVar>,
    output: Option<ArrayAccess>,
    inputs: Vec<ArrayAccess>,
    is_update: bool,
    error: Option<IrError>,
}

impl StatementBuilder {
    /// Start building a statement with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        StatementBuilder {
            name: name.into(),
            loops: Vec::new(),
            output: None,
            inputs: Vec::new(),
            is_update: false,
            error: None,
        }
    }

    fn record_err(&mut self, e: IrError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Add one loop `for name in [lower, upper)`; bounds are affine strings.
    pub fn loop_var(mut self, name: &str, lower: &str, upper: &str) -> Self {
        match (parse_affine(lower), parse_affine(upper)) {
            (Ok(lo), Ok(hi)) => self.loops.push(LoopVar::new(name, lo, hi)),
            (Err(e), _) | (_, Err(e)) => self.record_err(e),
        }
        self
    }

    /// Add several loops at once: `&[(name, lower, upper)]`, outermost first.
    pub fn loops(mut self, specs: &[(&str, &str, &str)]) -> Self {
        for (name, lo, hi) in specs {
            self = self.loop_var(name, lo, hi);
        }
        self
    }

    /// Set the output access (`=` statement, output not read).
    pub fn write(mut self, array: &str, indices: &str) -> Self {
        match parse_indices(indices) {
            Ok(ix) => self.output = Some(ArrayAccess::single(array, ix)),
            Err(e) => self.record_err(e),
        }
        self
    }

    /// Set the output access of an update (`+=`) statement: the output element
    /// is also read, and the loop variables absent from the subscripts form
    /// the reduction dimensions.
    pub fn update(mut self, array: &str, indices: &str) -> Self {
        self = self.write(array, indices);
        self.is_update = true;
        self
    }

    /// Add an input access with a single component.
    pub fn read(mut self, array: &str, indices: &str) -> Self {
        match parse_indices(indices) {
            Ok(ix) => self.inputs.push(ArrayAccess::single(array, ix)),
            Err(e) => self.record_err(e),
        }
        self
    }

    /// Add an input access with several components (a simple-overlap access
    /// such as the stencil `A[i-1], A[i], A[i+1]`).
    pub fn read_multi(mut self, array: &str, components: &[&str]) -> Self {
        let mut comps = Vec::new();
        for c in components {
            match parse_indices(c) {
                Ok(ix) => comps.push(AccessComponent::new(ix)),
                Err(e) => {
                    self.record_err(e);
                    return self;
                }
            }
        }
        self.inputs.push(ArrayAccess::new(array, comps));
        self
    }

    /// Finish and validate the statement.
    pub fn build(self) -> Result<Statement, IrError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let output = self.output.ok_or_else(|| {
            IrError::Parse(format!("statement {} has no output access", self.name))
        })?;
        let st = Statement {
            name: self.name,
            domain: IterationDomain::new(self.loops),
            output,
            inputs: self.inputs,
            is_update: self.is_update,
        };
        st.validate()?;
        Ok(st)
    }
}

/// Builder for a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    statements: Vec<Result<Statement, IrError>>,
}

impl ProgramBuilder {
    /// Start building a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            statements: Vec::new(),
        }
    }

    /// Add a statement through a builder closure; the statement is named
    /// `St<k>` unless the closure overrides it via a fresh builder.
    pub fn statement(mut self, f: impl FnOnce(StatementBuilder) -> StatementBuilder) -> Self {
        let default_name = format!("St{}", self.statements.len() + 1);
        let builder = StatementBuilder::new(default_name);
        self.statements.push(f(builder).build());
        self
    }

    /// Add an already-built statement.
    pub fn push(mut self, statement: Statement) -> Self {
        self.statements.push(Ok(statement));
        self
    }

    /// Finish and validate the program.
    pub fn build(self) -> Result<Program, IrError> {
        let statements: Result<Vec<Statement>, IrError> = self.statements.into_iter().collect();
        let p = Program::new(self.name, statements?);
        p.validate()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_mmm() {
        let p = ProgramBuilder::new("gemm")
            .statement(|st| {
                st.loops(&[("i", "0", "NI"), ("j", "0", "NJ"), ("k", "0", "NK")])
                    .update("C", "i,j")
                    .read("A", "i,k")
                    .read("B", "k,j")
            })
            .build()
            .unwrap();
        assert_eq!(p.statements.len(), 1);
        let st = &p.statements[0];
        assert!(st.is_update);
        assert_eq!(st.name, "St1");
        assert_eq!(st.domain.depth(), 3);
    }

    #[test]
    fn builder_propagates_parse_errors() {
        let p = ProgramBuilder::new("broken")
            .statement(|st| st.loops(&[("i", "0", "N +")]).write("C", "i"))
            .build();
        assert!(p.is_err());
    }

    #[test]
    fn builder_requires_output() {
        let st = StatementBuilder::new("no_output")
            .loops(&[("i", "0", "N")])
            .read("A", "i")
            .build();
        assert!(st.is_err());
    }

    #[test]
    fn multi_component_reads() {
        let st = StatementBuilder::new("stencil")
            .loops(&[("t", "1", "T"), ("i", "t", "N - t")])
            .write("A", "i,t+1")
            .read_multi("A", &["i-1,t", "i,t", "i+1,t"])
            .read("B", "i")
            .build()
            .unwrap();
        assert_eq!(st.inputs[0].num_components(), 3);
        // Offsets are taken relative to the first component (i-1,t), so the
        // distinct non-zero offsets in dimension 0 are {1, 2}.
        assert_eq!(st.inputs[0].offset_sets().unwrap()[0], vec![1, 2]);
    }
}
