//! Differential tests: the bitset subgraph enumeration must produce exactly
//! the same connected-subset families as the retained naive string-set
//! reference, on every topology class the analysis meets.

use soap_ir::{Program, ProgramBuilder};
use soap_sdg::subgraphs::{enumerate_connected_subgraphs, enumerate_connected_subgraphs_naive};
use soap_sdg::Sdg;

/// Deterministic xorshift64* generator so the "random" SDGs are reproducible.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn assert_same_families(sdg: &Sdg, max_size: usize, context: &str) {
    // A cap large enough that neither implementation truncates.
    let cap = 1_000_000;
    let fast = enumerate_connected_subgraphs(sdg, max_size, cap);
    assert!(!fast.truncated, "{context}: unexpected truncation");
    let naive = enumerate_connected_subgraphs_naive(sdg, max_size, cap);
    let mut fast_sets = fast.subgraphs;
    let mut naive_sets = naive;
    fast_sets.sort();
    naive_sets.sort();
    assert_eq!(
        fast_sets, naive_sets,
        "{context}: bitset enumeration diverged from the naive reference"
    );
}

fn chain(k: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("chain{k}"));
    for s in 0..k {
        let src = if s == 0 {
            "A0".to_string()
        } else {
            format!("T{s}")
        };
        let dst = format!("T{}", s + 1);
        b = b.statement(move |st| {
            st.loops(&[("i", "0", "N")])
                .write(&dst, "i")
                .read(&src, "i")
        });
    }
    b.build().expect("chain builds")
}

/// `k` consumers of one shared read-only array: a star through the input,
/// which makes every pair of computed arrays adjacent.
fn star(k: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("star{k}"));
    for s in 0..k {
        let dst = format!("D{s}");
        b = b.statement(move |st| st.loops(&[("i", "0", "N")]).write(&dst, "i").read("A", "i"));
    }
    b.build().expect("star builds")
}

/// A random DAG over `k` computed arrays: statement `s` reads a random
/// non-empty subset of earlier computed arrays (or the external input `A`).
fn random_dag(k: usize, edge_bias: u64, seed: u64) -> Program {
    let mut rng = XorShift(seed | 1);
    let mut b = ProgramBuilder::new(format!("rand{k}_{seed}"));
    for s in 0..k {
        let mut sources: Vec<String> = Vec::new();
        for earlier in 0..s {
            if rng.below(100) < edge_bias {
                sources.push(format!("R{earlier}"));
            }
        }
        if sources.is_empty() {
            sources.push(if s == 0 {
                "A".to_string()
            } else {
                format!("R{}", rng.below(s as u64))
            });
        }
        let dst = format!("R{s}");
        b = b.statement(move |st| {
            let mut st = st.loops(&[("i", "0", "N")]).write(&dst, "i");
            for src in &sources {
                st = st.read(src, "i");
            }
            st
        });
    }
    b.build().expect("random DAG builds")
}

#[test]
fn chains_match_naive_reference() {
    for k in [1usize, 2, 5, 12, 35] {
        let sdg = Sdg::from_program(&chain(k));
        assert_same_families(&sdg, 4, &format!("chain({k})"));
    }
}

#[test]
fn stars_match_naive_reference() {
    for k in [2usize, 5, 9] {
        let sdg = Sdg::from_program(&star(k));
        assert_same_families(&sdg, 3, &format!("star({k})"));
    }
}

#[test]
fn dense_random_sdgs_match_naive_reference() {
    for (k, bias, seed) in [
        (6usize, 60u64, 7u64),
        (8, 45, 11),
        (10, 35, 23),
        (12, 70, 5),
    ] {
        let sdg = Sdg::from_program(&random_dag(k, bias, seed));
        assert_same_families(&sdg, 3, &format!("random_dag({k}, {bias}%, seed {seed})"));
    }
}

#[test]
fn sparse_random_sdgs_match_naive_reference_at_larger_sizes() {
    for (k, bias, seed) in [(14usize, 12u64, 3u64), (18, 8, 17)] {
        let sdg = Sdg::from_program(&random_dag(k, bias, seed));
        assert_same_families(&sdg, 5, &format!("random_dag({k}, {bias}%, seed {seed})"));
    }
}

#[test]
fn truncated_enumeration_keeps_the_seed_capped_family() {
    // Under a cap the surviving family is order-dependent; the fast path must
    // keep exactly the family the seed algorithm kept (name-ordered
    // discovery), so capped analyses report the same bound as before.
    let sdg = Sdg::from_program(&star(9));
    let full: std::collections::BTreeSet<Vec<String>> =
        enumerate_connected_subgraphs(&sdg, 3, 1_000_000)
            .subgraphs
            .into_iter()
            .collect();
    let capped = enumerate_connected_subgraphs(&sdg, 3, 20);
    assert!(capped.truncated);
    assert_eq!(capped.subgraphs.len(), 20);
    for set in &capped.subgraphs {
        assert!(
            full.contains(set),
            "capped result {set:?} not in full family"
        );
    }
    let singletons = capped.subgraphs.iter().filter(|s| s.len() == 1).count();
    assert_eq!(singletons, 9, "singletons must never be dropped");
}

#[test]
fn truncated_families_are_identical_to_naive_across_topologies_and_caps() {
    for program in [star(9), random_dag(14, 45, 13), chain(20)] {
        let sdg = Sdg::from_program(&program);
        for cap in [15usize, 20, 40, 60] {
            let fast = enumerate_connected_subgraphs(&sdg, 4, cap);
            let naive = enumerate_connected_subgraphs_naive(&sdg, 4, cap);
            let mut fast_sets = fast.subgraphs;
            let mut naive_sets = naive;
            fast_sets.sort();
            naive_sets.sort();
            assert_eq!(
                fast_sets, naive_sets,
                "{}: capped family diverged from the seed at cap {cap}",
                program.name
            );
        }
    }
}

#[test]
fn dense_adjacency_matches_neighbours() {
    // The dense masks the fast path iterates must agree with the public
    // string-based neighbour relation on every vertex.
    for program in [chain(8), star(6), random_dag(10, 40, 41)] {
        let sdg = Sdg::from_program(&program);
        let adj = sdg.computed_adjacency();
        for (i, array) in sdg.computed.iter().enumerate() {
            let mut from_names: Vec<usize> = sdg
                .neighbours(array)
                .into_iter()
                .filter_map(|n| sdg.computed_index_of(&n))
                .collect();
            from_names.sort_unstable();
            let from_mask: Vec<usize> = adj[i].iter().collect();
            assert_eq!(
                from_mask, from_names,
                "adjacency mismatch for {array} in {}",
                program.name
            );
        }
    }
}
