//! Recognition of numeric constants as low-degree algebraic closed forms.
//!
//! The constants appearing in the paper's Table 2 are all of the form
//! `(p/q) · r^{1/k}` for small rationals and small roots (e.g. `2√3`,
//! `6√6`, `32/(3·∛3)`, `√2·300`).  After the numeric KKT solve and power-law
//! fit we therefore try to express the fitted constant in that shape so the
//! reported bounds print exactly like the paper's; if no clean form is found
//! within tolerance, the numeric value is kept.

use crate::expr::Expr;
use crate::rational::Rational;

/// A recognized closed form `rational · radicand^{1/root}` or a raw float.
#[derive(Clone, Debug, PartialEq)]
pub enum ClosedForm {
    /// An exact value `coefficient * radicand^(1/root)`.
    Exact {
        /// The rational multiplier.
        coefficient: Rational,
        /// The radicand (a rational; equals 1 when the value is rational).
        radicand: Rational,
        /// The root index k (1 for plain rationals, 2 for square roots, …).
        root: u32,
    },
    /// No clean algebraic form was found; the numeric value is kept.
    Numeric(f64),
}

/// Largest numerator a recognized `value^k` rational may have: the values the
/// analysis produces have small powered numerators (e.g. `(32/(3·∛3))³ =
/// 32768/81`); anything larger is a spurious continued-fraction match.
const MAX_POWERED_NUMERATOR: i128 = 1_000_000_000;

impl ClosedForm {
    /// Attempt to recognize `value` as `(p/q)·r^{1/k}` for k ∈ {1,2,3,4,6}.
    ///
    /// The search prefers the smallest root index and the smallest
    /// denominator; relative tolerance is 1e-4 (the numeric optimizer is
    /// accurate to ~1e-6).
    pub fn recognize(value: f64) -> ClosedForm {
        if !value.is_finite() {
            return ClosedForm::Numeric(value);
        }
        if value == 0.0 {
            return ClosedForm::Exact {
                coefficient: Rational::ZERO,
                radicand: Rational::ONE,
                root: 1,
            };
        }
        // Values we care about have small numerators/denominators once raised
        // to the k-th power (e.g. (2√3)² = 12, (32/(3·∛3))³ = 32768/81).  A
        // continued-fraction match exists for *any* float if the denominator
        // is allowed to grow, so candidates are restricted to a small set of
        // denominators and ranked by (tier, error, denominator, root), where
        // tier 0 means an essentially exact match.
        const DENOMS: [i128; 22] = [
            1, 2, 3, 4, 5, 6, 8, 9, 12, 16, 18, 24, 25, 27, 32, 36, 48, 54, 64, 81, 96, 128,
        ];
        // (tier, error, denominator, root, rational)
        let mut best: Option<(u8, f64, i128, u32, Rational)> = None;
        let consider = |cand: (u8, f64, i128, u32, Rational),
                        best: &mut Option<(u8, f64, i128, u32, Rational)>| {
            let better = match best {
                None => true,
                Some(b) => (cand.0, cand.1, cand.2, cand.3) < (b.0, b.1, b.2, b.3),
            };
            if better {
                *best = Some(cand);
            }
        };
        for root in [1u32, 2, 3, 4, 6] {
            let powered = value.abs().powi(root as i32);
            let scale = powered.abs().max(1.0);
            // Tier 0: the input is exact up to float noise.  The denominator
            // bound must stay small: at the larger root indices a continued
            // fraction with a few-thousand denominator lands within
            // `1e-9·scale` of essentially *any* float (the spurious-match
            // probability scales with denom²·tol), which would beat the
            // legitimate tier-1 match at root 1 on tier alone.
            if let Some(r) = Rational::approximate(powered, 128, 1e-9 * scale) {
                // Same sanity cap as tier 1: a "closed form" whose k-th
                // power needs a ten-digit numerator is numerology, and
                // extracting k-th powers from it costs a √n trial-division
                // scan besides.
                if r.is_positive() && r.numer() <= MAX_POWERED_NUMERATOR {
                    consider((0, 0.0, r.denom(), root, r), &mut best);
                    continue;
                }
            }
            // Tier 1: the input carries numeric-optimizer noise; only simple
            // denominators are considered and the k-th power amplifies the
            // relative error of `value` by k.
            let tol = 3e-5 * root as f64 * scale;
            for &q in &DENOMS {
                let p = (powered * q as f64).round();
                if !(1.0..=MAX_POWERED_NUMERATOR as f64).contains(&p) {
                    continue;
                }
                let r = Rational::new(p as i128, q);
                let err = (powered - r.to_f64()).abs();
                if err <= tol {
                    consider((1, err / scale, q, root, r), &mut best);
                }
            }
        }
        if let Some((_, _, _, root, r)) = best {
            let (coeff, radicand) = extract_kth_power(r, root);
            let coefficient = if value < 0.0 { -coeff } else { coeff };
            return ClosedForm::Exact {
                coefficient,
                radicand,
                root,
            };
        }
        ClosedForm::Numeric(value)
    }

    /// Convert the closed form back into an [`Expr`].
    pub fn to_expr(&self) -> Expr {
        match self {
            ClosedForm::Exact {
                coefficient,
                radicand,
                root,
            } => {
                let base = Expr::num(*coefficient);
                if radicand.is_one() || coefficient.is_zero() {
                    base
                } else {
                    base.mul(Expr::num(*radicand).pow(Rational::new(1, *root as i128)))
                }
            }
            ClosedForm::Numeric(v) => {
                // Fall back to a high-precision rational so Expr stays exact-ish.
                match Rational::approximate(*v, 1_000_000, 1e-9) {
                    Some(r) => Expr::num(r),
                    None => Expr::num(
                        Rational::approximate(*v, 1_000_000, 1e-3).unwrap_or(Rational::ZERO),
                    ),
                }
            }
        }
    }

    /// Numeric value of the closed form.
    pub fn value(&self) -> f64 {
        match self {
            ClosedForm::Exact {
                coefficient,
                radicand,
                root,
            } => coefficient.to_f64() * radicand.to_f64().powf(1.0 / *root as f64),
            ClosedForm::Numeric(v) => *v,
        }
    }

    /// True if an exact algebraic form was recognized.
    pub fn is_exact(&self) -> bool {
        matches!(self, ClosedForm::Exact { .. })
    }
}

/// Split `r = c^k · rest` so that `r^{1/k} = c · rest^{1/k}` with `rest`
/// free of k-th powers — this is what turns `√12` into `2√3`.
fn extract_kth_power(r: Rational, k: u32) -> (Rational, Rational) {
    if k == 1 {
        return (r, Rational::ONE);
    }
    let (cn, rn) = extract_int(r.numer(), k);
    let (cd, rd) = extract_int(r.denom(), k);
    (Rational::new(cn, cd), Rational::new(rn, rd))
}

/// Split a positive integer `n = c^k · rest` with `rest` k-th-power-free.
fn extract_int(n: i128, k: u32) -> (i128, i128) {
    let mut c = 1i128;
    let mut rest = n;
    let mut p = 2i128;
    while p.checked_mul(p).map(|pp| pp <= rest).unwrap_or(false) {
        let pk = p.checked_pow(k);
        match pk {
            Some(pk) if pk > 0 => {
                while rest % pk == 0 {
                    rest /= pk;
                    c *= p;
                }
            }
            _ => break,
        }
        p += 1;
    }
    (c, rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_exact(value: f64, coeff: Rational, radicand: Rational, root: u32) {
        match ClosedForm::recognize(value) {
            ClosedForm::Exact {
                coefficient,
                radicand: r,
                root: k,
            } => {
                assert_eq!(coefficient, coeff, "coefficient for {value}");
                assert_eq!(r, radicand, "radicand for {value}");
                assert_eq!(k, root, "root for {value}");
            }
            ClosedForm::Numeric(v) => panic!("expected exact form for {value}, got numeric {v}"),
        }
    }

    #[test]
    fn recognizes_rationals() {
        assert_exact(0.5, Rational::new(1, 2), Rational::ONE, 1);
        assert_exact(12.0, Rational::int(12), Rational::ONE, 1);
        assert_exact(-0.75, Rational::new(-3, 4), Rational::ONE, 1);
    }

    #[test]
    fn recognizes_square_roots() {
        // 1/2 * sqrt(S) constants: 0.5 handled above; 2*sqrt(3):
        assert_exact(2.0 * 3.0_f64.sqrt(), Rational::int(2), Rational::int(3), 2);
        // 6*sqrt(6) (fdtd-2d improvement factor)
        assert_exact(6.0 * 6.0_f64.sqrt(), Rational::int(6), Rational::int(6), 2);
        // sqrt(2)*300 (LeNet-5 constant)
        assert_exact(
            300.0 * 2.0_f64.sqrt(),
            Rational::int(300),
            Rational::int(2),
            2,
        );
        // 1/4 * sqrt(1) is rational and must not be misread as a root.
        assert_exact(0.25, Rational::new(1, 4), Rational::ONE, 1);
    }

    #[test]
    fn recognizes_cube_roots() {
        // 32/(3*3^(1/3)) = (32/9)*3^(2/3)... easier: its cube is 32768/81.
        let v = 32.0 / (3.0 * 3.0_f64.powf(1.0 / 3.0));
        let cf = ClosedForm::recognize(v);
        assert!(cf.is_exact(), "expected exact for {v}: {cf:?}");
        assert!((cf.value() - v).abs() < 1e-6);
    }

    #[test]
    fn falls_back_to_numeric() {
        let cf = ClosedForm::recognize(std::f64::consts::PI);
        // π is not representable with our small radicands; either numeric or a
        // very close rational is acceptable but the value must be preserved.
        assert!((cf.value() - std::f64::consts::PI).abs() < 1e-3);
    }

    #[test]
    fn to_expr_round_trips() {
        let cf = ClosedForm::recognize(2.0 * 3.0_f64.sqrt());
        let e = cf.to_expr();
        let v = e.eval(&Default::default()).unwrap();
        assert!((v - 2.0 * 3.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn kth_power_extraction() {
        assert_eq!(extract_int(12, 2), (2, 3));
        assert_eq!(extract_int(32768, 3), (32, 1));
        assert_eq!(extract_int(81, 3), (3, 3));
        assert_eq!(extract_int(7, 2), (1, 7));
    }
}
