//! The Symbolic Directed Graph (SDG, Definition 5).

use soap_bitset::BitSet;
use soap_ir::Program;
use std::collections::{BTreeMap, BTreeSet};

/// One edge of the SDG: data flows from `from` into `to` through `statement`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SdgEdge {
    /// Source array (an input of the statement).
    pub from: String,
    /// Destination array (the output of the statement).
    pub to: String,
    /// The statement generating the edge.
    pub statement: String,
}

/// The Symbolic Directed Graph of a program: vertices are arrays, edges are
/// per-statement data dependencies.  Self-edges (update statements) are kept.
#[derive(Clone, Debug, Default)]
pub struct Sdg {
    /// All array names in first-appearance order.
    pub vertices: Vec<String>,
    /// Read-only arrays (the input set `I ⊂ V_S`).
    pub inputs: BTreeSet<String>,
    /// Arrays written by at least one statement.
    pub computed: Vec<String>,
    /// Edges (deduplicated).
    pub edges: Vec<SdgEdge>,
    adjacency: BTreeMap<String, BTreeSet<String>>,
    /// Per computed array (indexed as in `computed`): the bitmask of computed
    /// arrays adjacent to it, where adjacency includes the two-hop connection
    /// through shared read-only inputs.  This is the dense form the subgraph
    /// enumeration iterates on.
    computed_adj: Vec<BitSet>,
}

impl Sdg {
    /// Build the SDG of a program.
    pub fn from_program(program: &Program) -> Sdg {
        let arrays = program.arrays();
        let vertices: Vec<String> = arrays.iter().map(|a| a.name.clone()).collect();
        let inputs: BTreeSet<String> = arrays
            .iter()
            .filter(|a| a.read_only)
            .map(|a| a.name.clone())
            .collect();
        let computed: Vec<String> = arrays
            .iter()
            .filter(|a| a.written)
            .map(|a| a.name.clone())
            .collect();
        let mut edges = Vec::new();
        let mut adjacency: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for st in &program.statements {
            let to = st.output_array().to_string();
            for from in st.input_arrays() {
                let e = SdgEdge {
                    from: from.clone(),
                    to: to.clone(),
                    statement: st.name.clone(),
                };
                if !edges.contains(&e) {
                    edges.push(e);
                }
                adjacency
                    .entry(from.clone())
                    .or_default()
                    .insert(to.clone());
                adjacency
                    .entry(to.clone())
                    .or_default()
                    .insert(from.clone());
            }
        }

        // Dense computed-array adjacency masks, mapping each computed array to
        // its index in `computed` once so the enumeration never touches names.
        let computed_index: BTreeMap<&str, usize> = computed
            .iter()
            .enumerate()
            .map(|(i, name)| (name.as_str(), i))
            .collect();
        let empty = BTreeSet::new();
        let computed_adj: Vec<BitSet> = computed
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut mask = BitSet::new(computed.len());
                let direct = adjacency.get(name).unwrap_or(&empty);
                for other in direct {
                    if let Some(&j) = computed_index.get(other.as_str()) {
                        mask.insert(j);
                    }
                    // Two-hop adjacency through a shared read-only input.
                    if inputs.contains(other) {
                        for far in adjacency.get(other).unwrap_or(&empty) {
                            if let Some(&j) = computed_index.get(far.as_str()) {
                                mask.insert(j);
                            }
                        }
                    }
                }
                mask.remove(i);
                mask
            })
            .collect();

        Sdg {
            vertices,
            inputs,
            computed,
            edges,
            adjacency,
            computed_adj,
        }
    }

    /// Dense adjacency among computed arrays: entry `i` is the bitmask of
    /// `computed` indices adjacent to `computed[i]` (including the two-hop
    /// connection through shared read-only inputs, matching
    /// [`Sdg::neighbours`]).
    pub fn computed_adjacency(&self) -> &[BitSet] {
        &self.computed_adj
    }

    /// The index of a computed array in `computed`, if it is one.
    pub fn computed_index_of(&self, array: &str) -> Option<usize> {
        self.computed.iter().position(|a| a == array)
    }

    /// Undirected neighbours of an array (used for connected-subgraph
    /// enumeration; two computed arrays sharing only an *input* array — e.g.
    /// the two halves of `mvt` sharing the matrix `A` — are still considered
    /// adjacent through that input).
    pub fn neighbours(&self, array: &str) -> BTreeSet<String> {
        let mut out: BTreeSet<String> = self.adjacency.get(array).cloned().unwrap_or_default();
        // Add two-hop neighbours through read-only arrays.
        for mid in self.adjacency.get(array).cloned().unwrap_or_default() {
            if self.inputs.contains(&mid) {
                if let Some(next) = self.adjacency.get(&mid) {
                    out.extend(next.iter().cloned());
                }
            }
        }
        out.remove(array);
        out
    }

    /// Number of SDG vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of SDG edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_ir::ProgramBuilder;

    fn figure2() -> Program {
        ProgramBuilder::new("figure2")
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "M")])
                    .write("C", "i,j")
                    .read_multi("A", &["i", "i+1"])
                    .read_multi("B", &["j", "j+1"])
            })
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "K"), ("k", "0", "M")])
                    .update("E", "i,j")
                    .read("C", "i,k")
                    .read("D", "k,j")
            })
            .build()
            .unwrap()
    }

    #[test]
    fn figure2_sdg_structure() {
        let sdg = Sdg::from_program(&figure2());
        assert_eq!(sdg.num_vertices(), 5);
        assert_eq!(
            sdg.inputs.iter().cloned().collect::<Vec<_>>(),
            vec!["A", "B", "D"]
        );
        assert_eq!(sdg.computed, vec!["C", "E"]);
        // Edges: A→C, B→C, C→E, D→E, E→E (self edge from the update).
        assert_eq!(sdg.num_edges(), 5);
        assert!(sdg.edges.iter().any(|e| e.from == "E" && e.to == "E"));
    }

    #[test]
    fn neighbours_cross_read_only_arrays() {
        // mvt-like: x1 += A·y1, x2 += Aᵀ·y2 — x1 and x2 are adjacent through A.
        let p = ProgramBuilder::new("mvt")
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N")])
                    .update("x1", "i")
                    .read("A", "i,j")
                    .read("y1", "j")
            })
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N")])
                    .update("x2", "i")
                    .read("A", "j,i")
                    .read("y2", "j")
            })
            .build()
            .unwrap();
        let sdg = Sdg::from_program(&p);
        assert!(sdg.neighbours("x1").contains("x2"));
        assert!(sdg.neighbours("x2").contains("x1"));
    }
}
