//! Explicit CDAG construction from a SOAP program and concrete parameters.

use soap_ir::{Program, Statement};
use std::collections::BTreeMap;

/// Vertex identifier (dense, 0-based).
pub type VertexId = usize;

/// What a CDAG vertex represents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VertexKind {
    /// A program input: an array element that is read before ever being
    /// written (it starts with a blue pebble).
    Input {
        /// Array name.
        array: String,
        /// Element index.
        index: Vec<i64>,
    },
    /// One statement execution producing a new version of an array element.
    Compute {
        /// Index of the statement in the program.
        statement: usize,
        /// The iteration vector.
        iteration: Vec<i64>,
        /// Array written.
        array: String,
        /// Element index written.
        index: Vec<i64>,
    },
}

/// A Computational DAG: vertices are array-element versions, edges point from
/// operands to results.
///
/// Adjacency is stored in CSR (compressed sparse row) form — one flat target
/// array plus per-vertex offsets in each direction — so walking a vertex's
/// operands or consumers is a contiguous slice read with no per-vertex `Vec`
/// allocations.  Vertices are created with their parents already known, which
/// makes the parent CSR buildable append-only during construction.
#[derive(Clone, Debug)]
pub struct Cdag {
    /// Vertex metadata.
    pub kinds: Vec<VertexKind>,
    /// CSR offsets into `parent_targets`; vertex `v`'s operands are
    /// `parent_targets[parent_offsets[v]..parent_offsets[v + 1]]`.
    parent_offsets: Vec<usize>,
    parent_targets: Vec<VertexId>,
    /// CSR offsets into `child_targets` (derived from the parent edges).
    child_offsets: Vec<usize>,
    child_targets: Vec<VertexId>,
    /// Vertices that hold the final version of an array element written by the
    /// program (the program outputs; they must end with a blue pebble).
    pub outputs: Vec<VertexId>,
}

// CSR invariant: offsets always hold one entry per vertex plus a trailing
// total, so an empty graph still needs `[0]` — a derived Default would break
// `parents(v)`/`children(v)` for any graph built outside `from_program`.
impl Default for Cdag {
    fn default() -> Cdag {
        Cdag {
            kinds: Vec::new(),
            parent_offsets: vec![0],
            parent_targets: Vec::new(),
            child_offsets: vec![0],
            child_targets: Vec::new(),
            outputs: Vec::new(),
        }
    }
}

impl Cdag {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// The operands of vertex `v` (empty for inputs).
    #[inline]
    pub fn parents(&self, v: VertexId) -> &[VertexId] {
        &self.parent_targets[self.parent_offsets[v]..self.parent_offsets[v + 1]]
    }

    /// The consumers of vertex `v`.
    #[inline]
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        &self.child_targets[self.child_offsets[v]..self.child_offsets[v + 1]]
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Indices of the input vertices.
    pub fn inputs(&self) -> Vec<VertexId> {
        (0..self.len())
            .filter(|&v| matches!(self.kinds[v], VertexKind::Input { .. }))
            .collect()
    }

    /// Indices of the compute vertices.
    pub fn compute_vertices(&self) -> Vec<VertexId> {
        (0..self.len())
            .filter(|&v| matches!(self.kinds[v], VertexKind::Compute { .. }))
            .collect()
    }

    /// Build the CDAG of `program` for concrete parameter values.
    ///
    /// Statements are enumerated in program order and loop order; every
    /// execution creates a fresh vertex for the written element (so updates
    /// and stencil sweeps produce version chains), and reads refer to the
    /// latest version of the element, creating an input vertex on first use.
    pub fn from_program(program: &Program, params: &BTreeMap<String, i64>) -> Cdag {
        let mut g = Cdag::default();
        // (array, element index) -> current vertex holding its latest version.
        let mut latest: BTreeMap<(String, Vec<i64>), VertexId> = BTreeMap::new();

        for (sidx, st) in program.statements.iter().enumerate() {
            build_statement(&mut g, &mut latest, sidx, st, params);
        }
        // Final *computed* versions are the program outputs (read-only arrays
        // also sit in `latest` but never need storing back).
        g.outputs = latest
            .values()
            .copied()
            .filter(|&v| matches!(g.kinds[v], VertexKind::Compute { .. }))
            .collect();
        g.outputs.sort_unstable();
        g.outputs.dedup();
        // Derive the child CSR from the parent edges: count in-degrees, take
        // prefix sums, then scatter.
        let mut degree = vec![0usize; g.len()];
        for &p in &g.parent_targets {
            degree[p] += 1;
        }
        g.child_offsets = Vec::with_capacity(g.len() + 1);
        let mut total = 0;
        g.child_offsets.push(0);
        for d in &degree {
            total += d;
            g.child_offsets.push(total);
        }
        g.child_targets = vec![0; total];
        let mut cursor = g.child_offsets.clone();
        for v in 0..g.len() {
            for i in g.parent_offsets[v]..g.parent_offsets[v + 1] {
                let p = g.parent_targets[i];
                g.child_targets[cursor[p]] = v;
                cursor[p] += 1;
            }
        }
        g
    }

    fn add_vertex(&mut self, kind: VertexKind, parents: Vec<VertexId>) -> VertexId {
        let id = self.kinds.len();
        self.kinds.push(kind);
        self.parent_targets.extend_from_slice(&parents);
        self.parent_offsets.push(self.parent_targets.len());
        id
    }
}

fn build_statement(
    g: &mut Cdag,
    latest: &mut BTreeMap<(String, Vec<i64>), VertexId>,
    sidx: usize,
    st: &Statement,
    params: &BTreeMap<String, i64>,
) {
    let var_names = st.loop_variables();
    for iteration in st.domain.enumerate(params) {
        let bindings: BTreeMap<String, i64> = var_names
            .iter()
            .cloned()
            .zip(iteration.iter().copied())
            .chain(params.iter().map(|(k, v)| (k.clone(), *v)))
            .collect();
        let mut parents = Vec::new();
        let read = |g: &mut Cdag,
                    latest: &mut BTreeMap<(String, Vec<i64>), VertexId>,
                    array: &str,
                    index: Vec<i64>| {
            let key = (array.to_string(), index.clone());
            let v = *latest.entry(key).or_insert_with(|| {
                g.add_vertex(
                    VertexKind::Input {
                        array: array.to_string(),
                        index,
                    },
                    Vec::new(),
                )
            });
            v
        };
        for acc in &st.inputs {
            for comp in &acc.components {
                if let Some(index) = comp.eval(&bindings) {
                    parents.push(read(g, latest, &acc.array, index));
                }
            }
        }
        let out_index = st.output.components[0]
            .eval(&bindings)
            // lint:allow(unwrap-expect): output subscripts were validated when the CDAG was built
            .expect("output subscripts evaluate under loop bindings");
        if st.is_update {
            // The previous version of the output element is also an operand.
            parents.push(read(g, latest, &st.output.array, out_index.clone()));
        }
        parents.sort_unstable();
        parents.dedup();
        let v = g.add_vertex(
            VertexKind::Compute {
                statement: sidx,
                iteration,
                array: st.output.array.clone(),
                index: out_index.clone(),
            },
            parents,
        );
        latest.insert((st.output.array.clone(), out_index), v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_ir::ProgramBuilder;

    fn params(pairs: &[(&str, i64)]) -> BTreeMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn mmm(n: i64) -> (Program, BTreeMap<String, i64>) {
        let p = ProgramBuilder::new("gemm")
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N"), ("k", "0", "N")])
                    .update("C", "i,j")
                    .read("A", "i,k")
                    .read("B", "k,j")
            })
            .build()
            .unwrap();
        (p, params(&[("N", n)]))
    }

    #[test]
    fn mmm_cdag_has_expected_counts() {
        let (p, pr) = mmm(4);
        let g = Cdag::from_program(&p, &pr);
        // Inputs: A (16) + B (16) + initial C (16) = 48; compute: 64.
        assert_eq!(g.inputs().len(), 48);
        assert_eq!(g.compute_vertices().len(), 64);
        assert_eq!(g.len(), 112);
        // Outputs: the final version of each C element.
        assert_eq!(g.outputs.len(), 16);
        // Every compute vertex of MMM has exactly 3 parents (A, B, previous C).
        for v in g.compute_vertices() {
            assert_eq!(g.parents(v).len(), 3);
        }
    }

    #[test]
    fn update_chains_are_linked() {
        let (p, pr) = mmm(3);
        let g = Cdag::from_program(&p, &pr);
        // For a fixed (i,j), the k-loop creates a chain of 3 versions; the
        // last one must be reachable from the first through parent links.
        let computes = g.compute_vertices();
        let first = computes[0];
        let second = computes[1];
        assert!(g.parents(second).contains(&first));
    }

    #[test]
    fn stencil_cdag_links_time_steps() {
        let p = ProgramBuilder::new("jacobi1d")
            .statement(|st| {
                st.loops(&[("t", "1", "T"), ("i", "1", "N - 1")])
                    .write("A", "i,t")
                    .read_multi("A", &["i-1,t-1", "i,t-1", "i+1,t-1"])
            })
            .build()
            .unwrap();
        let g = Cdag::from_program(&p, &params(&[("N", 6), ("T", 3)]));
        // Compute vertices: (T-1)·(N-2) = 2·4 = 8.
        assert_eq!(g.compute_vertices().len(), 8);
        // Second-sweep vertices read first-sweep results, not only inputs.
        let second_sweep: Vec<_> = g
            .compute_vertices()
            .into_iter()
            .filter(|&v| matches!(&g.kinds[v], VertexKind::Compute { iteration, .. } if iteration[0] == 2))
            .collect();
        assert!(!second_sweep.is_empty());
        assert!(second_sweep.iter().any(|&v| {
            g.parents(v)
                .iter()
                .any(|&pv| matches!(g.kinds[pv], VertexKind::Compute { .. }))
        }));
    }

    #[test]
    fn children_are_consistent_with_parents() {
        let (p, pr) = mmm(3);
        let g = Cdag::from_program(&p, &pr);
        for v in 0..g.len() {
            for &c in g.children(v) {
                assert!(g.parents(c).contains(&v));
            }
            for &par in g.parents(v) {
                assert!(g.children(par).contains(&v));
            }
        }
    }
}
