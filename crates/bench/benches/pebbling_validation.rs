//! Validation experiment: the analytic lower bound never exceeds the I/O of
//! any simulated schedule, and tiled schedules approach it.

use criterion::{criterion_group, criterion_main, Criterion};
use soap_bench::validation::{validate_kernel, ValidationCase};

fn bench_validation(c: &mut Criterion) {
    let cases = [
        ValidationCase {
            kernel: "gemm",
            size: 12,
            s: 48,
        },
        ValidationCase {
            kernel: "jacobi-1d",
            size: 32,
            s: 16,
        },
        ValidationCase {
            kernel: "jacobi-2d",
            size: 10,
            s: 32,
        },
    ];
    for case in &cases {
        let report = validate_kernel(case).expect("validation case runs");
        println!("{report}");
        assert!(
            report.naive_io as f64 >= report.lower_bound * 0.99,
            "{}: simulated I/O {} fell below the lower bound {}",
            case.kernel,
            report.naive_io,
            report.lower_bound
        );
    }

    let mut group = c.benchmark_group("pebbling_validation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for case in cases {
        group.bench_function(case.kernel, move |b| {
            b.iter(|| validate_kernel(&case).expect("validation case runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
