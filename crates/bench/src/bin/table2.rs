//! Regenerate the paper's Table 2: per-kernel I/O lower bounds, the
//! comparison against the paper's reported bounds, and the improvement factor
//! over the previous state of the art.
//!
//! ```text
//! cargo run --release -p soap-bench --bin table2 [-- --group polybench|nn|various] [--json out.json]
//! ```

use soap_bench::{render_table, table2, Table2Row};
use soap_kernels::KernelGroup;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut group = None;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--group" => {
                i += 1;
                group = match args.get(i).map(|s| s.as_str()) {
                    Some("polybench") => Some(KernelGroup::Polybench),
                    Some("nn") => Some(KernelGroup::NeuralNetworks),
                    Some("various") => Some(KernelGroup::Various),
                    other => {
                        eprintln!("unknown group {other:?} (expected polybench|nn|various)");
                        std::process::exit(2);
                    }
                };
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let rows: Vec<Table2Row> = table2(group);
    println!("{}", render_table(&rows));
    println!(
        "reference sizes: every size parameter = {}, S = {} words",
        soap_bench::REFERENCE_SIZE,
        soap_bench::REFERENCE_S
    );
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&rows).expect("rows serialize to JSON");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
