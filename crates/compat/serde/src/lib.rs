//! Offline stand-in for the `serde` crate.
//!
//! The build must work without network access, so instead of the real serde
//! (trait objects, `Serializer`/`Deserializer` visitors, derive macros) this
//! crate exposes the small subset the workspace actually needs: a JSON-style
//! [`Value`] model plus [`Serialize`]/[`Deserialize`] traits that convert to
//! and from it.  Types implement the traits by hand; the wire format follows
//! serde's defaults (externally tagged enums, field-name-keyed structs) so
//! swapping the real serde back in would not change any emitted JSON.
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-style value tree, the interchange model of this serde stand-in.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON integer (wide enough for the `i128` rationals in this workspace).
    Int(i128),
    /// JSON float.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer value.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Error raised when a [`Value`] does not have the shape a
/// [`Deserialize`] implementation expects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Convenience constructor.
    pub fn msg(m: impl Into<String>) -> DeError {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] model.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstruct from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(DeError::msg(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(DeError::msg("expected number for f64")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            _ => Err(DeError::msg("expected object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&42i64.to_value()), Ok(42));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_string()));
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()),
            Ok(vec![1, 2])
        );
        assert_eq!(Option::<bool>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
    }
}
