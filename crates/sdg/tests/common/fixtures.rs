//! The private test copy of `soap_bench::fixtures::chain_of_matmuls`.
//!
//! `soap-sdg`'s tests cannot depend on `soap-bench` (dependency cycle), so
//! they carry this copy; the root-level `tests/fixture_sync.rs` test includes
//! this very file via `#[path]` and asserts the built `Program`s are
//! identical to `soap_bench::fixtures::chain_of_matmuls`, so the two copies
//! cannot drift apart silently.

use soap_ir::{Program, ProgramBuilder};

/// A chain of `k` matrix-multiplication statements
/// (`T_{s+1}[i,j] += T_s[i,k]·W_{s+1}[k,j]`), the paper's SDG scaling
/// workload.
pub fn chain_of_matmuls(k: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("chain{k}"));
    for s in 0..k {
        let src = if s == 0 {
            "A0".to_string()
        } else {
            format!("T{s}")
        };
        let dst = format!("T{}", s + 1);
        let w = format!("W{}", s + 1);
        b = b.statement(move |st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "N"), ("k", "0", "N")])
                .update(&dst, "i,j")
                .read(&src, "i,k")
                .read(&w, "k,j")
        });
    }
    b.build().expect("chain builds")
}
