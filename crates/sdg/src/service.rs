//! Serving-layer hooks: canonical program hashing and in-flight request
//! coalescing.
//!
//! The `soap-serve` daemon deduplicates requests at two levels, both built on
//! the primitives here:
//!
//! 1. **Response memoization** keyed by [`canonical_program_hash`] — a
//!    renaming-invariant digest of a whole [`Program`].  Two sources that
//!    differ only in loop-variable names (the daemon's most common duplicate
//!    shape: generated kernels with gensym'd induction variables) hash
//!    identically, so the second request is answered from the first one's
//!    serialized response.
//! 2. **In-flight coalescing** via [`InFlight`] — when N identical requests
//!    arrive *concurrently*, exactly one (the leader) runs the analysis; the
//!    other N−1 block until the leader publishes the result and then clone it.
//!
//! Both are deliberately independent of the [`SolveCache`](crate::SolveCache):
//! the solve cache deduplicates *subgraph models* inside an analysis, while
//! these hooks deduplicate *whole requests* before an analysis starts.
//!
//! ## Hash soundness
//!
//! [`canonical_program_hash`] renames loop variables positionally *per
//! statement* (`v0`, `v1`, … outermost-first).  This is sound because
//! [`Statement::validate`](soap_ir::Statement::validate) — enforced by both
//! frontends — guarantees every subscript and every loop bound references
//! only loop variables of its own statement plus size parameters, so the
//! positional rename is a bijection on everything that can appear.  Array
//! names, size parameters, bounds, subscripts, component order, and the
//! update flag all feed the digest; statement names and the program name do
//! not (they are presentation, not structure — the response splices the
//! caller's name back in).

use soap_ir::{AffineExpr, ArrayAccess, LinIndex, Program, Statement};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// A renaming-invariant structural digest of a program.
///
/// Equal hashes are *intended* to mean structurally identical programs
/// (modulo loop-variable names); as with any 64-bit digest, collisions are
/// possible in principle, so this keys caches of *derived results* (safe to
/// conflate in the worst case) rather than correctness-critical identity.
///
/// ```
/// use soap_sdg::service::canonical_program_hash;
///
/// let atax = soap_kernels::by_name("atax").unwrap().program;
/// let h1 = canonical_program_hash(&atax);
/// // Renaming loop variables does not change the hash.
/// let mut renamed = atax.clone();
/// for st in &mut renamed.statements {
///     for lv in &mut st.domain.loops {
///         lv.name = format!("{}_renamed", lv.name);
///     }
///     for acc in std::iter::once(&mut st.output).chain(st.inputs.iter_mut()) {
///         for comp in &mut acc.components {
///             for ix in &mut comp.indices {
///                 ix.coeffs = ix
///                     .coeffs
///                     .iter()
///                     .map(|(k, v)| (format!("{k}_renamed"), *v))
///                     .collect();
///             }
///         }
///     }
/// }
/// assert_eq!(h1, canonical_program_hash(&renamed));
/// ```
pub fn canonical_program_hash(program: &Program) -> u64 {
    let mut h = Fnv::new();
    h.write_usize(program.statements.len());
    for st in &program.statements {
        hash_statement(&mut h, st);
    }
    h.finish()
}

/// The key under which a finished report is persisted: the structural
/// program digest folded with every [`SdgOptions`](crate::SdgOptions) field
/// that shapes the analysis result.
///
/// [`canonical_program_hash`] alone is not a sound report key — the same
/// program analyzed under a different subgraph budget, injectivity
/// assumption, or reference `S` produces a different `ProgramAnalysis`, so
/// all four option fields feed the digest (`reference_s` as its raw f64 bit
/// pattern, matching the store's float discipline).
pub fn structural_program_key(program: &Program, opts: &crate::SdgOptions) -> u64 {
    let mut h = Fnv::new();
    h.write_i64(canonical_program_hash(program) as i64);
    h.write_u8(opts.assume_injective as u8);
    h.write_usize(opts.max_subgraph_size);
    h.write_usize(opts.max_subgraphs);
    h.write(&opts.reference_s.to_bits().to_le_bytes());
    h.finish()
}

/// Hash one statement under the positional loop-variable renaming.
fn hash_statement(h: &mut Fnv, st: &Statement) {
    // Positional rename: the i-th loop variable (outermost first) becomes
    // position i.  Bounds and subscripts are rewritten through this map; a
    // name not in the map is a size parameter and keeps its spelling.
    let rename: HashMap<&str, usize> = st
        .domain
        .loops
        .iter()
        .enumerate()
        .map(|(i, lv)| (lv.name.as_str(), i))
        .collect();
    h.write_str("st");
    h.write_usize(st.domain.loops.len());
    for lv in &st.domain.loops {
        hash_affine(h, &lv.lower, &rename);
        hash_affine(h, &lv.upper, &rename);
    }
    h.write_u8(st.is_update as u8);
    hash_access(h, &st.output, &rename);
    h.write_usize(st.inputs.len());
    for acc in &st.inputs {
        hash_access(h, acc, &rename);
    }
}

fn hash_access(h: &mut Fnv, acc: &ArrayAccess, rename: &HashMap<&str, usize>) {
    h.write_str("acc");
    h.write_str(&acc.array);
    h.write_usize(acc.components.len());
    for comp in &acc.components {
        h.write_usize(comp.indices.len());
        for ix in &comp.indices {
            hash_lin_index(h, ix, rename);
        }
    }
}

fn hash_affine(h: &mut Fnv, e: &AffineExpr, rename: &HashMap<&str, usize>) {
    h.write_str("aff");
    h.write_i64(e.constant);
    h.write_usize(e.terms.len());
    // BTreeMap order is deterministic but name-dependent; emit renamed loop
    // variables and parameters in two sorted groups so the digest is stable
    // under renaming.
    let mut loops: Vec<(usize, i64)> = Vec::new();
    let mut params: Vec<(&str, i64)> = Vec::new();
    for (name, coeff) in &e.terms {
        match rename.get(name.as_str()) {
            Some(&pos) => loops.push((pos, *coeff)),
            None => params.push((name, *coeff)),
        }
    }
    loops.sort_unstable();
    for (pos, coeff) in loops {
        h.write_str("v");
        h.write_usize(pos);
        h.write_i64(coeff);
    }
    for (name, coeff) in params {
        h.write_str("p");
        h.write_str(name);
        h.write_i64(coeff);
    }
}

fn hash_lin_index(h: &mut Fnv, ix: &LinIndex, rename: &HashMap<&str, usize>) {
    let e = AffineExpr {
        terms: ix.coeffs.clone(),
        constant: ix.offset,
    };
    hash_affine(h, &e, rename);
}

/// FNV-1a, the same dependency-free construction the canonical-key cache and
/// the disk store use for digests.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]); // terminator: ("ab","c") ≠ ("a","bc")
    }
    fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }
    fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }
    fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// What [`InFlight::claim`] handed the caller.
pub enum Claim<'a, T> {
    /// This caller is the **leader**: run the work, then publish the result
    /// with [`LeaderGuard::complete`] (or drop the guard to wake followers
    /// empty-handed — they re-claim and one becomes the new leader).
    Leader(LeaderGuard<'a, T>),
    /// Another caller was already running identical work; this is its result
    /// (`None` only if every successive leader died without publishing).
    Follower(Option<T>),
}

/// In-flight request coalescing: at most one execution per key at a time,
/// concurrent duplicates wait and share the leader's result.
///
/// ```
/// use soap_sdg::service::{Claim, InFlight};
/// use std::sync::Arc;
///
/// let inflight = Arc::new(InFlight::new());
/// let Claim::Leader(guard) = inflight.claim(42) else {
///     panic!("first claim must lead");
/// };
/// // A concurrent duplicate would now block in `claim(42)`…
/// guard.complete("analysis result".to_string());
/// // …and return `Claim::Follower(Some("analysis result"))`.
/// // Once completed the key is released: the next claim leads again.
/// assert!(matches!(inflight.claim(42), Claim::Leader(_)));
/// ```
pub struct InFlight<T> {
    slots: Mutex<HashMap<u64, Arc<Slot<T>>>>,
}

/// One in-flight key: followers park on the condvar until `done`.
struct Slot<T> {
    state: Mutex<SlotState<T>>,
    cond: Condvar,
}

struct SlotState<T> {
    done: bool,
    value: Option<T>,
}

impl<T: Clone> InFlight<T> {
    /// An empty coalescing table.
    pub fn new() -> InFlight<T> {
        InFlight {
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Claim `key`.  The first concurrent claimant becomes the leader; later
    /// claimants block until the leader publishes (or abandons) and then get
    /// the shared value.
    pub fn claim(&self, key: u64) -> Claim<'_, T> {
        let slot = {
            // lint:allow(unwrap-expect): a poisoned slot lock means a leader panicked; fail-stop propagates it to followers (protocol model-checked in tests/interleave_cache.rs)
            let mut slots = self.slots.lock().expect("not poisoned");
            if let Some(slot) = slots.get(&key) {
                Arc::clone(slot)
            } else {
                let slot = Arc::new(Slot {
                    state: Mutex::new(SlotState {
                        done: false,
                        value: None,
                    }),
                    cond: Condvar::new(),
                });
                slots.insert(key, Arc::clone(&slot));
                return Claim::Leader(LeaderGuard {
                    inflight: self,
                    key,
                    slot,
                    published: false,
                });
            }
        };
        // lint:allow(unwrap-expect): a poisoned slot lock means a leader panicked; fail-stop propagates it to followers (protocol model-checked in tests/interleave_cache.rs)
        let mut state = slot.state.lock().expect("not poisoned");
        while !state.done {
            // lint:allow(unwrap-expect): a poisoned slot lock means a leader panicked; fail-stop propagates it to followers (protocol model-checked in tests/interleave_cache.rs)
            state = slot.cond.wait(state).expect("not poisoned");
        }
        Claim::Follower(state.value.clone())
    }

    /// Number of keys currently executing (diagnostics).
    pub fn len(&self) -> usize {
        // lint:allow(unwrap-expect): a poisoned slot lock means a leader panicked; fail-stop propagates it to followers (protocol model-checked in tests/interleave_cache.rs)
        self.slots.lock().expect("not poisoned").len()
    }

    /// True if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Clone> Default for InFlight<T> {
    fn default() -> Self {
        InFlight::new()
    }
}

/// The leader's obligation: publish a value (or, on drop, release followers
/// empty-handed so the request can be retried).
pub struct LeaderGuard<'a, T> {
    inflight: &'a InFlight<T>,
    key: u64,
    slot: Arc<Slot<T>>,
    published: bool,
}

impl<T> LeaderGuard<'_, T> {
    /// Publish the result: wake every follower with a clone, release the key.
    pub fn complete(mut self, value: T) {
        self.publish(Some(value));
    }

    fn publish(&mut self, value: Option<T>) {
        if self.published {
            return;
        }
        self.published = true;
        self.inflight
            .slots
            .lock()
            // lint:allow(unwrap-expect): a poisoned slot lock means a leader panicked; fail-stop propagates it to followers (protocol model-checked in tests/interleave_cache.rs)
            .expect("not poisoned")
            .remove(&self.key);
        // lint:allow(unwrap-expect): a poisoned slot lock means a leader panicked; fail-stop propagates it to followers (protocol model-checked in tests/interleave_cache.rs)
        let mut state = self.slot.state.lock().expect("not poisoned");
        state.done = true;
        state.value = value;
        self.slot.cond.notify_all();
    }
}

impl<T> Drop for LeaderGuard<'_, T> {
    fn drop(&mut self) {
        // Leader died (panic, early return) without publishing: wake the
        // followers with nothing rather than leaving them parked forever.
        self.publish(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_frontend::parse_python;

    const ATAX_PY: &str = "\
for i in range(0, M):
    for j in range(0, N):
        tmp[i] += A[i][j] * x[j]
for i in range(0, M):
    for j in range(0, N):
        y[j] += A[i][j] * tmp[i]
";

    const ATAX_PY_RENAMED: &str = "\
for outer_q in range(0, M):
    for zz in range(0, N):
        tmp[outer_q] += A[outer_q][zz] * x[zz]
for a9 in range(0, M):
    for b7 in range(0, N):
        y[b7] += A[a9][b7] * tmp[a9]
";

    #[test]
    fn hash_is_renaming_invariant() {
        let a = parse_python("a", ATAX_PY).unwrap();
        let b = parse_python("b", ATAX_PY_RENAMED).unwrap();
        assert_eq!(canonical_program_hash(&a), canonical_program_hash(&b));
    }

    #[test]
    fn hash_distinguishes_structure() {
        let a = parse_python("a", ATAX_PY).unwrap();
        // Change one bound (N -> M in the inner loop of the first nest).
        let other = ATAX_PY.replacen("range(0, N)", "range(0, M)", 1);
        let b = parse_python("b", &other).unwrap();
        assert_ne!(canonical_program_hash(&a), canonical_program_hash(&b));
        // Change an array name.
        let c = parse_python("c", &ATAX_PY.replace("tmp", "scratch")).unwrap();
        assert_ne!(canonical_program_hash(&a), canonical_program_hash(&c));
        // Parameter names matter (N vs K is a different symbolic bound).
        let d = parse_python("d", &ATAX_PY.replace("N)", "K)")).unwrap();
        assert_ne!(canonical_program_hash(&a), canonical_program_hash(&d));
    }

    #[test]
    fn hash_ignores_program_and_statement_names() {
        let a = parse_python("first", ATAX_PY).unwrap();
        let b = parse_python("completely-different-name", ATAX_PY).unwrap();
        assert_eq!(canonical_program_hash(&a), canonical_program_hash(&b));
    }

    #[test]
    fn structural_key_separates_option_profiles() {
        let program = parse_python("a", ATAX_PY).unwrap();
        let renamed = parse_python("b", ATAX_PY_RENAMED).unwrap();
        let opts = crate::SdgOptions::default();
        // Renaming-invariance carries over from the program hash…
        assert_eq!(
            structural_program_key(&program, &opts),
            structural_program_key(&renamed, &opts)
        );
        // …but every option that shapes the result separates keys.
        for tweaked in [
            crate::SdgOptions {
                assume_injective: !opts.assume_injective,
                ..opts.clone()
            },
            crate::SdgOptions {
                max_subgraph_size: opts.max_subgraph_size + 1,
                ..opts.clone()
            },
            crate::SdgOptions {
                max_subgraphs: opts.max_subgraphs - 1,
                ..opts.clone()
            },
            crate::SdgOptions {
                reference_s: opts.reference_s * 2.0,
                ..opts.clone()
            },
        ] {
            assert_ne!(
                structural_program_key(&program, &opts),
                structural_program_key(&program, &tweaked)
            );
        }
    }

    #[test]
    fn coalescing_single_leader_many_followers() {
        let inflight: Arc<InFlight<String>> = Arc::new(InFlight::new());
        let Claim::Leader(guard) = inflight.claim(7) else {
            panic!("first claim must lead");
        };
        let followers: Vec<_> = (0..8)
            .map(|_| {
                let inflight = Arc::clone(&inflight);
                std::thread::spawn(move || match inflight.claim(7) {
                    Claim::Leader(_) => panic!("leader already exists"),
                    Claim::Follower(v) => v,
                })
            })
            .collect();
        // Give followers time to park, then publish.
        std::thread::sleep(std::time::Duration::from_millis(50));
        guard.complete("shared".to_string());
        for f in followers {
            assert_eq!(f.join().unwrap().as_deref(), Some("shared"));
        }
        assert!(inflight.is_empty());
    }

    #[test]
    fn abandoned_leader_wakes_followers_empty_handed() {
        let inflight: Arc<InFlight<u32>> = Arc::new(InFlight::new());
        let Claim::Leader(guard) = inflight.claim(1) else {
            panic!("first claim must lead");
        };
        let inflight2 = Arc::clone(&inflight);
        let follower = std::thread::spawn(move || match inflight2.claim(1) {
            Claim::Leader(_) => panic!("leader already exists"),
            Claim::Follower(v) => v,
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(guard); // leader abandons without publishing
        assert_eq!(follower.join().unwrap(), None);
        // The key is released: a new claim leads.
        assert!(matches!(inflight.claim(1), Claim::Leader(_)));
    }
}
