//! Integration test: source code in, symbolic bound out — the full toolchain
//! the paper describes (parser → SOAP IR → SDG analysis), for both dialects.

use soap::frontend::{parse_c, parse_python};
use soap::sdg::analyze_program;
use std::collections::BTreeMap;

fn eval(bound: &soap::symbolic::Expr, pairs: &[(&str, f64)]) -> f64 {
    let b: BTreeMap<String, f64> = pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
    bound.eval(&b).unwrap()
}

#[test]
fn python_gemm_matches_builder_gemm() {
    let src = r#"
for i in range(0, N):
    for j in range(0, N):
        for k in range(0, N):
            C[i, j] += A[i, k] * B[k, j]
"#;
    let parsed = parse_python("gemm", src).unwrap();
    let from_source = analyze_program(&parsed).unwrap();
    let builtin = soap::kernels::polybench::gemm();
    let from_builder = analyze_program(&builtin).unwrap();
    let ratio = eval(&from_source.bound, &[("N", 500.0), ("S", 2048.0)])
        / eval(
            &from_builder.bound,
            &[("NI", 500.0), ("NJ", 500.0), ("NK", 500.0), ("S", 2048.0)],
        );
    assert!((ratio - 1.0).abs() < 0.02, "ratio {ratio}");
}

#[test]
fn c_and_python_dialects_agree() {
    let py = r#"
for t in range(1, T):
    for i in range(1, N - 1):
        A[i, t] = (A[i-1, t-1] + A[i, t-1] + A[i+1, t-1]) / 3
"#;
    let c = r#"
for (t = 1; t < T; t++) {
  for (i = 1; i < N - 1; i++) {
    A[i][t] = (A[i-1][t-1] + A[i][t-1] + A[i+1][t-1]) / 3;
  }
}
"#;
    let from_py = analyze_program(&parse_python("jacobi", py).unwrap()).unwrap();
    let from_c = analyze_program(&parse_c("jacobi", c).unwrap()).unwrap();
    let args = &[("N", 4096.0), ("T", 512.0), ("S", 64.0)][..];
    let a = eval(&from_py.bound, args);
    let b = eval(&from_c.bound, args);
    assert!((a - b).abs() / a < 0.02, "python {a} vs c {b}");
    // And both reproduce the 2NT/S leading term.
    let expected = 2.0 * 4096.0 * 512.0 / 64.0;
    assert!(
        (a - expected).abs() / expected < 0.1,
        "bound {a} vs {expected}"
    );
}

#[test]
fn parsed_multi_statement_program_uses_sdg_reuse() {
    // atax written in C: the bound must be ~MN, not 2MN, because the matrix
    // read is shared between the two statements.
    let c = r#"
for (i = 0; i < N; i++) {
  for (j = 0; j < M; j++) {
    tmp[i] += A[i][j] * x[j];
  }
}
for (i = 0; i < N; i++) {
  for (j = 0; j < M; j++) {
    y[j] += A[i][j] * tmp[i];
  }
}
"#;
    let program = parse_c("atax", c).unwrap();
    let analysis = analyze_program(&program).unwrap();
    let v = eval(
        &analysis.bound,
        &[("N", 1000.0), ("M", 1000.0), ("S", 4096.0)],
    );
    let mn = 1.0e6;
    assert!((v - mn).abs() / mn < 0.1, "bound {v} vs {mn}");
}
