//! The Python-like dialect: indentation-scoped `for x in range(lo, hi):`.

use crate::rhs::{group_reads, parse_assignment};
use crate::{FrontendError, MAX_LOOP_DEPTH, MAX_SOURCE_BYTES};
use soap_ir::parse::parse_affine;
use soap_ir::{ArrayAccess, IterationDomain, LoopVar, Program, Statement};

/// Parse a Python-like program into SOAP IR.
///
/// Supported lines: `for <var> in range(<lo>, <hi>):` (or `range(<hi>)`),
/// array assignments, comments (`#`), and blank lines.  Loop nesting follows
/// indentation, exactly as in the paper's listings.
pub fn parse_python(name: &str, source: &str) -> Result<Program, FrontendError> {
    if source.len() > MAX_SOURCE_BYTES {
        return Err(FrontendError::SourceTooLarge {
            bytes: source.len(),
        });
    }
    // Stack of (indentation, loop).
    let mut stack: Vec<(usize, LoopVar)> = Vec::new();
    let mut statements = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let without_comment = raw.split('#').next().unwrap_or("");
        if without_comment.trim().is_empty() {
            continue;
        }
        let indent = without_comment.len() - without_comment.trim_start().len();
        let line = without_comment.trim();
        let col = |s: &str| crate::column_of(raw, s);
        // Pop loops that ended (dedent).
        while let Some((level, _)) = stack.last() {
            if indent <= *level {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(rest) = line.strip_prefix("for ") {
            let (var, range) = rest.split_once(" in ").ok_or(FrontendError::Syntax {
                line: line_no,
                column: col(rest),
                message: "expected 'for <var> in range(...):'".to_string(),
            })?;
            let range = range.trim().trim_end_matches(':').trim();
            let inner = range
                .strip_prefix("range(")
                .and_then(|r| r.strip_suffix(')'))
                .ok_or(FrontendError::Syntax {
                    line: line_no,
                    column: col(range),
                    message: format!("expected range(...), found '{range}'"),
                })?;
            let (lo, hi) = match inner.split_once(',') {
                Some((a, b)) => (a.trim().to_string(), b.trim().to_string()),
                None => ("0".to_string(), inner.trim().to_string()),
            };
            let lower = parse_affine(&lo)?;
            let upper = parse_affine(&hi)?;
            if stack.len() >= MAX_LOOP_DEPTH {
                return Err(FrontendError::NestingTooDeep { line: line_no });
            }
            stack.push((indent, LoopVar::new(var.trim(), lower, upper)));
        } else {
            if stack.is_empty() {
                return Err(FrontendError::StatementOutsideLoop { line: line_no });
            }
            let assignment = parse_assignment(line, line_no, col(line))?;
            let loops: Vec<LoopVar> = stack.iter().map(|(_, l)| l.clone()).collect();
            let st = Statement {
                name: format!("St{}", statements.len() + 1),
                domain: IterationDomain::new(loops),
                output: ArrayAccess::single(
                    assignment.output.0.clone(),
                    assignment.output.1.clone(),
                ),
                inputs: group_reads(assignment.reads),
                is_update: assignment.is_update,
            };
            st.validate()?;
            statements.push(st);
        }
    }
    let program = Program::new(name, statements);
    program.validate()?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_1_stencil() {
        let src = r#"
for t in range(1, T):
    for i in range(t, N - t):
        A[i, t+1] = (A[i-1, t] + A[i, t] + A[i+1, t]) / 3 + B[i]
"#;
        let p = parse_python("example1", src).unwrap();
        assert_eq!(p.statements.len(), 1);
        let st = &p.statements[0];
        assert_eq!(st.domain.depth(), 2);
        assert_eq!(st.inputs.len(), 2);
        assert_eq!(st.inputs[0].num_components(), 3);
        assert!(!st.is_update);
    }

    #[test]
    fn parses_figure_2_two_statement_program() {
        let src = r#"
for i in range(100):
    for j in range(100):
        C[i, j] = (A[i] + A[i+1]) * (B[j] + B[j+1])
for i in range(100):
    for j in range(100):
        for k in range(100):
            E[i, j] += C[i, k] * D[k, j]
"#;
        let p = parse_python("figure2", src).unwrap();
        assert_eq!(p.statements.len(), 2);
        assert!(p.statements[1].is_update);
        assert_eq!(p.computed_arrays(), vec!["C", "E"]);
        // Constant loop bounds evaluate to the right domain size.
        let card = p.statements[1].execution_count();
        assert_eq!(card.eval(&Default::default()).unwrap(), 1.0e6);
    }

    #[test]
    fn reports_statements_outside_loops() {
        let err = parse_python("bad", "A[i] = B[i]\n").unwrap_err();
        assert!(matches!(
            err,
            FrontendError::StatementOutsideLoop { line: 1 }
        ));
    }

    #[test]
    fn reports_malformed_ranges() {
        let err = parse_python("bad", "for i in 0..N:\n    A[i] = B[i]\n").unwrap_err();
        // `0..N` starts at column 10 of the line.
        assert!(matches!(
            err,
            FrontendError::Syntax {
                line: 1,
                column: 10,
                ..
            }
        ));
    }

    #[test]
    fn rejects_oversized_sources_and_too_deep_nesting() {
        let big = "#".repeat(MAX_SOURCE_BYTES + 1);
        assert!(matches!(
            parse_python("big", &big),
            Err(FrontendError::SourceTooLarge { .. })
        ));
        let mut nested = String::new();
        for d in 0..=MAX_LOOP_DEPTH {
            nested.push_str(&" ".repeat(d));
            nested.push_str(&format!("for v{d} in range(N):\n"));
        }
        assert!(matches!(
            parse_python("deep", &nested),
            Err(FrontendError::NestingTooDeep { line }) if line == MAX_LOOP_DEPTH + 1
        ));
    }

    #[test]
    fn parsed_program_is_analyzable() {
        let src = r#"
for i in range(0, N):
    for j in range(0, N):
        for k in range(0, N):
            C[i, j] += A[i, k] * B[k, j]
"#;
        let p = parse_python("gemm", src).unwrap();
        let res = soap_sdg::analyze_program(&p).unwrap();
        let mut b = std::collections::BTreeMap::new();
        b.insert("N".to_string(), 100.0);
        b.insert("S".to_string(), 100.0);
        let q = res.bound.eval(&b).unwrap();
        assert!((q - 2.0e5).abs() / 2.0e5 < 0.05);
    }
}
