//! Deep-learning operators and networks (Table 2, middle block).
//!
//! Shapes follow the paper's notation where available: the direct convolution
//! uses the seven-loop form of Example 6; the full networks (MLP, LeNet-5,
//! BERT encoder) are compositions of convolution / matrix-multiplication /
//! element-wise statements whose inter-layer reuse is captured by the SDG.

// lint:allow-file(unwrap-expect): kernel definitions are static tables; an invalid program is an authoring bug caught by tier-1 tests, not a runtime condition
use soap_ir::{Program, ProgramBuilder, StatementBuilder};

/// Direct convolution (Example 6): seven nested loops
/// `Out[k,h,w,b] += Image[r + σ_w·w, s + σ_h·h, c, b] · Filter[k,r,s]`.
///
/// The `Image` subscript is a linear combination of two iteration variables,
/// so the analysis reports a *conditional* intensity (§5.3): Table 2 lists the
/// large-stride (injective) case.
pub fn direct_convolution() -> Program {
    ProgramBuilder::new("direct-conv")
        .statement(|st| {
            st.loops(&[
                ("b", "0", "BATCH"),
                ("c", "0", "CIN"),
                ("k", "0", "COUT"),
                ("w", "0", "WOUT"),
                ("h", "0", "HOUT"),
                ("r", "0", "WKER"),
                ("s", "0", "HKER"),
            ])
            .update("Out", "k,h,w,b")
            .read("Image", "r+2*w,s+2*h,c,b")
            .read("Filter", "k,r,s")
        })
        .build()
        .expect("direct convolution is a valid SOAP program")
}

/// Softmax over attention scores `X[b,h,m,n]`: row max, exponentiation, row
/// sum, and normalization — four bandwidth-bound statements.
pub fn softmax() -> Program {
    ProgramBuilder::new("softmax")
        .statement(|st| {
            st.loops(&[
                ("b", "0", "B"),
                ("h", "0", "H"),
                ("m", "0", "M"),
                ("n", "0", "N"),
            ])
            .update("rowmax", "b,h,m")
            .read("X", "b,h,m,n")
        })
        .statement(|st| {
            st.loops(&[
                ("b", "0", "B"),
                ("h", "0", "H"),
                ("m", "0", "M"),
                ("n", "0", "N"),
            ])
            .write("E", "b,h,m,n")
            .read("X", "b,h,m,n")
            .read("rowmax", "b,h,m")
        })
        .statement(|st| {
            st.loops(&[
                ("b", "0", "B"),
                ("h", "0", "H"),
                ("m", "0", "M"),
                ("n", "0", "N"),
            ])
            .update("rowsum", "b,h,m")
            .read("E", "b,h,m,n")
        })
        .statement(|st| {
            st.loops(&[
                ("b", "0", "B"),
                ("h", "0", "H"),
                ("m", "0", "M"),
                ("n", "0", "N"),
            ])
            .write("Out", "b,h,m,n")
            .read("E", "b,h,m,n")
            .read("rowsum", "b,h,m")
        })
        .build()
        .expect("softmax is a valid SOAP program")
}

/// A three-layer multi-layer perceptron over a batch of `N` samples:
/// `O1 = X·W1`, `O2 = O1·W2`, `Out = O2·W3` (biases and activations are
/// element-wise and do not change the leading-order bound).
pub fn mlp() -> Program {
    ProgramBuilder::new("mlp")
        .statement(|st| {
            st.loops(&[("n", "0", "N"), ("f1", "0", "FC1"), ("i", "0", "INP")])
                .update("O1", "n,f1")
                .read("X", "n,i")
                .read("W1", "i,f1")
        })
        .statement(|st| {
            st.loops(&[("n", "0", "N"), ("f2", "0", "FC2"), ("f1", "0", "FC1")])
                .update("O2", "n,f2")
                .read("O1", "n,f1")
                .read("W2", "f1,f2")
        })
        .statement(|st| {
            st.loops(&[("n", "0", "N"), ("o", "0", "OUT"), ("f2", "0", "FC2")])
                .update("O3", "n,o")
                .read("O2", "n,f2")
                .read("W3", "f2,o")
        })
        .build()
        .expect("mlp is a valid SOAP program")
}

/// A convolution layer statement used by [`lenet5`] (stride 1, `5×5` kernel).
#[allow(clippy::too_many_arguments)]
fn conv_layer(
    name: &str,
    out: &str,
    inp: &str,
    filt: &str,
    cin: &str,
    cout: &str,
    hout: &str,
    wout: &str,
) -> StatementBuilder {
    StatementBuilder::new(name)
        .loops(&[
            ("b", "0", "BATCH"),
            ("c", "0", cin),
            ("k", "0", cout),
            ("w", "0", wout),
            ("h", "0", hout),
            ("r", "0", "5"),
            ("s", "0", "5"),
        ])
        .update(out, "k,h,w,b")
        .read(inp, "r+w,s+h,c,b")
        .read(filt, "k,c,r,s")
}

/// LeNet-5: two convolution layers, two average-pooling layers and three
/// fully-connected layers over a batch of `BATCH` images of `CH × H × W`.
pub fn lenet5() -> Program {
    ProgramBuilder::new("lenet-5")
        .push(
            conv_layer("conv1", "C1", "Image", "F1", "CH", "C1N", "H", "W")
                .build()
                .expect("conv1"),
        )
        .statement(|st| {
            st.loops(&[
                ("b", "0", "BATCH"),
                ("k", "0", "C1N"),
                ("h", "0", "H"),
                ("w", "0", "W"),
            ])
            .write("P1", "k,h,w,b")
            .read_multi(
                "C1",
                &[
                    "k,2*h,2*w,b",
                    "k,2*h+1,2*w,b",
                    "k,2*h,2*w+1,b",
                    "k,2*h+1,2*w+1,b",
                ],
            )
        })
        .push(
            conv_layer("conv2", "C2", "P1", "F2", "C1N", "C2N", "H", "W")
                .build()
                .expect("conv2"),
        )
        .statement(|st| {
            st.loops(&[
                ("b", "0", "BATCH"),
                ("k", "0", "C2N"),
                ("h", "0", "H"),
                ("w", "0", "W"),
            ])
            .write("P2", "k,h,w,b")
            .read_multi(
                "C2",
                &[
                    "k,2*h,2*w,b",
                    "k,2*h+1,2*w,b",
                    "k,2*h,2*w+1,b",
                    "k,2*h+1,2*w+1,b",
                ],
            )
        })
        .statement(|st| {
            st.loops(&[("b", "0", "BATCH"), ("f", "0", "FC1"), ("i", "0", "FLAT")])
                .update("FC1out", "b,f")
                .read("P2flat", "b,i")
                .read("WFC1", "i,f")
        })
        .statement(|st| {
            st.loops(&[("b", "0", "BATCH"), ("g", "0", "FC2"), ("f", "0", "FC1")])
                .update("FC2out", "b,g")
                .read("FC1out", "b,f")
                .read("WFC2", "f,g")
        })
        .statement(|st| {
            st.loops(&[
                ("b", "0", "BATCH"),
                ("o", "0", "CLASSES"),
                ("g", "0", "FC2"),
            ])
            .update("Logits", "b,o")
            .read("FC2out", "b,g")
            .read("WFC3", "g,o")
        })
        .build()
        .expect("lenet-5 is a valid SOAP program")
}

/// One BERT transformer encoder layer: the QKV projections, the attention
/// score matrix `QKᵀ`, softmax, the attention-weighted values, the output
/// projection, and the two feed-forward matrix multiplications.
///
/// Parameters: `B` batch, `L` sequence length, `H` heads, `P` head size
/// (so the model width is `H·P`), `F = 4·H·P` the feed-forward width.
pub fn bert_encoder() -> Program {
    fn qkv_projection(out: &str) -> soap_ir::Statement {
        StatementBuilder::new(format!("proj_{out}"))
            .loops(&[
                ("b", "0", "B"),
                ("l", "0", "L"),
                ("h", "0", "H"),
                ("p", "0", "P"),
                ("e", "0", "E"),
            ])
            .update(out, "b,l,h,p")
            .read("Xin", "b,l,e")
            .read(&format!("W{out}"), "e,h,p")
            .build()
            .expect("QKV projection is a valid SOAP statement")
    }
    ProgramBuilder::new("bert-encoder")
        .push(qkv_projection("Q"))
        .push(qkv_projection("K"))
        .push(qkv_projection("V"))
        // Scores[b,h,l,m] += Q[b,l,h,p]·K[b,m,h,p]
        .statement(|st| {
            st.loops(&[
                ("b", "0", "B"),
                ("h", "0", "H"),
                ("l", "0", "L"),
                ("m", "0", "L"),
                ("p", "0", "P"),
            ])
            .update("Scores", "b,h,l,m")
            .read("Q", "b,l,h,p")
            .read("K", "b,m,h,p")
        })
        // Softmax (folded into two bandwidth statements).
        .statement(|st| {
            st.loops(&[
                ("b", "0", "B"),
                ("h", "0", "H"),
                ("l", "0", "L"),
                ("m", "0", "L"),
            ])
            .update("rowsum", "b,h,l")
            .read("Scores", "b,h,l,m")
        })
        .statement(|st| {
            st.loops(&[
                ("b", "0", "B"),
                ("h", "0", "H"),
                ("l", "0", "L"),
                ("m", "0", "L"),
            ])
            .write("Probs", "b,h,l,m")
            .read("Scores", "b,h,l,m")
            .read("rowsum", "b,h,l")
        })
        // Context[b,l,h,p] += Probs[b,h,l,m]·V[b,m,h,p]
        .statement(|st| {
            st.loops(&[
                ("b", "0", "B"),
                ("h", "0", "H"),
                ("l", "0", "L"),
                ("p", "0", "P"),
                ("m", "0", "L"),
            ])
            .update("Context", "b,l,h,p")
            .read("Probs", "b,h,l,m")
            .read("V", "b,m,h,p")
        })
        // Output projection: Attn[b,l,e] += Context[b,l,h,p]·WO[h,p,e]
        .statement(|st| {
            st.loops(&[
                ("b", "0", "B"),
                ("l", "0", "L"),
                ("e", "0", "E"),
                ("h", "0", "H"),
                ("p", "0", "P"),
            ])
            .update("Attn", "b,l,e")
            .read("Context", "b,l,h,p")
            .read("WO", "h,p,e")
        })
        // Feed-forward: FF1[b,l,f] += Attn[b,l,e]·W1[e,f]; FF2[b,l,e] += FF1[b,l,f]·W2[f,e]
        .statement(|st| {
            st.loops(&[
                ("b", "0", "B"),
                ("l", "0", "L"),
                ("f", "0", "F"),
                ("e", "0", "E"),
            ])
            .update("FF1", "b,l,f")
            .read("Attn", "b,l,e")
            .read("W1", "e,f")
        })
        .statement(|st| {
            st.loops(&[
                ("b", "0", "B"),
                ("l", "0", "L"),
                ("e", "0", "E"),
                ("f", "0", "F"),
            ])
            .update("FF2", "b,l,e")
            .read("FF1", "b,l,f")
            .read("W2", "f,e")
        })
        .build()
        .expect("bert encoder is a valid SOAP program")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nn_programs_validate() {
        for p in [
            direct_convolution(),
            softmax(),
            mlp(),
            lenet5(),
            bert_encoder(),
        ] {
            assert!(p.validate().is_ok(), "{} failed validation", p.name);
        }
    }

    #[test]
    fn convolution_has_non_injective_subscripts() {
        let p = direct_convolution();
        let img = &p.statements[0].inputs[0];
        assert_eq!(img.array, "Image");
        assert!(!img.is_plain());
    }

    #[test]
    fn bert_encoder_statement_count_and_params() {
        let p = bert_encoder();
        assert_eq!(p.statements.len(), 10);
        let params = p.parameters();
        for expected in ["B", "L", "H", "P", "E", "F"] {
            assert!(
                params.contains(&expected.to_string()),
                "missing param {expected}"
            );
        }
    }

    #[test]
    fn mlp_work_is_sum_of_three_products() {
        let p = mlp();
        let mut b = std::collections::BTreeMap::new();
        for (k, v) in [
            ("N", 8.0),
            ("FC1", 4.0),
            ("FC2", 5.0),
            ("INP", 3.0),
            ("OUT", 2.0),
        ] {
            b.insert(k.to_string(), v);
        }
        let total = p.total_vertex_count().eval(&b).unwrap();
        assert_eq!(total, 8.0 * 4.0 * 3.0 + 8.0 * 5.0 * 4.0 + 8.0 * 2.0 * 5.0);
    }
}
