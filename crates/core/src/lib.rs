//! # soap-core
//!
//! Single-statement SOAP I/O lower-bound analysis — the paper's Section 4
//! pipeline:
//!
//! 1. **Access-set sizes** (Lemma 3 / Corollary 1, [`access_size`]): for every
//!    input array, the minimum number of distinct vertices any rectangular
//!    subcomputation with tile extents `|D_t|` must touch.
//! 2. **Dominator model** ([`model`]): the optimization problem (8)
//!    `max χ(D) s.t. Σ_j |A_j(D)| ≤ X, D_t ≥ 1` and its solution: the exponent
//!    σ (exact, via the access LP), the constant `c` of `χ(X) = c·X^σ`
//!    (numeric KKT + closed-form recognition), the computational intensity
//!    `ρ(S)`, the optimal `X₀`, and the optimal tile shapes.
//! 3. **Statement analysis** ([`analysis`]): assembling the above into the
//!    final lower bound `Q ≥ |D| / ρ` (Eq. 9) together with the exact
//!    iteration-domain cardinality `|D|`.
//! 4. **Projections** ([`projections`], Section 5): splitting provably
//!    disjoint access sets, version dimensions for `+=` updates, and
//!    conditional intensities for non-injective accesses (convolution strides).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access_size;
pub mod analysis;
pub mod model;
pub mod projections;

pub use analysis::{analyze_conditional, analyze_statement, AnalysisOptions, StatementAnalysis};
pub use model::{
    solve_model, solve_model_instrumented, solve_model_instrumented_governed,
    solve_model_precompiled, solve_model_precompiled_governed, solve_model_reference, AccessModel,
    IntensityResult,
};

/// Errors produced by the analysis.
#[derive(Clone, Debug, PartialEq)]
pub enum AnalysisError {
    /// The statement failed IR validation.
    InvalidStatement(String),
    /// The statement has no input accesses at all, so its I/O is dominated by
    /// compulsory output traffic only.
    NoInputs(String),
    /// The numeric optimizer failed to produce a finite intensity.
    NumericalFailure(String),
    /// The analysis itself panicked (a bug, not a property of the input);
    /// produced when a caught worker panic is surfaced as an isolated
    /// per-program error instead of tearing down the whole batch.
    Internal(String),
    /// The work was abandoned at a deterministic commit point because a
    /// deadline expired or a cancellation was requested.  Never cached and
    /// never persisted: a cancelled solve says nothing about the model, only
    /// about the budget of the run that attempted it.
    Cancelled(String),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::InvalidStatement(msg) => write!(f, "invalid statement: {msg}"),
            AnalysisError::NoInputs(name) => write!(f, "statement {name} has no input accesses"),
            AnalysisError::NumericalFailure(msg) => write!(f, "numerical failure: {msg}"),
            AnalysisError::Internal(msg) => write!(f, "internal analysis failure: {msg}"),
            AnalysisError::Cancelled(msg) => write!(f, "cancelled: {msg}"),
        }
    }
}

impl std::error::Error for AnalysisError {}
