//! # soap — Automated I/O lower bounds for statically analyzable programs
//!
//! This is the umbrella crate of the `soap-rs` workspace, a reproduction of
//! *"Pebbles, Graphs, and a Pinch of Combinatorics: Towards Tight I/O Lower
//! Bounds for Statically Analyzable Programs"* (SPAA 2021).
//!
//! It re-exports the individual crates so examples and downstream users can
//! depend on a single crate:
//!
//! * [`symbolic`] — exact rational/symbolic math, the optimization solvers.
//! * [`ir`] — the SOAP intermediate representation (statements, accesses).
//! * [`frontend`] — parsers for a Python-like and a C-like loop-nest dialect.
//! * [`core`] — single-statement SOAP analysis (Lemmas 1–4, Eq. 9, tilings).
//! * [`sdg`] — the Symbolic Directed Graph and multi-statement bounds.
//! * [`pebbling`] — explicit CDAGs and the red-blue pebble game simulator.
//! * [`kernels`] — the 38 evaluated applications as SOAP programs.
//! * [`baselines`] — previously published bounds and a projection baseline.
//!
//! ## Quickstart
//!
//! ```
//! use soap::prelude::*;
//!
//! // Analyze matrix multiplication: C[i,j] += A[i,k] * B[k,j]
//! let program = soap::kernels::polybench::gemm();
//! let report = soap::sdg::analyze_program(&program).expect("analysis succeeds");
//! // The leading term of the bound is 2*N^3/sqrt(S) for square matrices.
//! println!("{}", report.bound);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use soap_baselines as baselines;
pub use soap_core as core;
pub use soap_frontend as frontend;
pub use soap_ir as ir;
pub use soap_kernels as kernels;
pub use soap_pebbling as pebbling;
pub use soap_sdg as sdg;
pub use soap_symbolic as symbolic;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use soap_core::{analyze_statement, AnalysisOptions, StatementAnalysis};
    pub use soap_ir::{
        ArrayAccess, IterationDomain, Program, ProgramBuilder, Statement, StatementBuilder,
    };
    pub use soap_sdg::{analyze_program, analyze_program_with, ProgramAnalysis, SdgOptions};
    pub use soap_symbolic::{Expr, Polynomial, Rational};
}
