//! Offline stand-in for a minimal HTTP/1.1 server and client (the role
//! `tiny_http`/`ureq` would play in an online build), written on plain
//! `std::net` so the workspace keeps building with no network access to a
//! registry.
//!
//! ## Scope
//!
//! Exactly the subset the `soap-serve` daemon and the `soap-bench` load
//! harness need, nothing more:
//!
//! * **Server** ([`Server::serve`]): a fixed pool of listener threads, each
//!   accepting one connection at a time and serving **keep-alive** request
//!   streams on it.  Requests are parsed into [`Request`] (method, path,
//!   query, headers, `Content-Length` body) and answered by a shared
//!   `Fn(&Request) -> Response` handler.  [`Server::stop`] unblocks the
//!   accept loops and joins every thread; in-flight requests finish first.
//! * **Client** ([`Client`]): a keep-alive connection that sends requests and
//!   parses responses, reconnecting once transparently when the server closed
//!   an idle connection.
//!
//! ## Deliberate non-features
//!
//! No TLS, no chunked transfer encoding (a request carrying
//! `Transfer-Encoding` is rejected with `411 Length Required`), no HTTP/2,
//! no routing — the handler sees every request.  Bodies are bounded by
//! [`MAX_BODY_BYTES`] (oversized requests get `413`), header blocks by
//! [`MAX_HEAD_BYTES`] (`431`), so a misbehaving peer cannot balloon server
//! memory.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Largest request/response body accepted (8 MiB — an order of magnitude
/// above the frontend's 1 MiB source limit, so the serving layer never
/// truncates a body the analysis would have accepted).
pub const MAX_BODY_BYTES: usize = 8 << 20;

/// Largest request/response head (request line + headers) accepted.
pub const MAX_HEAD_BYTES: usize = 64 << 10;

/// How often a blocked connection read wakes up to poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercased as received.
    pub method: String,
    /// Decoded path component of the request target (no query string).
    pub path: String,
    /// Raw query string (text after `?`), if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Look up a header by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Look up a query parameter by key, percent-decoded (`%XX` and `+`).
    pub fn query_param(&self, key: &str) -> Option<String> {
        let query = self.query.as_deref()?;
        for pair in query.split('&') {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            if percent_decode(k) == key {
                return Some(percent_decode(v));
            }
        }
        None
    }

    /// The body as UTF-8, if valid.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// One HTTP response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length` and `Connection` are added by the
    /// writer; do not set them here).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `application/json` response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status)
            .with_header("content-type", "application/json")
            .with_body(body)
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status)
            .with_header("content-type", "text/plain; charset=utf-8")
            .with_body(body)
    }

    /// Add a header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers
            .push((name.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// Set the body (builder style).
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Response {
        self.body = body.into();
        self
    }

    /// Look up a header by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if valid.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// The canonical reason phrase of a status code (the small set this
    /// workspace emits; anything else renders as `Status`).
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            411 => "Length Required",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Status",
        }
    }
}

/// The request handler a [`Server`] dispatches to: shared across listener
/// threads, one call per request.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync;

/// A running HTTP server: a bound listener plus its pool of listener threads.
///
/// Dropping the server stops it (see [`Server::stop`]).
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// requests on `threads` listener threads, each handling one keep-alive
    /// connection at a time.  Returns as soon as the listener is bound; the
    /// threads run until [`Server::stop`].
    pub fn serve(addr: &str, threads: usize, handler: Arc<Handler>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let threads = (1..=threads.max(1))
            .map(|i| {
                let listener = listener.try_clone()?;
                let shutdown = Arc::clone(&shutdown);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("httpd-{i}"))
                    .spawn(move || listen_loop(&listener, &shutdown, &handler))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Server {
            local_addr,
            shutdown,
            threads: Mutex::new(threads),
        })
    }

    /// The bound address (resolves the actual port of a `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, let in-flight requests finish, and join every listener
    /// thread.  Idempotent.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // lint:allow(unwrap-expect): a poisoned thread-registry lock means a connection thread panicked; fail-stop is the policy
        let threads: Vec<_> = std::mem::take(&mut *self.threads.lock().expect("not poisoned"));
        // Accept loops block in `accept`; poke each one awake with a no-op
        // connection so they observe the flag without an accept timeout.
        for _ in 0..threads.len() {
            let _ = TcpStream::connect(self.local_addr);
        }
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One listener thread: accept a connection, serve its request stream, loop.
fn listen_loop(listener: &TcpListener, shutdown: &AtomicBool, handler: &Arc<Handler>) {
    while !shutdown.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Keep-alive reads poll in POLL_INTERVAL slices so an idle connection
        // cannot pin the thread past a shutdown.
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let _ = stream.set_nodelay(true);
        let _ = serve_connection(stream, shutdown, handler);
    }
}

/// Serve one keep-alive connection until the peer closes, an error, an
/// explicit `Connection: close`, or a shutdown.
fn serve_connection(
    mut stream: TcpStream,
    shutdown: &AtomicBool,
    handler: &Arc<Handler>,
) -> io::Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let request = match read_message(&mut stream, &mut buf, shutdown, true) {
            Ok(Some(Parsed::Request(r))) => r,
            Ok(Some(Parsed::Response(_))) | Ok(None) => return Ok(()),
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return Ok(()),
            Err(ReadError::Malformed(status)) => {
                // A protocol-level error the handler never sees: answer with
                // the status and close (the stream position is unknown).
                let resp = Response::text(status, Response::reason(status));
                write_response(&mut stream, &resp, true)?;
                return Ok(());
            }
        };
        let close = request.header("connection").map(str::to_ascii_lowercase)
            == Some("close".to_string())
            || shutdown.load(Ordering::SeqCst);
        let response = handler(&request);
        write_response(&mut stream, &response, close)?;
        if close {
            return Ok(());
        }
    }
}

/// Serialize a response (status line, handler headers, framing headers,
/// body).
fn write_response(stream: &mut TcpStream, response: &Response, close: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\n",
        response.status,
        Response::reason(response.status)
    );
    for (k, v) in &response.headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n", response.body.len()));
    head.push_str(if close {
        "connection: close\r\n\r\n"
    } else {
        "connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Why reading a message off a connection stopped.
enum ReadError {
    /// Peer closed cleanly between messages.
    Closed,
    /// Transport error.
    Io(io::Error),
    /// Parse/limit failure, with the status code to answer with.
    Malformed(u16),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

/// A parsed inbound message: a request (server side) or response (client
/// side) — the head grammar differs only in the first line.
enum Parsed {
    Request(Request),
    Response(Response),
}

/// Read one HTTP message from `stream` into `parsed` form.  `buf` carries
/// bytes already read past the previous message (pipelining leftovers).
/// Returns `Ok(None)` only on a shutdown observed while idle between
/// messages.
fn read_message(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
    is_server: bool,
) -> Result<Option<Parsed>, ReadError> {
    let head_end = loop {
        if let Some(pos) = find_head_end(buf) {
            if pos > MAX_HEAD_BYTES {
                return Err(ReadError::Malformed(431));
            }
            break pos;
        }
        // No terminator within the limit: reject without waiting for one.
        if buf.len() > MAX_HEAD_BYTES + 3 {
            return Err(ReadError::Malformed(431));
        }
        if !fill(stream, buf, shutdown)? {
            return if buf.is_empty() {
                if shutdown.load(Ordering::SeqCst) {
                    Ok(None)
                } else {
                    Err(ReadError::Closed)
                }
            } else {
                Err(ReadError::Closed)
            };
        }
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| ReadError::Malformed(400))?;
    let mut lines = head.split("\r\n");
    let first = lines.next().ok_or(ReadError::Malformed(400))?.to_string();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':').ok_or(ReadError::Malformed(400))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    let header = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if header("transfer-encoding").is_some() {
        return Err(ReadError::Malformed(411));
    }
    let content_length: usize = match header("content-length") {
        Some(v) => v.trim().parse().map_err(|_| ReadError::Malformed(400))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::Malformed(413));
    }
    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        if !fill(stream, buf, shutdown)? {
            return Err(ReadError::Closed);
        }
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    buf.drain(..body_start + content_length);

    if is_server {
        // Request line: METHOD SP target SP HTTP/1.x
        let mut parts = first.split_ascii_whitespace();
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(ReadError::Malformed(400));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(ReadError::Malformed(400));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, Some(q.to_string())),
            None => (target, None),
        };
        Ok(Some(Parsed::Request(Request {
            method: method.to_ascii_uppercase(),
            path: percent_decode(path),
            query,
            headers,
            body,
        })))
    } else {
        // Status line: HTTP/1.x SP code SP reason
        let mut parts = first.split_ascii_whitespace();
        let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
            return Err(ReadError::Malformed(400));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(ReadError::Malformed(400));
        }
        let status: u16 = code.parse().map_err(|_| ReadError::Malformed(400))?;
        Ok(Some(Parsed::Response(Response {
            status,
            headers,
            body,
        })))
    }
}

/// The index of the `\r\n\r\n` terminating the message head, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Read more bytes into `buf`.  Returns `Ok(false)` on clean EOF; retries
/// read timeouts (polling the shutdown flag) so an idle keep-alive connection
/// neither spins nor outlives a stop.
fn fill(stream: &mut TcpStream, buf: &mut Vec<u8>, shutdown: &AtomicBool) -> io::Result<bool> {
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(false),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                return Ok(true);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Decode `%XX` escapes and `+` (space) in a URL component; invalid escapes
/// pass through verbatim.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A keep-alive HTTP client connection.
///
/// [`Client::request`] sends one request and reads the response.  When the
/// server closed the idle connection since the last exchange, the client
/// reconnects and retries once transparently — the pattern every ecosystem
/// keep-alive client implements.
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
    never_shutdown: AtomicBool,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        let mut client = Client {
            addr,
            stream: None,
            buf: Vec::new(),
            never_shutdown: AtomicBool::new(false),
        };
        client.reconnect()?;
        Ok(client)
    }

    fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        self.buf.clear();
        self.stream = Some(stream);
        Ok(())
    }

    /// Send `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.request("GET", path, None)
    }

    /// Send `POST path` with a body.
    pub fn post(&mut self, path: &str, content_type: &str, body: &[u8]) -> io::Result<Response> {
        self.request("POST", path, Some((content_type, body)))
    }

    /// Send one request and read the response, retrying once on a dead
    /// keep-alive connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<(&str, &[u8])>,
    ) -> io::Result<Response> {
        match self.try_request(method, path, body) {
            Ok(r) => Ok(r),
            Err(_) => {
                self.reconnect()?;
                self.try_request(method, path, body)
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<(&str, &[u8])>,
    ) -> io::Result<Response> {
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "not connected"))?;
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: {}\r\n", self.addr);
        let body_bytes = match body {
            Some((content_type, bytes)) => {
                head.push_str(&format!("content-type: {content_type}\r\n"));
                bytes
            }
            None => &[],
        };
        head.push_str(&format!("content-length: {}\r\n\r\n", body_bytes.len()));
        stream.write_all(head.as_bytes())?;
        stream.write_all(body_bytes)?;
        stream.flush()?;
        match read_message(stream, &mut self.buf, &self.never_shutdown, false) {
            Ok(Some(Parsed::Response(r))) => Ok(r),
            Ok(Some(Parsed::Request(_))) | Ok(None) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected message",
            )),
            Err(ReadError::Closed) => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "connection closed mid-response",
            )),
            Err(ReadError::Io(e)) => Err(e),
            Err(ReadError::Malformed(_)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed response",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> Server {
        Server::serve(
            "127.0.0.1:0",
            2,
            Arc::new(|req: &Request| {
                let body = format!(
                    "{} {} q={} body={}",
                    req.method,
                    req.path,
                    req.query.as_deref().unwrap_or(""),
                    req.body_utf8().unwrap_or("<binary>"),
                );
                Response::text(200, body)
            }),
        )
        .expect("bind")
    }

    #[test]
    fn keep_alive_roundtrips() {
        let server = echo_server();
        let mut client = Client::connect(server.local_addr()).expect("connect");
        for i in 0..5 {
            let resp = client
                .post(&format!("/x/{i}?a=1&b=two"), "text/plain", b"payload")
                .expect("request");
            assert_eq!(resp.status, 200);
            assert_eq!(
                resp.body_utf8().unwrap(),
                format!("POST /x/{i} q=a=1&b=two body=payload")
            );
        }
        server.stop();
    }

    #[test]
    fn query_params_decode() {
        let req = Request {
            method: "GET".to_string(),
            path: "/analyze".to_string(),
            query: Some("kernel=atax&name=my%20prog+x".to_string()),
            headers: vec![],
            body: vec![],
        };
        assert_eq!(req.query_param("kernel").as_deref(), Some("atax"));
        assert_eq!(req.query_param("name").as_deref(), Some("my prog x"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn stop_unblocks_and_joins() {
        let server = echo_server();
        let addr = server.local_addr();
        server.stop();
        // A fresh connection after stop must fail to elicit a response.
        assert!(Client::connect(addr).and_then(|mut c| c.get("/")).is_err());
    }

    #[test]
    fn oversized_head_rejected() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let huge = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        stream.write_all(huge.as_bytes()).expect("write");
        let mut text = String::new();
        let _ = stream.read_to_string(&mut text);
        assert!(text.starts_with("HTTP/1.1 431"), "{text}");
        server.stop();
    }
}
