//! Sparse multivariate polynomials over [`Rational`].
//!
//! Polynomials are the workhorse for **exact iteration-domain counting**:
//! the cardinality `|D|` of a (possibly triangular/trapezoidal) loop nest is
//! obtained by repeatedly summing the trip-count polynomial of the innermost
//! loop over its affine bounds (Faulhaber summation), exactly as one would do
//! by hand for Cholesky (`≈ N³/6`), LU (`≈ N³/3`), or Floyd–Warshall (`N³`).

use crate::expr::Expr;
use crate::rational::Rational;
use std::collections::BTreeMap;
use std::fmt;

/// A monomial: a map from symbol name to (positive) integer exponent.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial(pub BTreeMap<String, u32>);

impl Monomial {
    /// The empty monomial (the constant 1).
    pub fn unit() -> Self {
        Monomial(BTreeMap::new())
    }

    /// A single variable to the first power.
    pub fn var(name: &str) -> Self {
        let mut m = BTreeMap::new();
        m.insert(name.to_string(), 1);
        Monomial(m)
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut out = self.0.clone();
        for (k, v) in &other.0 {
            *out.entry(k.clone()).or_insert(0) += v;
        }
        Monomial(out)
    }

    /// Total degree.
    pub fn degree(&self) -> u32 {
        self.0.values().sum()
    }

    /// Degree in a single variable.
    pub fn degree_of(&self, var: &str) -> u32 {
        self.0.get(var).copied().unwrap_or(0)
    }

    /// Remove a variable, returning the removed exponent.
    fn without(&self, var: &str) -> (Monomial, u32) {
        let mut m = self.0.clone();
        let d = m.remove(var).unwrap_or(0);
        (Monomial(m), d)
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "1");
        }
        let parts: Vec<String> = self
            .0
            .iter()
            .map(|(k, v)| {
                if *v == 1 {
                    k.clone()
                } else {
                    format!("{}^{}", k, v)
                }
            })
            .collect();
        write!(f, "{}", parts.join("*"))
    }
}

/// A sparse multivariate polynomial with rational coefficients.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Polynomial {
    /// Mapping monomial → coefficient; zero coefficients are never stored.
    terms: BTreeMap<Monomial, Rational>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial {
            terms: BTreeMap::new(),
        }
    }

    /// The constant-one polynomial.
    pub fn one() -> Self {
        Polynomial::constant(Rational::ONE)
    }

    /// A constant polynomial.
    pub fn constant(r: Rational) -> Self {
        let mut terms = BTreeMap::new();
        if !r.is_zero() {
            terms.insert(Monomial::unit(), r);
        }
        Polynomial { terms }
    }

    /// An integer constant polynomial.
    pub fn int(n: i64) -> Self {
        Polynomial::constant(Rational::int(n as i128))
    }

    /// The polynomial consisting of a single variable.
    pub fn var(name: &str) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(Monomial::var(name), Rational::ONE);
        Polynomial { terms }
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value if the polynomial has no variables.
    pub fn as_constant(&self) -> Option<Rational> {
        if self.terms.is_empty() {
            return Some(Rational::ZERO);
        }
        if self.terms.len() == 1 {
            if let Some(c) = self.terms.get(&Monomial::unit()) {
                return Some(*c);
            }
        }
        None
    }

    /// Iterate over `(monomial, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, &Rational)> {
        self.terms.iter()
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    fn insert(&mut self, m: Monomial, c: Rational) {
        if c.is_zero() {
            return;
        }
        let entry = self.terms.entry(m).or_insert(Rational::ZERO);
        *entry += c;
        if entry.is_zero() {
            // Re-fetch key to remove; easier: rebuild below. Use retain at end of ops instead.
        }
    }

    fn normalize(mut self) -> Self {
        self.terms.retain(|_, c| !c.is_zero());
        self
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let mut out = self.clone();
        for (m, c) in &other.terms {
            out.insert(m.clone(), *c);
        }
        out.normalize()
    }

    /// Polynomial subtraction.
    pub fn sub(&self, other: &Polynomial) -> Polynomial {
        self.add(&other.scale(Rational::int(-1)))
    }

    /// Multiply by a rational constant.
    pub fn scale(&self, r: Rational) -> Polynomial {
        if r.is_zero() {
            return Polynomial::zero();
        }
        Polynomial {
            terms: self
                .terms
                .iter()
                .map(|(m, c)| (m.clone(), *c * r))
                .collect(),
        }
    }

    /// Polynomial multiplication.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                out.insert(m1.mul(m2), *c1 * *c2);
            }
        }
        out.normalize()
    }

    /// Raise to a non-negative integer power.
    pub fn pow(&self, e: u32) -> Polynomial {
        let mut out = Polynomial::one();
        for _ in 0..e {
            out = out.mul(self);
        }
        out
    }

    /// Total degree (maximum over terms).
    pub fn total_degree(&self) -> u32 {
        self.terms.keys().map(|m| m.degree()).max().unwrap_or(0)
    }

    /// Free variables of the polynomial.
    pub fn variables(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .terms
            .keys()
            .flat_map(|m| m.0.keys().cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Substitute a variable with another polynomial.
    pub fn substitute(&self, var: &str, value: &Polynomial) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m, c) in &self.terms {
            let (rest, d) = m.without(var);
            let mut term = Polynomial {
                terms: BTreeMap::from([(rest, *c)]),
            };
            term = term.mul(&value.pow(d));
            out = out.add(&term);
        }
        out
    }

    /// Evaluate under floating-point bindings; unbound variables yield `None`.
    pub fn eval(&self, bindings: &BTreeMap<String, f64>) -> Option<f64> {
        let mut acc = 0.0;
        for (m, c) in &self.terms {
            let mut t = c.to_f64();
            for (v, e) in &m.0 {
                let x = *bindings.get(v)?;
                t *= x.powi(*e as i32);
            }
            acc += t;
        }
        Some(acc)
    }

    /// Convert the polynomial into an [`Expr`].
    pub fn to_expr(&self) -> Expr {
        Expr::sum(self.terms.iter().map(|(m, c)| {
            let mut factors = vec![Expr::num(*c)];
            for (v, e) in &m.0 {
                factors.push(Expr::sym(v.clone()).pow(Rational::int(*e as i128)));
            }
            Expr::product(factors)
        }))
    }

    /// Keep only the terms of maximal total degree in the given variables
    /// (others are treated as degree 0).  This is the asymptotic leading term
    /// when all listed symbols tend to infinity at the same rate.
    pub fn leading_terms(&self, size_vars: &[String]) -> Polynomial {
        let deg = |m: &Monomial| -> u32 {
            m.0.iter()
                .filter(|(v, _)| size_vars.iter().any(|s| s == *v))
                .map(|(_, e)| *e)
                .sum()
        };
        let max_deg = self.terms.keys().map(deg).max().unwrap_or(0);
        Polynomial {
            terms: self
                .terms
                .iter()
                .filter(|(m, _)| deg(m) == max_deg)
                .map(|(m, c)| (m.clone(), *c))
                .collect(),
        }
    }

    /// Decompose as a univariate polynomial in `var`: returns coefficients
    /// `q_k` (polynomials in the remaining variables) such that
    /// `self = Σ_k q_k · var^k`.
    pub fn coefficients_in(&self, var: &str) -> Vec<Polynomial> {
        let max_deg = self
            .terms
            .keys()
            .map(|m| m.degree_of(var))
            .max()
            .unwrap_or(0) as usize;
        let mut out = vec![Polynomial::zero(); max_deg + 1];
        for (m, c) in &self.terms {
            let (rest, d) = m.without(var);
            out[d as usize].insert(rest, *c);
        }
        out.into_iter().map(|p| p.normalize()).collect()
    }

    /// Exact symbolic sum `Σ_{var = lo}^{hi} self` (inclusive bounds).
    ///
    /// `lo` and `hi` must not contain `var`.  Uses Faulhaber's formula, which
    /// holds as a polynomial identity for all integer bounds, so triangular
    /// domains (e.g. `for j in k+1..N`) are counted exactly.
    pub fn sum_over(&self, var: &str, lo: &Polynomial, hi: &Polynomial) -> Polynomial {
        assert!(
            !lo.variables().iter().any(|v| v == var) && !hi.variables().iter().any(|v| v == var),
            "summation bounds must not reference the summation variable"
        );
        let coeffs = self.coefficients_in(var);
        let lo_minus_1 = lo.sub(&Polynomial::one());
        let mut out = Polynomial::zero();
        for (k, q) in coeffs.iter().enumerate() {
            if q.is_zero() {
                continue;
            }
            // F_k(n) = Σ_{i=1}^{n} i^k  as a univariate polynomial in the
            // placeholder variable `__n`.
            let f = faulhaber(k as u32);
            let upper = f.substitute("__n", hi);
            let lower = f.substitute("__n", &lo_minus_1);
            out = out.add(&q.mul(&upper.sub(&lower)));
        }
        out
    }
}

/// Bernoulli numbers with the `B⁺` convention (`B₁ = +1/2`), as used in
/// Faulhaber's formula for `Σ_{i=1}^{n} i^k`.
fn bernoulli_plus(upto: usize) -> Vec<Rational> {
    // Compute B⁻ via the standard recurrence, then flip the sign of B₁.
    let mut b = vec![Rational::ZERO; upto + 1];
    b[0] = Rational::ONE;
    for m in 1..=upto {
        // B_m = -1/(m+1) * Σ_{j=0}^{m-1} C(m+1, j) B_j
        let mut acc = Rational::ZERO;
        for (j, bj) in b.iter().enumerate().take(m) {
            acc += Rational::int(binom(m as i128 + 1, j as i128)) * *bj;
        }
        b[m] = -acc / Rational::int(m as i128 + 1);
    }
    if upto >= 1 {
        b[1] = Rational::new(1, 2);
    }
    b
}

fn binom(n: i128, k: i128) -> i128 {
    if k < 0 || k > n {
        return 0;
    }
    let mut out = 1i128;
    for i in 0..k {
        out = out * (n - i) / (i + 1);
    }
    out
}

/// Faulhaber polynomial `F_k(__n) = Σ_{i=1}^{__n} i^k`.
fn faulhaber(k: u32) -> Polynomial {
    let b = bernoulli_plus(k as usize);
    let n = Polynomial::var("__n");
    let mut out = Polynomial::zero();
    for (j, bj) in b.iter().enumerate().take(k as usize + 1) {
        if bj.is_zero() {
            continue;
        }
        let coeff =
            *bj * Rational::int(binom(k as i128 + 1, j as i128)) / Rational::int(k as i128 + 1);
        out = out.add(&n.pow(k + 1 - j as u32).scale(coeff));
    }
    out
}

impl fmt::Debug for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_expr())
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_expr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n() -> Polynomial {
        Polynomial::var("N")
    }

    #[test]
    fn basic_arithmetic() {
        let p = n().mul(&n()).add(&Polynomial::int(3).mul(&n()));
        assert_eq!(p.total_degree(), 2);
        let q = p.sub(&p);
        assert!(q.is_zero());
    }

    #[test]
    fn substitution_composes() {
        // (x+1)^2 with x := N-1  =>  N^2
        let x = Polynomial::var("x");
        let p = x.add(&Polynomial::one()).pow(2);
        let sub = p.substitute("x", &n().sub(&Polynomial::one()));
        assert_eq!(sub, n().pow(2));
    }

    #[test]
    fn faulhaber_small_cases() {
        // F_1(n) = n(n+1)/2
        let f1 = faulhaber(1);
        let mut b = BTreeMap::new();
        b.insert("__n".to_string(), 10.0);
        assert_eq!(f1.eval(&b).unwrap(), 55.0);
        // F_2(10) = 385
        let f2 = faulhaber(2);
        assert_eq!(f2.eval(&b).unwrap(), 385.0);
        // F_3(10) = 3025
        let f3 = faulhaber(3);
        assert_eq!(f3.eval(&b).unwrap(), 3025.0);
    }

    #[test]
    fn sum_over_rectangle() {
        // Σ_{i=0}^{N-1} 1 = N
        let count =
            Polynomial::one().sum_over("i", &Polynomial::zero(), &n().sub(&Polynomial::one()));
        assert_eq!(count, n());
    }

    #[test]
    fn sum_over_triangle_matches_closed_form() {
        // Σ_{k=0}^{N-1} Σ_{i=k+1}^{N-1} Σ_{j=k+1}^{N-1} 1
        //   = Σ_k (N-1-k)^2 = (N-1)N(2N-1)/6
        let k = Polynomial::var("k");
        let inner = Polynomial::one()
            .sum_over(
                "j",
                &k.add(&Polynomial::one()),
                &n().sub(&Polynomial::one()),
            )
            .sum_over(
                "i",
                &k.add(&Polynomial::one()),
                &n().sub(&Polynomial::one()),
            )
            .sum_over("k", &Polynomial::zero(), &n().sub(&Polynomial::one()));
        let mut b = BTreeMap::new();
        b.insert("N".to_string(), 20.0);
        // direct brute force
        let mut brute = 0.0;
        for kk in 0..20 {
            for _i in kk + 1..20 {
                for _j in kk + 1..20 {
                    brute += 1.0;
                }
            }
        }
        assert_eq!(inner.eval(&b).unwrap(), brute);
        // leading term is N^3/3
        let lead = inner.leading_terms(&["N".to_string()]);
        assert_eq!(lead, n().pow(3).scale(Rational::new(1, 3)));
    }

    #[test]
    fn coefficients_in_variable() {
        // p = 2*i^2*N + 3*i + 5
        let i = Polynomial::var("i");
        let p = i
            .pow(2)
            .mul(&n())
            .scale(Rational::int(2))
            .add(&i.scale(Rational::int(3)))
            .add(&Polynomial::int(5));
        let coeffs = p.coefficients_in("i");
        assert_eq!(coeffs.len(), 3);
        assert_eq!(coeffs[0], Polynomial::int(5));
        assert_eq!(coeffs[1], Polynomial::int(3));
        assert_eq!(coeffs[2], n().scale(Rational::int(2)));
    }

    #[test]
    fn leading_terms_respect_size_vars_only() {
        // N^2 + N*S + 7  with size var N: N^2 has degree 2, N*S degree 1.
        let p = n()
            .pow(2)
            .add(&n().mul(&Polynomial::var("S")))
            .add(&Polynomial::int(7));
        let lead = p.leading_terms(&["N".to_string()]);
        assert_eq!(lead, n().pow(2));
    }

    #[test]
    fn to_expr_round_trips_numerically() {
        let p = n().pow(3).scale(Rational::new(2, 3)).add(&n());
        let e = p.to_expr();
        let mut b = BTreeMap::new();
        b.insert("N".to_string(), 6.0);
        assert_eq!(p.eval(&b), e.eval(&b));
    }
}
