//! Regenerates the Polybench block of Table 2 (the bound derivation itself is
//! the benchmarked operation; the derived-vs-paper comparison is printed once
//! and recorded in EXPERIMENTS.md via the `table2` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use soap_bench::{build_row, table2};
use soap_kernels::KernelGroup;

fn bench_polybench(c: &mut Criterion) {
    // Print the reproduced rows once so `cargo bench` output doubles as the
    // experiment record.
    let rows = table2(Some(KernelGroup::Polybench));
    println!("{}", soap_bench::render_table(&rows));

    let mut group = c.benchmark_group("table2/polybench");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for name in ["gemm", "cholesky", "jacobi-2d", "heat-3d", "atax"] {
        let entry = soap_kernels::by_name(name).unwrap();
        group.bench_function(name, |b| b.iter(|| build_row(&entry)));
    }
    group.finish();
}

criterion_group!(benches, bench_polybench);
criterion_main!(benches);
