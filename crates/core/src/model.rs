//! The dominator/subcomputation optimization model and its solution.
//!
//! An [`AccessModel`] is the optimization problem (8) of the paper for a
//! single (or merged, see `soap-sdg`) SOAP statement: maximize the
//! subcomputation size `χ(D)` subject to the dominator-set bound
//! `g(D) ≤ X`.  Solving it yields the computational intensity
//! `ρ(S) = min_X χ(X)/(X−S)`, the optimal `X₀`, and the optimal tile shape.

use crate::AnalysisError;
use soap_symbolic::{
    lp, ClosedForm, CompiledConstraint, CompiledPosynomial, ConstrainedProduct, Deadline, Expr,
    Rational, SolveInfo, POWER_LAW_PROBES,
};

/// The optimization model for one (possibly merged) statement.
#[derive(Clone, Debug)]
pub struct AccessModel {
    /// Human-readable name (statement or SDG-subgraph name).
    pub name: String,
    /// Tile variables (`D_<var>`), one per iteration variable.
    pub tile_variables: Vec<String>,
    /// The subcomputation-size objective `χ(D)` (Lemma 1; a sum of products
    /// for merged multi-statement subgraphs).
    pub objective: Expr,
    /// The dominator-size expression `g(D) = Σ_j |A_j(D)|` (Lemma 3 /
    /// Corollary 1 terms).
    pub dominator: Expr,
    /// Iteration-variable index sets of each dominator term, used for the
    /// exact exponent LP cross-check (empty entries are permitted).
    pub access_index_sets: Vec<Vec<usize>>,
}

/// The solved intensity information of an [`AccessModel`].
#[derive(Clone, Debug)]
pub struct IntensityResult {
    /// The model name.
    pub name: String,
    /// σ: the exponent of `χ(X) = c·X^σ`.
    pub sigma: Rational,
    /// c: the constant of the power law.
    pub chi_coeff: f64,
    /// The computational intensity `ρ(S)` as a symbolic expression in `S`.
    pub rho: Expr,
    /// `X₀ = σ·S/(σ−1)` (None when σ ≤ 1, i.e. the optimum is X → ∞).
    pub x0: Option<Expr>,
    /// Tile-shape exponents: for each tile variable, the exponent `x_t` such
    /// that the optimal `|D_t| ∝ X^{x_t}`.
    pub tile_exponents: Vec<(String, Rational)>,
    /// Tile-shape coefficients `α_t` such that `|D_t| ≈ α_t·X^{x_t}` at the
    /// optimum.
    pub tile_coeffs: Vec<(String, f64)>,
}

impl IntensityResult {
    /// Numeric intensity at a concrete fast-memory size `S` (words).
    ///
    /// Allocation-free: `ρ` only ever mentions the symbol `S`, so the single
    /// binding avoids building a `BTreeMap` per call.
    pub fn rho_at(&self, s: f64) -> f64 {
        self.rho.eval_single("S", s).unwrap_or(f64::NAN)
    }

    /// Concrete optimal tile sizes for a given fast-memory size `S`.
    ///
    /// Substitutes `X₀(S)` into the fitted per-variable power laws; when σ ≤ 1
    /// there is no finite `X₀` and the tiles grow with the full problem, so
    /// `None` is returned.
    pub fn tiles_at(&self, s: f64) -> Option<Vec<(String, f64)>> {
        let x0 = self.x0.as_ref()?;
        let x0v = x0.eval_single("S", s)?;
        Some(
            self.tile_exponents
                .iter()
                .zip(&self.tile_coeffs)
                .map(|((name, e), (_, a))| (name.clone(), (a * x0v.powf(e.to_f64())).max(1.0)))
                .collect(),
        )
    }
}

/// Solve an [`AccessModel`]: fit the power law of `χ(X)`, cross-check the
/// exponent against the exact access LP when available, and assemble the
/// symbolic intensity.
///
/// The objective and dominator are compiled once into posynomial form inside
/// [`ConstrainedProduct::new`]; all three power-law probes and the tile-shape
/// solve reuse the compiled arrays.
pub fn solve_model(model: &AccessModel) -> Result<IntensityResult, AnalysisError> {
    solve_model_instrumented(model).0
}

/// [`solve_model`] plus the aggregated KKT accounting of all its probe
/// solves — the cross-subgraph cache uses the accounting to surface
/// iteration-budget exhaustion in `SolverSummary`.
pub fn solve_model_instrumented(
    model: &AccessModel,
) -> (Result<IntensityResult, AnalysisError>, SolveInfo) {
    solve_model_impl(model, ProblemBuild::Compiled, None)
}

/// [`solve_model_instrumented`] under an optional [`Deadline`]: the KKT loops
/// poll the deadline and the whole solve returns
/// [`AnalysisError::Cancelled`] when the budget expires mid-solve.
pub fn solve_model_instrumented_governed(
    model: &AccessModel,
    deadline: Option<&Deadline>,
) -> (Result<IntensityResult, AnalysisError>, SolveInfo) {
    solve_model_impl(model, ProblemBuild::Compiled, deadline)
}

/// [`solve_model`] with both sides already compiled (the solve cache compiles
/// them for its canonical key); skips the duplicate compilation of
/// [`ConstrainedProduct::new`] but takes exactly the same numeric path.
pub fn solve_model_precompiled(
    model: &AccessModel,
    objective: CompiledPosynomial,
    dominator: CompiledConstraint,
) -> (Result<IntensityResult, AnalysisError>, SolveInfo) {
    solve_model_precompiled_governed(model, objective, dominator, None)
}

/// [`solve_model_precompiled`] under an optional [`Deadline`].
pub fn solve_model_precompiled_governed(
    model: &AccessModel,
    objective: CompiledPosynomial,
    dominator: CompiledConstraint,
    deadline: Option<&Deadline>,
) -> (Result<IntensityResult, AnalysisError>, SolveInfo) {
    solve_model_impl(
        model,
        ProblemBuild::Precompiled(Box::new((objective, dominator))),
        deadline,
    )
}

/// [`solve_model`] forced down the retained `Expr`-eval solver path
/// (finite-difference gradients, bisection projection) — the differential
/// baseline the compiled path is pinned against.
pub fn solve_model_reference(model: &AccessModel) -> Result<IntensityResult, AnalysisError> {
    solve_model_impl(model, ProblemBuild::Reference, None).0
}

/// How [`solve_model_impl`] constructs its [`ConstrainedProduct`].
enum ProblemBuild {
    Compiled,
    Precompiled(Box<(CompiledPosynomial, CompiledConstraint)>),
    Reference,
}

fn solve_model_impl(
    model: &AccessModel,
    build: ProblemBuild,
    deadline: Option<&Deadline>,
) -> (Result<IntensityResult, AnalysisError>, SolveInfo) {
    let mut info = SolveInfo::default();
    let result = solve_model_inner(model, build, &mut info, deadline);
    (result, info)
}

/// The [`AnalysisError`] for a deadline that expired inside a model solve.
fn cancelled(model: &AccessModel) -> AnalysisError {
    AnalysisError::Cancelled(format!("deadline expired while solving {}", model.name))
}

fn solve_model_inner(
    model: &AccessModel,
    build: ProblemBuild,
    info: &mut SolveInfo,
    deadline: Option<&Deadline>,
) -> Result<IntensityResult, AnalysisError> {
    if model.tile_variables.is_empty() {
        return Err(AnalysisError::InvalidStatement(format!(
            "model {} has no tile variables",
            model.name
        )));
    }
    if model.dominator.is_zero() {
        return Err(AnalysisError::NoInputs(model.name.clone()));
    }
    let problem = match build {
        ProblemBuild::Compiled => ConstrainedProduct::new(
            model.tile_variables.clone(),
            model.objective.clone(),
            model.dominator.clone(),
        ),
        ProblemBuild::Precompiled(compiled) => {
            let (objective, dominator) = *compiled;
            ConstrainedProduct::from_compiled(
                model.tile_variables.clone(),
                model.objective.clone(),
                model.dominator.clone(),
                objective,
                dominator,
            )
        }
        ProblemBuild::Reference => ConstrainedProduct::new_reference(
            model.tile_variables.clone(),
            model.objective.clone(),
            model.dominator.clone(),
        ),
    };
    let (mut law, fit_info, fit_extents) = problem
        .fit_power_law_governed(deadline)
        .map_err(|_| cancelled(model))?;
    info.absorb(fit_info);
    if !law.coeff.is_finite() || law.coeff <= 0.0 {
        return Err(AnalysisError::NumericalFailure(format!(
            "power-law fit failed for {} (coeff = {})",
            model.name, law.coeff
        )));
    }

    // Cross-check σ with the exact exponent LP when the dominator consists of
    // pure product terms (all index sets provided).  The LP is exact rational
    // arithmetic, so when the two disagree slightly we trust the LP.
    if !model.access_index_sets.is_empty() && model.access_index_sets.iter().all(|s| !s.is_empty())
    {
        let lp_sol = lp::access_exponent_lp(model.tile_variables.len(), &model.access_index_sets);
        let diff = (lp_sol.value.to_f64() - law.exponent.to_f64()).abs();
        if diff > 1e-9 && diff < 0.15 {
            law.exponent = lp_sol.value;
        }
    }

    // Per-variable tile shape from a large-X solve, warm-started from the
    // final power-law probe (the same problem at a nearby X).  The exponent
    // is fitted from *two* points — this solve (X = 1e8) and the last
    // power-law probe (X = 1.6e8), whose extents are already in hand — via
    // `ln(e₂/e₁)/ln(X₂/X₁)`: the single-point estimate `ln(extent)/ln(X)`
    // converges only like `1/ln X` (a tile `D = X/2` reads 0.962 at X = 1e8,
    // which snaps to exponent 0 with a huge coefficient instead of exponent 1
    // with coefficient 1/2), while the two-point ratio cancels the constant
    // exactly and costs no extra solve.
    let x_probe = 1.0e8;
    // lint:allow(unwrap-expect): POWER_LAW_PROBES is a non-empty const table
    let x_fit = *POWER_LAW_PROBES.last().expect("probes are non-empty");
    let (sol, probe_info) = problem
        .solve_seeded_governed(x_probe, Some(&fit_extents), deadline)
        .map_err(|_| cancelled(model))?;
    info.absorb(probe_info);
    let mut tile_exponents = Vec::new();
    let mut tile_coeffs = Vec::new();
    for ((name, extent), fit_extent) in model
        .tile_variables
        .iter()
        .zip(&sol.extents)
        .zip(&fit_extents)
    {
        let raw = (fit_extent / extent).ln() / (x_fit / x_probe).ln();
        let e = Rational::approximate(raw, 12, 0.03)
            .or_else(|| Rational::approximate(raw, 48, 0.05))
            .unwrap_or(Rational::ZERO);
        let coeff = extent / x_probe.powf(e.to_f64());
        let coeff_cf = ClosedForm::recognize(coeff);
        tile_exponents.push((name.clone(), e));
        tile_coeffs.push((name.clone(), coeff_cf.value()));
    }

    let rho = law.intensity();
    let x0 = law.optimal_x();
    Ok(IntensityResult {
        name: model.name.clone(),
        sigma: law.exponent,
        chi_coeff: law.coeff,
        rho,
        x0,
        tile_exponents,
        tile_coeffs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_size::tile_var;

    fn dv(v: &str) -> Expr {
        Expr::sym(tile_var(v))
    }

    #[test]
    fn mmm_model_solves_to_half_sqrt_s() {
        let model = AccessModel {
            name: "mmm".into(),
            tile_variables: vec![tile_var("i"), tile_var("j"), tile_var("k")],
            objective: dv("i").mul(dv("j")).mul(dv("k")),
            dominator: dv("i")
                .mul(dv("k"))
                .add(dv("k").mul(dv("j")))
                .add(dv("i").mul(dv("j"))),
            access_index_sets: vec![vec![0, 2], vec![2, 1], vec![0, 1]],
        };
        let res = solve_model(&model).unwrap();
        assert_eq!(res.sigma, Rational::new(3, 2));
        assert!((res.rho_at(10_000.0) - 50.0).abs() < 1.0);
        // X0 = 3S; tiles at S=10000 are ~sqrt(X0/3) = 100 each.
        let tiles = res.tiles_at(10_000.0).unwrap();
        for (_, t) in tiles {
            assert!((t - 100.0).abs() < 5.0, "tile size {t}");
        }
    }

    #[test]
    fn linear_tile_exponents_snap_to_one_not_zero() {
        // Regression (ROADMAP open item): χ = Di·Dt, g = Di + 2·Dt has the
        // optimal tiles Di = X/2, Dt = X/4.  The single-point estimate
        // ln(X/2)/ln(X) ≈ 0.962 at X = 1e8 missed every denominator-≤12
        // rational within 0.03 and fell back to exponent 0 with coefficient
        // ~5e7; the two-point fit must recover exponent 1 with coefficients
        // 1/2 and 1/4.
        let model = AccessModel {
            name: "stencil-tiles".into(),
            tile_variables: vec![tile_var("i"), tile_var("t")],
            objective: dv("i").mul(dv("t")),
            dominator: dv("i").add(Expr::int(2).mul(dv("t"))),
            access_index_sets: vec![],
        };
        let res = solve_model(&model).unwrap();
        assert_eq!(res.sigma, Rational::int(2));
        for (name, e) in &res.tile_exponents {
            assert_eq!(*e, Rational::ONE, "tile exponent of {name}");
        }
        let coeffs: std::collections::BTreeMap<&str, f64> = res
            .tile_coeffs
            .iter()
            .map(|(n, c)| (n.as_str(), *c))
            .collect();
        assert!(
            (coeffs["D_i"] - 0.5).abs() < 1e-6,
            "D_i coeff {}",
            coeffs["D_i"]
        );
        assert!(
            (coeffs["D_t"] - 0.25).abs() < 1e-6,
            "D_t coeff {}",
            coeffs["D_t"]
        );
        // Sane concrete tiles now: X₀ = 2S, so Di = S and Dt = S/2.
        let tiles: std::collections::BTreeMap<String, f64> =
            res.tiles_at(1000.0).unwrap().into_iter().collect();
        assert!((tiles["D_i"] - 1000.0).abs() / 1000.0 < 0.01);
        assert!((tiles["D_t"] - 500.0).abs() / 500.0 < 0.01);
    }

    #[test]
    fn empty_dominator_is_rejected() {
        let model = AccessModel {
            name: "empty".into(),
            tile_variables: vec![tile_var("i")],
            objective: dv("i"),
            dominator: Expr::zero(),
            access_index_sets: vec![],
        };
        assert!(matches!(
            solve_model(&model),
            Err(AnalysisError::NoInputs(_))
        ));
    }

    #[test]
    fn merged_objective_with_two_statements() {
        // Two fused GEMV-like statements sharing the A tile: χ = 2·Di·Dj,
        // g = Di·Dj + Di + Dj  =>  ρ → 2 (σ = 1).
        let chi = Expr::int(2).mul(dv("i").mul(dv("j")));
        let g = dv("i").mul(dv("j")).add(dv("i")).add(dv("j"));
        let model = AccessModel {
            name: "fused-gemv".into(),
            tile_variables: vec![tile_var("i"), tile_var("j")],
            objective: chi,
            dominator: g,
            access_index_sets: vec![],
        };
        let res = solve_model(&model).unwrap();
        assert_eq!(res.sigma, Rational::ONE);
        assert!((res.rho_at(64.0) - 2.0).abs() < 0.05);
        assert!(res.x0.is_none());
        assert!(res.tiles_at(64.0).is_none());
    }
}
