//! Model-checked invariants of the serve admission `Gate` and the bounded
//! `ResponseMemo` (see `src/lib.rs`) — including the regression models for
//! the PR 9 FIFO eviction bound and the 429 accounting.
//!
//! Each invariant comes in two flavours: the faithful port of the production
//! locking protocol, which must pass every explored schedule, and a
//! deliberately broken **mutation twin** reintroducing the bug class the
//! protocol guards against — the checker must find a failing schedule for it,
//! or the pass on the correct variant would be vacuous.

use interleave::atomic::AtomicUsize;
use interleave::sync::{Condvar, Mutex};
use interleave::{thread, Model};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Admission gate (lib.rs::Gate): at most `slots` running, at most `queue`
// more waiting, everything beyond rejected immediately with the observed
// queue depth (the 429 path).
// ---------------------------------------------------------------------------

/// How the mutated variants break the protocol.
#[derive(Clone, Copy, PartialEq)]
enum GateBug {
    /// Faithful port.
    None,
    /// MUTATION: the permit release forgets `notify_one` — a queued waiter
    /// sleeps forever.
    NoNotify,
    /// MUTATION: the full-check uses `>` instead of `>=` — one request too
    /// many slips past the cap into the queue.
    OffByOne,
}

struct GateModel {
    state: Mutex<GateState>,
    cond: Condvar,
    slots: usize,
    queue: usize,
    bug: GateBug,
    /// Analyses currently executing (the invariant mirror of `running`).
    executing: AtomicUsize,
}

#[derive(Clone, Copy, Default)]
struct GateState {
    running: usize,
    queued: usize,
}

impl GateModel {
    fn new(slots: usize, queue: usize, bug: GateBug) -> GateModel {
        GateModel {
            state: Mutex::new(GateState::default()),
            cond: Condvar::new(),
            slots,
            queue,
            bug,
            executing: AtomicUsize::new(0),
        }
    }

    /// Port of `Gate::admit` + the analysis + `GatePermit::drop`.  Returns
    /// true when admitted, false when rejected (the 429 path).
    fn admit_and_run(&self) -> bool {
        {
            let mut st = self.state.lock();
            let full = if self.bug == GateBug::OffByOne {
                st.running + st.queued > self.slots + self.queue
            } else {
                st.running + st.queued >= self.slots + self.queue
            };
            if full {
                return false;
            }
            if st.running < self.slots {
                st.running += 1;
            } else {
                st.queued += 1;
                assert!(
                    st.queued <= self.queue,
                    "queue depth {} exceeds queue capacity {}",
                    st.queued,
                    self.queue
                );
                while st.running >= self.slots {
                    st = self.cond.wait(st);
                }
                st.queued -= 1;
                st.running += 1;
            }
        }
        // The admitted analysis runs outside the gate lock, holding a slot.
        let concurrent = self.executing.fetch_add(1, Ordering::SeqCst);
        assert!(
            concurrent < self.slots,
            "{} analyses executing with only {} slots",
            concurrent + 1,
            self.slots
        );
        self.executing.fetch_sub(1, Ordering::SeqCst);
        // GatePermit::drop.
        let mut st = self.state.lock();
        st.running -= 1;
        drop(st);
        if self.bug != GateBug::NoNotify {
            self.cond.notify_one();
        }
        true
    }
}

/// Run `requesters` concurrent requests (the root model thread is requester
/// 0) against a gate with the given caps, returning the per-request
/// admitted/rejected outcomes after asserting the gate drained to zero.
fn gate_model(bug: GateBug, slots: usize, queue: usize, requesters: usize) -> Vec<bool> {
    let gate = Arc::new(GateModel::new(slots, queue, bug));
    let threads: Vec<_> = (1..requesters)
        .map(|_| {
            let gate = Arc::clone(&gate);
            thread::spawn(move || gate.admit_and_run())
        })
        .collect();
    let here = gate.admit_and_run();
    let mut outcomes = vec![here];
    outcomes.extend(threads.into_iter().map(|t| t.join()));
    // 429 accounting reconciles: every request either finished an analysis
    // or was rejected, and the gate drains to zero.
    let admitted = outcomes.iter().filter(|a| **a).count();
    let rejected = outcomes.len() - admitted;
    assert_eq!(
        admitted + rejected,
        requesters,
        "every request accounted for"
    );
    let st = *gate.state.lock();
    assert_eq!(
        (st.running, st.queued),
        (0, 0),
        "gate must drain to zero at quiescence"
    );
    outcomes
}

/// Invariant (queue path): with slots=1 queue=1 and two requesters, both are
/// always admitted — one may wait in the queue — the slot cap holds while
/// they execute, and no waiter is left parked (a lost wakeup would surface
/// as a deadlock failure).
#[test]
fn gate_queue_path_admits_and_loses_no_wakeups() {
    let report = Model::new("serve-gate-queue")
        .max_dfs_schedules(400_000)
        .check(|| {
            let outcomes = gate_model(GateBug::None, 1, 1, 2);
            assert!(
                outcomes.iter().all(|a| *a),
                "two requests against slots+queue=2 must both be admitted"
            );
        });
    assert!(report.exhaustive, "{report:?}");
}

/// Invariant (reject path): with slots=1 queue=0 and two requesters, at
/// least one is admitted, rejections are immediate (never parked), and the
/// accounting still reconciles.
#[test]
fn gate_reject_path_accounting_reconciles() {
    let report = Model::new("serve-gate-reject")
        .max_dfs_schedules(400_000)
        .check(|| {
            let outcomes = gate_model(GateBug::None, 1, 0, 2);
            assert!(
                outcomes.iter().any(|a| *a),
                "at least one request must win the slot"
            );
        });
    assert!(report.exhaustive, "{report:?}");
}

/// Mutation twin: a permit released without `notify_one` must strand a
/// queued waiter — the checker reports it as a deadlock (lost wakeup).
#[test]
fn missing_notify_on_release_is_caught() {
    let failure = Model::new("serve-gate-no-notify-MUTATION")
        .expect_failure(|| drop(gate_model(GateBug::NoNotify, 1, 1, 2)));
    assert!(failure.message.contains("deadlock"), "{failure:?}");
}

/// Mutation twin: the `>` full-check must be caught overfilling the queue
/// (three requesters so a third can slip past the cap).
#[test]
fn admission_off_by_one_is_caught() {
    let failure = Model::new("serve-gate-off-by-one-MUTATION")
        .expect_failure(|| drop(gate_model(GateBug::OffByOne, 1, 1, 3)));
    assert!(
        failure.message.contains("exceeds queue capacity"),
        "{failure:?}"
    );
}

// ---------------------------------------------------------------------------
// Bounded response memo (lib.rs::ResponseMemo): map + FIFO insertion order,
// fresh insert at capacity evicts the OLDEST entry — never the entry being
// inserted, never below capacity (the PR 9 regression models).
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum MemoBug {
    /// Faithful port: FIFO (`pop_front`), evict only above cap.
    None,
    /// MUTATION: LIFO eviction (`pop_back`) — a fresh insert at capacity
    /// evicts *itself*.
    Lifo,
    /// MUTATION: evict when `len == cap` already (`<` for `<=`) — the memo
    /// silently holds one entry fewer than configured.
    OffByOne,
}

struct MemoModel {
    state: Mutex<MemoState>,
    cap: usize,
    bug: MemoBug,
}

#[derive(Default)]
struct MemoState {
    map: HashMap<u64, u64>,
    order: VecDeque<u64>,
    // Model instrumentation, kept inside the state so counting adds no
    // schedule points: evictions, and inserts that created a fresh entry
    // (refreshes excluded).  A key evicted and re-inserted counts twice, so
    // survivors + evictions must equal fresh_inserts exactly.
    evictions: usize,
    fresh_inserts: usize,
}

impl MemoModel {
    fn new(cap: usize, bug: MemoBug) -> MemoModel {
        MemoModel {
            state: Mutex::new(MemoState::default()),
            cap,
            bug,
        }
    }

    /// Port of `ResponseMemo::insert`, with the production invariants
    /// asserted under the same lock the production code holds throughout.
    fn insert(&self, key: u64, value: u64) {
        let mut st = self.state.lock();
        if st.map.insert(key, value).is_some() {
            return; // refreshed in place; order entry already present
        }
        st.fresh_inserts += 1;
        st.order.push_back(key);
        let keep = if self.bug == MemoBug::OffByOne {
            st.map.len() < self.cap
        } else {
            st.map.len() <= self.cap
        };
        if !keep {
            loop {
                let oldest = if self.bug == MemoBug::Lifo {
                    st.order.pop_back()
                } else {
                    st.order.pop_front()
                };
                let Some(oldest) = oldest else { break };
                if st.map.remove(&oldest).is_some() {
                    st.evictions += 1;
                    break;
                }
            }
        }
        assert!(
            st.map.contains_key(&key),
            "insert evicted its own fresh entry (not FIFO)"
        );
        assert!(
            st.map.len() <= self.cap,
            "memo len {} exceeds cap {}",
            st.map.len(),
            self.cap
        );
        assert_eq!(
            st.order.len(),
            st.map.len(),
            "insertion-order queue desynced from the map"
        );
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.state.lock().map.get(&key).copied()
    }
}

fn memo_model(bug: MemoBug) {
    const CAP: usize = 2;
    let memo = Arc::new(MemoModel::new(CAP, bug));
    // Concurrent insert + refresh of the SAME hash (two identical programs
    // racing past the memo miss) while the root also inserts two more
    // distinct programs, forcing eviction at cap 2.  The spawned insert can
    // land before the root's same-key insert (making the root's a refresh),
    // between the root's inserts at any occupancy, or after key 1 was
    // already evicted (a re-insert, counted fresh again).
    let a = {
        let memo = Arc::clone(&memo);
        thread::spawn(move || memo.insert(1, 10))
    };
    memo.insert(1, 11);
    memo.insert(2, 20);
    memo.insert(3, 30);
    // Lookup races the spawned insert: any answer is allowed (either racy
    // value, or already evicted) — the per-insert asserts above are the real
    // invariants; this pins that a racing lookup cannot see a torn value.
    if let Some(v) = memo.get(1) {
        assert!(v == 10 || v == 11, "lookup saw a torn value {v}");
    }
    a.join();
    // Quiescence: at least 3 fresh inserts (4 if key 1 was evicted before
    // the racing same-key insert landed) flowed through a cap-2 memo, so
    // exactly CAP survive and evictions account for every other fresh insert.
    let st = memo.state.lock();
    assert_eq!(
        st.map.len(),
        CAP,
        "cap-2 memo must retain exactly 2 of 3 keys"
    );
    assert_eq!(
        st.map.len() + st.evictions,
        st.fresh_inserts,
        "evictions + survivors must cover every fresh insert"
    );
}

/// Invariant: the memo never exceeds its cap, never evicts the entry being
/// inserted, never desyncs map and order, and retains exactly `cap` entries
/// after more-than-cap distinct inserts — on every schedule.
#[test]
fn memo_fifo_eviction_is_bounded_and_exact() {
    let report = Model::new("serve-memo-fifo")
        .max_dfs_schedules(400_000)
        .check(|| memo_model(MemoBug::None));
    assert!(report.exhaustive, "{report:?}");
}

/// Mutation twin: LIFO eviction must be caught self-evicting a fresh insert.
#[test]
fn lifo_eviction_is_caught() {
    let failure =
        Model::new("serve-memo-lifo-MUTATION").expect_failure(|| memo_model(MemoBug::Lifo));
    assert!(failure.message.contains("own fresh entry"), "{failure:?}");
}

/// Mutation twin: evicting at `len == cap` must be caught shrinking the memo
/// below its configured bound.
#[test]
fn eviction_off_by_one_is_caught() {
    let failure = Model::new("serve-memo-off-by-one-MUTATION")
        .expect_failure(|| memo_model(MemoBug::OffByOne));
    assert!(failure.message.contains("exactly 2 of 3"), "{failure:?}");
}
