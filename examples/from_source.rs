//! Derive an I/O lower bound directly from source code, as the paper's tool
//! does: parse a Python-like loop nest, lower it to the SOAP IR, and analyze.
//!
//! ```text
//! cargo run --release --example from_source
//! ```

use soap::frontend::parse_python;
use soap::prelude::*;

const SOURCE: &str = r#"
# 3-point stencil composed with a matrix product (Figure 2 of the paper).
for i in range(0, N):
    for j in range(0, M):
        C[i, j] = (A[i] + A[i+1]) * (B[j] + B[j+1])
for i in range(0, N):
    for j in range(0, K):
        for k in range(0, M):
            E[i, j] += C[i, k] * D[k, j]
"#;

fn main() {
    let program = parse_python("figure2", SOURCE).expect("source parses");
    println!("parsed program:\n{program}");
    let analysis = analyze_program(&program).expect("analysis succeeds");
    println!("I/O lower bound: Q ≥ {}", analysis.bound);
    for array in &analysis.per_array {
        println!(
            "  {:<3} best fused subgraph {{{}}}  ρ = {}",
            array.array,
            array.best_subgraph.join(","),
            array.rho
        );
    }
    println!(
        "\nNote how array C's intensity reflects recomputation from A and B slices\n\
         (the \"pinch of combinatorics\" of Figure 2): its vertices are cheap to\n\
         rematerialize, so they contribute little I/O."
    );
}
