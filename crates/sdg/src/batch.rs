//! Cross-program batch analysis: many programs, one shared solve cache.
//!
//! The paper's headline result is a *suite* of bounds — dozens of kernels
//! analyzed by the same machinery — and real suites are full of renamed
//! copies of the same structures (gemm/2mm/3mm/bert's matmuls, the
//! jacobi/heat stencil family).  The canonical solve-cache key is
//! renaming-invariant, so sharing one [`SolveCache`] across the whole suite
//! solves each structure once *per suite* instead of once per kernel:
//! analyze the class, not the instance.
//!
//! [`analyze_suite`] runs a slice of [`SuiteProgram`]s through rayon over a
//! shared sharded cache with per-program error isolation (one failing
//! program reports its error in its [`ProgramReport`]; the rest of the suite
//! is unaffected) and returns a [`BatchAnalysis`]: per-program results and
//! timings plus a [`SuiteSummary`] with suite-wide cache accounting in which
//! cross-program hits are distinguishable from intra-program hits.
//!
//! Batch results are **byte-identical** to sequential per-program
//! [`analyze_program_with`](crate::analyze_program_with) calls regardless of
//! shard count, thread count, or program order: a cache miss solves the
//! *canonical model* of the structure, never the requesting representative
//! (see [`crate::cache`]).

use crate::analysis::{analyze_program_with_cache, ProgramAnalysis, SdgOptions};
use crate::cache::{CacheStats, SolveCache};
use rayon::prelude::*;
use soap_core::AnalysisError;
use soap_ir::Program;
use std::time::Instant;

/// One unit of batch work: a program plus the options to analyze it with.
#[derive(Clone, Debug)]
pub struct SuiteProgram {
    /// Report name (defaults to the program's own name).
    pub name: String,
    /// The program to analyze.
    pub program: Program,
    /// Analysis options for this program.
    pub opts: SdgOptions,
}

impl SuiteProgram {
    /// A suite entry named after the program, with the given options.
    pub fn new(program: Program, opts: SdgOptions) -> SuiteProgram {
        SuiteProgram {
            name: program.name.clone(),
            program,
            opts,
        }
    }

    /// A suite entry named after the program, with default options.
    pub fn with_default_opts(program: Program) -> SuiteProgram {
        SuiteProgram::new(program, SdgOptions::default())
    }
}

/// The outcome of one program of a batch run.
#[derive(Clone, Debug)]
pub struct ProgramReport {
    /// The suite entry's name.
    pub name: String,
    /// Wall-clock milliseconds spent analyzing this program.
    pub analysis_ms: f64,
    /// The analysis, or the error that failed it (isolated: other programs
    /// of the suite are unaffected).
    pub outcome: Result<ProgramAnalysis, AnalysisError>,
}

/// Aggregated accounting of one batch run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SuiteSummary {
    /// Programs analyzed.
    pub programs: usize,
    /// Programs whose analysis returned an error.
    pub failures: usize,
    /// Wall-clock milliseconds for the whole suite (parallel over programs).
    pub wall_ms: f64,
    /// Sum of the per-program analysis times (equals `wall_ms` up to
    /// bookkeeping overhead on a single-threaded host; smaller than the sum
    /// under parallel execution).
    pub sum_program_ms: f64,
    /// Subgraph models attempted across the suite.
    pub subgraphs_enumerated: usize,
    /// Suite-wide cache accounting: the shared cache's counter deltas over
    /// this run.  `cache.cross_program_hits` counts hits answered from a
    /// structure first solved by a *different* program — the dedup that only
    /// the shared cache provides; `cache.hits - cache.cross_program_hits`
    /// are ordinary intra-program hits.
    pub cache: CacheStats,
}

impl serde::Serialize for SuiteSummary {
    /// The canonical JSON record of a suite's accounting — one definition
    /// shared by `soap-cli batch`, `table2 --suite-json` and the perf
    /// snapshot's `suite_stats`, so the emitters cannot drift apart.
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("programs".to_string(), self.programs.to_value()),
            ("failures".to_string(), self.failures.to_value()),
            ("wall_ms".to_string(), self.wall_ms.to_value()),
            ("sum_program_ms".to_string(), self.sum_program_ms.to_value()),
            (
                "subgraphs_enumerated".to_string(),
                self.subgraphs_enumerated.to_value(),
            ),
            ("cache".to_string(), self.cache.to_value()),
        ])
    }
}

/// The result of a batch run: per-program reports (in input order) plus the
/// aggregated [`SuiteSummary`].
#[derive(Clone, Debug)]
pub struct BatchAnalysis {
    /// One report per suite entry, in input order.
    pub reports: Vec<ProgramReport>,
    /// Aggregated suite accounting.
    pub summary: SuiteSummary,
}

impl BatchAnalysis {
    /// Look up a report by suite-entry name.
    pub fn report(&self, name: &str) -> Option<&ProgramReport> {
        self.reports.iter().find(|r| r.name == name)
    }
}

/// Analyze a suite of programs over a fresh shared [`SolveCache`].
pub fn analyze_suite(jobs: &[SuiteProgram]) -> BatchAnalysis {
    analyze_suite_with(jobs, &SolveCache::new())
}

/// Analyze a suite of programs over a caller-provided shared cache (e.g.
/// [`crate::cache::global_solve_cache`] in a long-running service, so
/// structures solved by *earlier* suites are reused too).
///
/// The summary's cache stats are the cache's counter deltas over this call;
/// when other threads use the same cache concurrently their traffic is
/// included in the delta.
pub fn analyze_suite_with(jobs: &[SuiteProgram], cache: &SolveCache) -> BatchAnalysis {
    let stats_before = cache.stats();
    let suite_start = Instant::now();
    let reports: Vec<ProgramReport> = jobs
        .par_iter()
        .map(|job| {
            let start = Instant::now();
            let outcome = analyze_program_with_cache(&job.program, &job.opts, cache);
            ProgramReport {
                name: job.name.clone(),
                analysis_ms: start.elapsed().as_secs_f64() * 1e3,
                outcome,
            }
        })
        .collect();
    let wall_ms = suite_start.elapsed().as_secs_f64() * 1e3;
    let summary = SuiteSummary {
        programs: reports.len(),
        failures: reports.iter().filter(|r| r.outcome.is_err()).count(),
        wall_ms,
        sum_program_ms: reports.iter().map(|r| r.analysis_ms).sum(),
        subgraphs_enumerated: reports
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .map(|a| a.solver.subgraphs_enumerated)
            .sum(),
        cache: cache.stats().since(&stats_before),
    };
    BatchAnalysis { reports, summary }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_ir::ProgramBuilder;

    fn matmul(name: &str, vars: [&str; 3]) -> Program {
        ProgramBuilder::new(name)
            .statement(|st| {
                st.loops(&[
                    (vars[0], "0", "N"),
                    (vars[1], "0", "N"),
                    (vars[2], "0", "N"),
                ])
                .update("C", &format!("{},{}", vars[0], vars[1]))
                .read("A", &format!("{},{}", vars[0], vars[2]))
                .read("B", &format!("{},{}", vars[2], vars[1]))
            })
            .build()
            .unwrap()
    }

    #[test]
    fn renamed_matmuls_hit_across_programs() {
        let jobs = vec![
            SuiteProgram::with_default_opts(matmul("mm1", ["i", "j", "k"])),
            SuiteProgram::with_default_opts(matmul("mm2", ["p", "q", "r"])),
        ];
        let batch = analyze_suite(&jobs);
        assert_eq!(batch.summary.programs, 2);
        assert_eq!(batch.summary.failures, 0);
        assert!(
            batch.summary.cache.cross_program_hits >= 1,
            "renamed matmul must be answered from the other program's entry: {:?}",
            batch.summary.cache
        );
        // Per-program summaries see their own traffic: the second program's
        // analysis reports the cross-program hit, the first reports none.
        let a = batch.report("mm1").unwrap().outcome.as_ref().unwrap();
        let b = batch.report("mm2").unwrap().outcome.as_ref().unwrap();
        assert_eq!(
            a.solver.cross_program_hits + b.solver.cross_program_hits,
            batch.summary.cache.cross_program_hits
        );
        // And the bounds are identical to standalone analyses.
        for (job, report) in jobs.iter().zip(&batch.reports) {
            let standalone = crate::analyze_program_with(&job.program, &job.opts).unwrap();
            let batched = report.outcome.as_ref().unwrap();
            assert_eq!(
                format!("{}", standalone.bound),
                format!("{}", batched.bound)
            );
        }
    }

    #[test]
    fn failing_programs_are_isolated() {
        use soap_ir::{ArrayAccess, IterationDomain, LinIndex, Statement};
        // A statement with an empty loop nest fails `Program::validate`, so
        // its analysis errors — the builder refuses to construct one, hence
        // assemble it directly.  The other programs of the suite must be
        // unaffected, and the failure must land in the report, not abort the
        // batch.
        let invalid = Program::new(
            "invalid",
            vec![Statement {
                name: "empty_nest".to_string(),
                domain: IterationDomain::new(vec![]),
                output: ArrayAccess::single("Z", vec![LinIndex::constant(0)]),
                inputs: vec![],
                is_update: false,
            }],
        );
        assert!(invalid.validate().is_err(), "fixture must be invalid");
        let jobs = vec![
            SuiteProgram::with_default_opts(matmul("ok", ["i", "j", "k"])),
            SuiteProgram::with_default_opts(invalid),
            SuiteProgram::with_default_opts(matmul("ok2", ["p", "q", "r"])),
        ];
        let batch = analyze_suite(&jobs);
        assert_eq!(batch.summary.programs, 3);
        assert_eq!(batch.summary.failures, 1);
        assert!(batch.report("ok").unwrap().outcome.is_ok());
        assert!(batch.report("ok2").unwrap().outcome.is_ok());
        let failure = &batch.report("invalid").unwrap().outcome;
        assert!(
            matches!(failure, Err(AnalysisError::InvalidStatement(_))),
            "expected an isolated InvalidStatement error, got {failure:?}"
        );
        // An init-only program, by contrast, analyzes successfully with
        // diagnostic notes (not an error) — both outcomes coexist in one
        // suite without affecting each other.
        let init_only = ProgramBuilder::new("init_only")
            .statement(|st| st.loops(&[("i", "0", "N")]).write("Z", "0"))
            .build()
            .unwrap();
        let batch = analyze_suite(&[SuiteProgram::with_default_opts(init_only)]);
        assert_eq!(batch.summary.failures, 0);
        let init = batch.report("init_only").unwrap().outcome.as_ref().unwrap();
        assert!(!init.notes.is_empty());
    }
}
