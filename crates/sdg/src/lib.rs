//! # soap-sdg
//!
//! Multi-statement SOAP analysis through the **Symbolic Directed Graph**
//! (Section 6 of the paper).
//!
//! I/O lower bounds do not compose: fusing statements can reuse intermediate
//! arrays and recompute values, lowering the total I/O below the sum of the
//! per-statement bounds.  The SDG models this: every array is a vertex, every
//! producer→consumer relation an edge.  For every (connected) subgraph `H` of
//! computed arrays we build the *subgraph SOAP statement* `St_H` — the fusion
//! of the statements writing arrays in `H`, whose inputs are only the arrays
//! outside `H` plus the per-statement accumulation-chain terms — and solve its
//! intensity `ρ_H` with `soap-core`.  Theorem 1 then yields
//!
//! ```text
//!     Q  ≥  Σ_{A ∈ computed arrays}  |A| / max_{H ∋ A} ρ_H .
//! ```
//!
//! Subgraph evaluation is embarrassingly parallel and runs under rayon;
//! structurally identical merged models (canonical key modulo variable
//! renaming, see [`cache`]) are solved once and answered from a shared,
//! sharded cache — which [`batch`] extends across whole *suites* of
//! programs, deduplicating renamed structures program-to-program, and
//! [`store`] extends across *processes* by persisting canonical solutions to
//! disk (warm runs re-solve nothing and reproduce cold output byte-for-byte).
//!
//! The whole front half — subgraph enumeration, statement merging,
//! canonical-key construction and stored-solution instantiation — runs on a
//! shared self-scheduling worker pool sized by [`worker_budget`]
//! (`SOAP_THREADS` / `--threads`, see [`set_worker_budget`]).  Output is a
//! pure function of program structure: byte-identical for any thread count,
//! shard count, or program order.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod batch;
pub mod cache;
pub mod faults;
pub mod graph;
pub mod merge;
pub mod service;
pub mod store;
pub mod subgraphs;

pub use analysis::{
    analyze_program, analyze_program_governed, analyze_program_with, analyze_program_with_cache,
    ArrayBound, PhaseTimings, ProgramAnalysis, SdgOptions, SolverSummary,
};
pub use faults::{active_plan, override_plan, parse_fault_plan, FaultPlan, PlanOverrideGuard};
pub use soap_symbolic::Deadline;
// The worker-pool controls live in the vendored `rayon` stand-in; re-export
// them so CLI/bench/test crates configure threading through one front door.
pub use batch::{
    analyze_suite, analyze_suite_governed, analyze_suite_with, parse_timeout_ms, BatchAnalysis,
    ProgramReport, SuiteProgram, SuiteSummary,
};
pub use cache::{
    cache_shards_from_env, canonicalize, global_solve_cache, parse_cache_shards, CacheSession,
    CacheStats, CanonicalKey, SolveCache, DEFAULT_CACHE_SHARDS, MAX_CACHE_SHARDS,
};
pub use graph::{Sdg, SdgEdge};
pub use merge::merged_model;
pub use rayon::{parse_worker_threads, set_worker_budget, worker_budget, MAX_WORKER_THREADS};
pub use service::{canonical_program_hash, structural_program_key, Claim, InFlight, LeaderGuard};
pub use store::{SolveStore, StoreFlushStats, StoreLoadStats, REPORT_HEADER, STORE_HEADER};
pub use subgraphs::{
    enumerate_connected_subgraphs, enumerate_connected_subgraphs_governed, SubgraphEnumeration,
};
