//! Thread-count determinism: the analysis output must be a pure function of
//! program structure — byte-identical (unsnapped floats compared bit-for-bit)
//! for every worker budget (`SOAP_THREADS`), shard count, and their product.
//!
//! The parallel front half is built for this: subgraph enumeration commits
//! parallel proposals in serial discovery order, and a cache miss solves the
//! *canonical* model so which worker solves first never leaks into output.
//! These tests pin the property on the full 38-kernel registry and on a
//! deliberately skewed workload (one dominant seed component) where
//! self-scheduled workers interleave maximally.

use soap_ir::{Program, ProgramBuilder};
use soap_sdg::subgraphs::{enumerate_connected_subgraphs, enumerate_connected_subgraphs_naive};
use soap_sdg::{analyze_suite_with, set_worker_budget, Sdg, SdgOptions, SolveCache, SuiteProgram};
use std::fmt::Write as _;
use std::sync::Mutex;

/// Serializes the tests that mutate the process-wide worker budget (tests of
/// one binary run on concurrent threads).
static BUDGET_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the worker budget forced to `n`, restoring the previous one.
fn with_budget<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = set_worker_budget(n);
    let result = f();
    set_worker_budget(prev);
    result
}

/// The Table-2 analysis options of every registry entry.
fn jobs() -> Vec<SuiteProgram> {
    soap_kernels::registry()
        .into_iter()
        .map(|entry| {
            SuiteProgram::new(
                entry.program,
                SdgOptions {
                    assume_injective: entry.assume_injective,
                    ..SdgOptions::default()
                },
            )
        })
        .collect()
}

/// Exhaustive bit-exact dump of one analysis — everything except timings
/// (`phases`) and the cache accounting, which measure the run, not the input.
fn dump(analysis: &soap_sdg::ProgramAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", analysis.name);
    let _ = writeln!(out, "bound {}", analysis.bound);
    for a in &analysis.per_array {
        let _ = writeln!(
            out,
            "array {} |A|={} rho={} sigma={:?} via={:?} bound={}",
            a.array, a.vertex_count, a.rho, a.sigma, a.best_subgraph, a.bound
        );
    }
    for s in &analysis.subgraphs {
        let i = &s.intensity;
        let _ = writeln!(
            out,
            "subgraph {:?} sigma={:?} chi_coeff={:016x} rho={} x0={:?} rho_ref={:016x}",
            s.arrays,
            i.sigma,
            i.chi_coeff.to_bits(),
            i.rho,
            i.x0.as_ref().map(|e| format!("{e}")),
            s.rho_ref.to_bits(),
        );
        for ((name, e), (_, c)) in i.tile_exponents.iter().zip(&i.tile_coeffs) {
            let _ = writeln!(out, "  tile {name} exp={e:?} coeff={:016x}", c.to_bits());
        }
    }
    for n in &analysis.notes {
        let _ = writeln!(out, "note {n}");
    }
    out
}

#[test]
fn registry_output_is_byte_identical_across_thread_budgets_and_shards() {
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let jobs = jobs();
    // Reference: single-threaded run (every par_iter inlined) over one shard.
    let baseline: Vec<String> = with_budget(1, || {
        let batch = analyze_suite_with(&jobs, &SolveCache::with_shards(1));
        assert_eq!(batch.summary.failures, 0);
        batch
            .reports
            .iter()
            .map(|r| dump(r.outcome.as_ref().expect("analysis succeeds")))
            .collect()
    });

    for budget in [1usize, 2, 8] {
        for shards in [1usize, 16] {
            let batch = with_budget(budget, || {
                analyze_suite_with(&jobs, &SolveCache::with_shards(shards))
            });
            assert_eq!(batch.summary.failures, 0, "budget={budget} shards={shards}");
            assert_eq!(batch.summary.programs, jobs.len());
            for (expected, report) in baseline.iter().zip(&batch.reports) {
                let analysis = report.outcome.as_ref().expect("analysis succeeds");
                assert_eq!(
                    expected,
                    &dump(analysis),
                    "{}: output under budget={budget} shards={shards} diverged from the single-threaded reference",
                    report.name
                );
            }
        }
    }
}

/// One dominant seed component (a dense `hub`-array cluster sharing one
/// input) plus `tail` disjoint two-statement chains: the skew shape where a
/// static per-seed split would serialize behind the hub and worker
/// interleaving is maximal.
fn skewed_hub(hub: usize, tail: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("skew{hub}x{tail}"));
    for s in 0..hub {
        let dst = format!("H{s}");
        b = b.statement(move |st| {
            st.loops(&[("i", "0", "N")])
                .write(&dst, "i")
                .read("HUB", "i")
        });
    }
    for s in 0..tail {
        let mid = format!("M{s}");
        let src = format!("X{s}");
        b = b.statement(move |st| {
            st.loops(&[("i", "0", "N")])
                .write(&mid, "i")
                .read(&src, "i")
        });
        let mid_in = format!("M{s}");
        let dst = format!("E{s}");
        b = b.statement(move |st| {
            st.loops(&[("i", "0", "N")])
                .write(&dst, "i")
                .read(&mid_in, "i")
        });
    }
    b.build().expect("skewed hub builds")
}

#[test]
fn skewed_enumeration_is_deterministic_and_matches_the_naive_oracle() {
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // 54 computed arrays: the level-2 frontier (54 singleton sets) crosses
    // the parallel threshold, so worker budgets > 1 exercise the parallel
    // proposal stage for real.
    let sdg = Sdg::from_program(&skewed_hub(14, 20));

    // Uncapped: every budget must reproduce the serial family exactly, and
    // the family must equal the seed's naive string-set algorithm.
    let reference = with_budget(1, || enumerate_connected_subgraphs(&sdg, 3, 1_000_000));
    assert!(!reference.truncated);
    let naive = enumerate_connected_subgraphs_naive(&sdg, 3, 1_000_000);
    assert_eq!(reference.subgraphs, naive, "bitset family != naive oracle");
    for budget in [2usize, 8] {
        let parallel = with_budget(budget, || enumerate_connected_subgraphs(&sdg, 3, 1_000_000));
        assert_eq!(
            reference.subgraphs, parallel.subgraphs,
            "budget={budget} changed the uncapped enumeration"
        );
        assert_eq!(reference.truncated, parallel.truncated);
    }

    // Truncating cap landing mid-level: which subsets survive is part of the
    // contract — the parallel commit replays serial discovery order, so the
    // surviving family (and the truncated flag) must be byte-identical too,
    // and must match the naive oracle under the same cap.
    for cap in [60usize, 120, 200] {
        let capped_ref = with_budget(1, || enumerate_connected_subgraphs(&sdg, 3, cap));
        assert!(capped_ref.truncated, "cap {cap} must truncate this family");
        let capped_naive = enumerate_connected_subgraphs_naive(&sdg, 3, cap);
        assert_eq!(
            capped_ref.subgraphs, capped_naive,
            "cap {cap}: capped bitset family != naive oracle"
        );
        for budget in [2usize, 8] {
            let capped = with_budget(budget, || enumerate_connected_subgraphs(&sdg, 3, cap));
            assert_eq!(
                capped_ref.subgraphs, capped.subgraphs,
                "cap {cap} budget={budget}: surviving family diverged"
            );
            assert_eq!(capped_ref.truncated, capped.truncated);
        }
    }
}

#[test]
fn skewed_program_analysis_is_thread_count_invariant() {
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let jobs = vec![SuiteProgram::new(
        skewed_hub(14, 20),
        SdgOptions {
            max_subgraph_size: 3,
            // Forces mid-level truncation, the most order-sensitive regime.
            max_subgraphs: 120,
            ..SdgOptions::default()
        },
    )];
    let baseline = with_budget(1, || {
        let batch = analyze_suite_with(&jobs, &SolveCache::with_shards(1));
        assert_eq!(batch.summary.failures, 0);
        dump(
            batch.reports[0]
                .outcome
                .as_ref()
                .expect("analysis succeeds"),
        )
    });
    for budget in [2usize, 8] {
        let batch = with_budget(budget, || {
            analyze_suite_with(&jobs, &SolveCache::with_shards(16))
        });
        assert_eq!(batch.summary.failures, 0);
        assert_eq!(
            baseline,
            dump(
                batch.reports[0]
                    .outcome
                    .as_ref()
                    .expect("analysis succeeds")
            ),
            "budget={budget}: skewed-program analysis diverged from single-threaded reference"
        );
    }
}
