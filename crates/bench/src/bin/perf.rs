//! Machine-readable performance snapshot: times the pipeline's hot paths and
//! writes a `BENCH_*.json` record for regression tracking across PRs.
//!
//! ```text
//! cargo run --release -p soap-bench --bin perf -- [--out BENCH_PR1.json] [--quick]
//! ```
//!
//! Unlike the Criterion benches (human-oriented, one-off timings) this binary
//! emits one JSON object per hot path with median/min milliseconds over a
//! fixed number of repetitions, plus the naive-vs-bitset subgraph-enumeration
//! comparison that captures the before/after of the interning + bitset
//! rewrite (the naive reference implements the seed's string-set algorithm).

#![forbid(unsafe_code)]

use serde_json::{json, Value};
use soap_bench::fixtures::{chain_of_matmuls, dense_star, skewed_hub};
use soap_bench::load::{run_load, LoadConfig};
use soap_bench::validation::{validate_kernel, ValidationCase};
use soap_bench::{analyze_kernel, suite_program, suite_summary_record};
use soap_pebbling::{min_dominator_size, Cdag, VertexKind};
use soap_sdg::subgraphs::{enumerate_connected_subgraphs, enumerate_connected_subgraphs_naive};
use soap_sdg::{
    analyze_program_with, analyze_suite, analyze_suite_with, set_worker_budget, worker_budget,
    ProgramAnalysis, Sdg, SdgOptions, SolveCache, SuiteProgram,
};
use soap_symbolic::{reset_solver_counters, solver_counters, KKT_HISTOGRAM_EDGES};
use std::collections::BTreeMap;
use std::time::Instant;

/// One instrumented analysis run: resets the process-wide solver counters,
/// runs `f`, and records the KKT/solve/cache accounting as a JSON object.
fn solver_stats_record(name: &str, f: impl FnOnce() -> ProgramAnalysis) -> Value {
    reset_solver_counters();
    let analysis = f();
    let counters = solver_counters();
    let s = analysis.solver;
    println!(
        "solver_stats/{name:<30} models {:>4}   solved {:>4}   cache hits {:>4} ({:>3} max)   uncacheable {:>3}   kkt iters {:>7}   cap hits {:>3}",
        s.subgraphs_enumerated,
        counters.solves,
        s.cache_hits,
        s.max_cache_hits,
        s.uncacheable,
        counters.kkt_iterations,
        counters.kkt_cap_hits,
    );
    let p = analysis.phases;
    println!(
        "    phases: enumerate {:>8.3} ms   merge {:>8.3} ms   instantiate {:>8.3} ms   solve {:>8.3} ms",
        p.enumerate_ms, p.merge_ms, p.instantiate_ms, p.solve_ms
    );
    let histogram: Vec<Value> = KKT_HISTOGRAM_EDGES
        .iter()
        .map(|e| json!(format!("<{e}")))
        .chain([json!(">=400")])
        .zip(counters.kkt_histogram)
        .map(|(bucket, count)| json!({ "bucket": bucket, "solves": count }))
        .collect();
    println!(
        "    kkt histogram: {}",
        KKT_HISTOGRAM_EDGES
            .iter()
            .map(|e| format!("<{e}"))
            .chain([">=400".to_string()])
            .zip(counters.kkt_histogram)
            .map(|(b, c)| format!("{b}:{c}"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    json!({
        "name": name,
        "subgraphs_enumerated": s.subgraphs_enumerated,
        "cache_hits": s.cache_hits,
        "cache_misses": s.cache_misses,
        "uncacheable": s.uncacheable,
        "max_cache_hits": s.max_cache_hits,
        "max_cache_misses": s.max_cache_misses,
        "cross_program_hits": s.cross_program_hits,
        "kkt_cap_hits": s.kkt_cap_hits,
        "merge_failures": s.merge_failures,
        "solve_failures": s.solve_failures,
        "panic_failures": s.panic_failures,
        "phases": json!({
            "enumerate_ms": p.enumerate_ms,
            "merge_ms": p.merge_ms,
            "instantiate_ms": p.instantiate_ms,
            "solve_ms": p.solve_ms,
        }),
        "solves": counters.solves,
        "compiled_solves": counters.compiled_solves,
        "max_form_solves": counters.max_form_solves,
        "kkt_iterations": counters.kkt_iterations,
        "kkt_histogram": json!(histogram),
    })
}

/// Median and minimum wall-clock milliseconds of `reps` runs of `f`.
fn time_ms(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut samples: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    // Shared NaN-last total order: a rogue NaN sample surfaces as a NaN
    // minimum in the snapshot instead of panicking the whole bench run.
    samples.sort_by(|a, b| soap_symbolic::nan_last(*a, *b));
    (samples[samples.len() / 2], samples[0])
}

fn record(name: &str, median_ms: f64, min_ms: f64) -> Value {
    println!("{name:<40} median {median_ms:>10.3} ms   min {min_ms:>10.3} ms");
    json!({ "name": name, "median_ms": median_ms, "min_ms": min_ms })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH.json".to_string();
    let mut reps = 5usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or(out_path);
            }
            "--quick" => reps = 3,
            other => {
                eprintln!("unknown argument {other} (expected --out FILE or --quick)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut benches: Vec<Value> = Vec::new();

    // --- sdg_scaling: chains of k matmuls, the paper's scaling experiment ---
    let opts = SdgOptions {
        max_subgraph_size: 3,
        max_subgraphs: 512,
        ..SdgOptions::default()
    };
    for k in [1usize, 4, 8, 16, 35] {
        let program = chain_of_matmuls(k);
        let (median, min) = time_ms(reps, || {
            analyze_program_with(&program, &opts).expect("analysis succeeds");
        });
        benches.push(record(&format!("sdg_scaling/{k}"), median, min));
    }

    // --- analysis_runtime: representative kernels end-to-end ---
    let registry = soap_kernels::registry();
    for name in ["gemm", "fdtd-2d", "bert-encoder", "lulesh"] {
        let entry = registry
            .iter()
            .find(|e| e.name == name)
            .expect("kernel exists");
        let (median, min) = time_ms(reps, || {
            analyze_kernel(entry);
        });
        benches.push(record(&format!("analysis_runtime/{name}"), median, min));
    }

    // --- solver_stats: compiled-solver + cache accounting per workload ---
    let mut solver_stats: Vec<Value> = Vec::new();
    {
        let chain = chain_of_matmuls(35);
        let chain_opts = opts.clone();
        solver_stats.push(solver_stats_record("chain35", || {
            analyze_program_with(&chain, &chain_opts).expect("analysis succeeds")
        }));
        let registry = soap_kernels::registry();
        for name in ["bert-encoder", "lulesh"] {
            let entry = registry
                .iter()
                .find(|e| e.name == name)
                .expect("kernel exists");
            solver_stats.push(solver_stats_record(name, || analyze_kernel(entry)));
        }
    }

    // --- suite: the whole 38-kernel registry through the batch engine ---
    // `registry_sequential` is the PR 3 behavior (one private cache per
    // program, Table-2 options); `registry_batch` shares one sharded cache
    // across the suite, so renamed structures (the 2mm/3mm/bert matmuls, the
    // stencil family) are solved once per run instead of once per kernel.
    let suite_stats_record;
    {
        let jobs: Vec<SuiteProgram> = soap_kernels::registry().iter().map(suite_program).collect();
        let (seq_median, seq_min) = time_ms(reps, || {
            for job in &jobs {
                analyze_program_with(&job.program, &job.opts).expect("analysis succeeds");
            }
        });
        benches.push(record("suite/registry_sequential", seq_median, seq_min));
        let (batch_median, batch_min) = time_ms(reps, || {
            analyze_suite(&jobs);
        });
        benches.push(record("suite/registry_batch", batch_median, batch_min));
        let batch = analyze_suite(&jobs);
        let s = &batch.summary;
        println!(
            "suite/registry cache: {} structures solved, {} hits ({} cross-program), {} uncacheable, speedup {:.2}x",
            s.cache.misses,
            s.cache.hits,
            s.cache.cross_program_hits,
            s.cache.uncacheable,
            seq_median / batch_median.max(1e-9),
        );
        suite_stats_record = suite_summary_record(s);
    }

    // --- thread_scaling: the registry suite at fixed worker budgets ---
    // The same end-to-end batch run with the process-wide worker budget
    // pinned to 1/2/4/8.  Output is byte-identical across budgets (the
    // determinism tests pin that); only the wall clock may move, and only up
    // to the host's core count — on a single-core host the family is flat.
    {
        let jobs: Vec<SuiteProgram> = soap_kernels::registry().iter().map(suite_program).collect();
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let prev = worker_budget();
        for t in [1usize, 2, 4, 8] {
            set_worker_budget(t);
            let (median, min) = time_ms(reps, || {
                analyze_suite(&jobs);
            });
            benches.push(record(&format!("thread_scaling/{t}"), median, min));
        }
        set_worker_budget(prev);
        println!("thread_scaling: host has {host} core(s); budgets beyond that cannot help");
    }

    // --- suite cold vs warm: the disk-persisted canonical-solution store ---
    // `registry_cold` opens an *empty* store, analyzes the whole registry and
    // flushes the solved structures to disk (the full first-process cost,
    // solves + serialization included); `registry_warm` re-opens the
    // populated store in a fresh cache — simulating a new process — and
    // re-analyzes the registry without solving a single cached structure.
    // The gap is the cross-process win the store exists for.
    let store_stats_record;
    {
        let jobs: Vec<SuiteProgram> = soap_kernels::registry().iter().map(suite_program).collect();
        let store_root =
            std::env::temp_dir().join(format!("soap-perf-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&store_root);
        let cold_dir = store_root.join("cold");
        let (cold_median, cold_min) = time_ms(reps, || {
            let _ = std::fs::remove_dir_all(&cold_dir);
            let cache = SolveCache::with_store(&cold_dir).expect("store opens");
            analyze_suite_with(&jobs, &cache);
            cache.flush_store().expect("store flushes");
        });
        benches.push(record("suite/registry_cold", cold_median, cold_min));
        // Seed the warm store once from a cold run.
        let warm_dir = store_root.join("warm");
        {
            let cache = SolveCache::with_store(&warm_dir).expect("store opens");
            analyze_suite_with(&jobs, &cache);
            cache.flush_store().expect("store flushes");
        }
        // Both warm benches hydrate the store ONCE, outside the timed
        // region: a long-lived warm process (the daemon, a batch server)
        // pays startup hydration one time and then answers suite after
        // suite, and it is that steady-state answer cost the two benches
        // bracket — timing the open would measure segment-file parsing, the
        // same for both paths, and drown the signal.
        //
        // `registry_warm` deliberately hydrates *solve-only*: it measures
        // the canonical-solution replay path (run the full front half,
        // answer every solve from the store).  The finished-report fast
        // path is measured separately below as `registry_warm_report`
        // (whole analyses replayed, no front half at all), so the ratio
        // between the two is exactly what the report layer buys.
        let (warm_median, warm_min) = {
            let cache = SolveCache::with_store_solve_only(&warm_dir).expect("store re-opens");
            time_ms(reps, || {
                analyze_suite_with(&jobs, &cache);
            })
        };
        benches.push(record("suite/registry_warm", warm_median, warm_min));
        let (report_median, report_min) = {
            let cache = SolveCache::with_store(&warm_dir).expect("store re-opens");
            time_ms(reps, || {
                analyze_suite_with(&jobs, &cache);
            })
        };
        benches.push(record(
            "suite/registry_warm_report",
            report_median,
            report_min,
        ));
        // Accounting of one instrumented run per warm path: the solve-only
        // run must answer every cacheable structure from the store — zero
        // misses — and the report run must replay every program whole.
        let cache = SolveCache::with_store_solve_only(&warm_dir).expect("store re-opens");
        let warm = analyze_suite_with(&jobs, &cache);
        let load = cache.store_load_stats().expect("store-backed").clone();
        let c = &warm.summary.cache;
        let report_cache = SolveCache::with_store(&warm_dir).expect("store re-opens");
        let report_run = analyze_suite_with(&jobs, &report_cache);
        let reports_hydrated = report_cache
            .report_load_stats()
            .map(|r| r.entries)
            .unwrap_or(0);
        let rc = &report_run.summary.cache;
        println!(
            "suite/registry store: {} entries hydrated, warm run: {} store hits, {} misses, {} uncacheable, cold/warm {:.2}x",
            load.entries,
            c.store_hits,
            c.misses,
            c.uncacheable,
            cold_median / warm_median.max(1e-9),
        );
        println!(
            "suite/registry reports: {} reports hydrated, warm run: {} report hits, {} misses, warm/report {:.2}x",
            reports_hydrated,
            rc.report_hits,
            rc.misses,
            warm_median / report_median.max(1e-9),
        );
        store_stats_record = json!({
            "entries_hydrated": load.entries,
            "segments": load.segments,
            "store_bytes": load.bytes,
            "warm_store_hits": c.store_hits,
            "warm_misses": c.misses,
            "warm_uncacheable": c.uncacheable,
            "reports_hydrated": reports_hydrated,
            "warm_report_hits": rc.report_hits,
            "warm_report_misses": rc.misses,
        });
        let _ = std::fs::remove_dir_all(&store_root);
    }

    // --- serve: the analysis daemon under mixed load (in-process, real TCP).
    // The timed window measures the dedup steady state — registry kernels
    // and renamed sources answered from the response memo — which is the
    // serving path's whole value proposition; p50/p99 land in `benches` so
    // future snapshots ratio-guard them, throughput and the dedup accounting
    // in `serve_stats`.
    let serve_stats_record;
    {
        let report = run_load(&LoadConfig {
            duration: std::time::Duration::from_millis(if reps <= 3 { 1500 } else { 3000 }),
            ..LoadConfig::default()
        })
        .expect("serve load run succeeds");
        println!(
            "serve/load: {:>8.0} req/s   p50 {:.3} ms   p99 {:.3} ms   dedup {:.3}   analyses {}   5xx {}",
            report.throughput_rps,
            report.p50_ms,
            report.p99_ms,
            report.dedup_ratio,
            report.analyses,
            report.status_5xx,
        );
        assert_eq!(report.status_5xx, 0, "serve load run must be 5xx-free");
        benches.push(record("serve/latency_p50", report.p50_ms, report.p50_ms));
        benches.push(record("serve/latency_p99", report.p99_ms, report.p99_ms));
        serve_stats_record = report.to_value();
    }

    // --- subgraph_enumeration: bitset fast path vs the seed's algorithm ---
    let mut enumeration: Vec<Value> = Vec::new();
    for (label, program, max_size) in [
        ("chain35", chain_of_matmuls(35), 4usize),
        ("dense16", dense_star(16), 4),
        ("dense20", dense_star(20), 3),
        // High skew: one dominant 14-array hub component among 40 cheap chain
        // statements — the shape the self-scheduled workers exist for.
        ("skew14x20", skewed_hub(14, 20), 3),
    ] {
        let sdg = Sdg::from_program(&program);
        let (bitset_median, _) = time_ms(reps, || {
            enumerate_connected_subgraphs(&sdg, max_size, 1_000_000);
        });
        let (naive_median, _) = time_ms(reps, || {
            enumerate_connected_subgraphs_naive(&sdg, max_size, 1_000_000);
        });
        let speedup = naive_median / bitset_median.max(1e-9);
        println!(
            "subgraph_enumeration/{label:<26} bitset {bitset_median:>9.3} ms   naive(seed) {naive_median:>9.3} ms   speedup {speedup:>6.1}x"
        );
        enumeration.push(json!({
            "case": label,
            "max_size": max_size,
            "bitset_median_ms": bitset_median,
            "naive_median_ms": naive_median,
            "speedup": speedup,
        }));
    }

    // --- pebbling_validation: simulate + validate full games ---
    for case in [
        ValidationCase {
            kernel: "gemm",
            size: 12,
            s: 48,
        },
        ValidationCase {
            kernel: "jacobi-1d",
            size: 32,
            s: 16,
        },
    ] {
        let (median, min) = time_ms(reps, || {
            validate_kernel(&case).expect("validation case runs");
        });
        benches.push(record(
            &format!("pebbling_validation/{}", case.kernel),
            median,
            min,
        ));
    }

    // --- dominator_minflow: exact min vertex cut on MMM tiles ---
    let entry = soap_kernels::by_name("gemm").expect("gemm exists");
    for n in [4i64, 6, 8] {
        let params: BTreeMap<String, i64> = entry
            .program
            .parameters()
            .into_iter()
            .map(|p| (p, n))
            .collect();
        let cdag = Cdag::from_program(&entry.program, &params);
        let tile: Vec<usize> = cdag
            .compute_vertices()
            .into_iter()
            .filter(|&v| match &cdag.kinds[v] {
                VertexKind::Compute { iteration, .. } => iteration.iter().all(|&x| x < n / 2),
                _ => false,
            })
            .collect();
        let (median, min) = time_ms(reps, || {
            min_dominator_size(&cdag, &tile);
        });
        benches.push(record(&format!("dominator_minflow/{n}"), median, min));
    }

    let report = json!({
        "schema": "soap-bench-perf/1",
        "reps": reps,
        "profile": if cfg!(debug_assertions) { "debug" } else { "release" },
        "benches": json!(benches),
        "solver_stats": json!(solver_stats),
        "suite_stats": suite_stats_record,
        "store_stats": store_stats_record,
        "serve_stats": serve_stats_record,
        "subgraph_enumeration": json!(enumeration),
        "notes": json!([
            "naive_median_ms times enumerate_connected_subgraphs_naive, a faithful retention of the seed's BTreeSet<Vec<String>> algorithm, so the speedup column is the before/after of the bitset rewrite on the same build",
            "absolute numbers are machine-dependent; compare ratios across records taken on the same host",
            "thread_scaling/{t} runs the registry suite with the worker budget pinned to t; the family is flat on hosts with fewer cores than t, and output bytes are identical across budgets by construction",
            "suite_stats.phases and solver_stats[].phases decompose analyses into enumerate/merge/instantiate/solve; the last three are summed across workers and can exceed wall clock on multi-threaded runs",
            "serve_stats measures the soap-serve daemon's dedup steady state over real TCP (loadgen's default mix); serve/latency_p50 and serve/latency_p99 record the same run's client-side percentiles as benches (median_ms = the percentile, not a median of repetitions)",
            "suite/registry_warm hydrates the populated store solve-only, once, outside the timed region (canonical solutions replayed, front half still runs); suite/registry_warm_report hydrates it once with the finished-report layer enabled, so whole analyses replay without enumeration, merging or solving — one-time startup hydration is excluded from both, and the ratio between the two is the report layer's steady-state win"
        ]),
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, text).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwrote {out_path}");
}
