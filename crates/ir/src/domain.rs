//! Loop variables, affine bounds and iteration domains.

use soap_symbolic::{Polynomial, Rational};
use std::collections::BTreeMap;
use std::fmt;

/// An affine expression over named symbols (loop variables of outer loops and
/// symbolic size parameters) plus an integer constant, e.g. `N - 1` or `k + 1`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    /// Coefficients of the named symbols (sorted, no zero coefficients).
    pub terms: BTreeMap<String, i64>,
    /// The constant offset.
    pub constant: i64,
}

impl AffineExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        AffineExpr::default()
    }

    /// An integer constant.
    pub fn constant(c: i64) -> Self {
        AffineExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// A single symbol.
    pub fn var(name: &str) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(name.to_string(), 1);
        AffineExpr { terms, constant: 0 }
    }

    /// Add two affine expressions.
    pub fn add(&self, other: &AffineExpr) -> AffineExpr {
        let mut terms = self.terms.clone();
        for (k, v) in &other.terms {
            let e = terms.entry(k.clone()).or_insert(0);
            *e += v;
            if *e == 0 {
                terms.remove(k);
            }
        }
        AffineExpr {
            terms,
            constant: self.constant + other.constant,
        }
    }

    /// Add an integer constant.
    pub fn offset(&self, c: i64) -> AffineExpr {
        AffineExpr {
            terms: self.terms.clone(),
            constant: self.constant + c,
        }
    }

    /// Multiply by an integer constant.
    pub fn scale(&self, c: i64) -> AffineExpr {
        if c == 0 {
            return AffineExpr::zero();
        }
        AffineExpr {
            terms: self.terms.iter().map(|(k, v)| (k.clone(), v * c)).collect(),
            constant: self.constant * c,
        }
    }

    /// Subtract.
    pub fn sub(&self, other: &AffineExpr) -> AffineExpr {
        self.add(&other.scale(-1))
    }

    /// The symbols referenced by the expression.
    pub fn symbols(&self) -> impl Iterator<Item = &String> {
        self.terms.keys()
    }

    /// True if the expression is a plain integer constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Convert to a [`Polynomial`] over the same symbol names.
    pub fn to_polynomial(&self) -> Polynomial {
        let mut p = Polynomial::constant(Rational::int(self.constant as i128));
        for (name, coeff) in &self.terms {
            p = p.add(&Polynomial::var(name).scale(Rational::int(*coeff as i128)));
        }
        p
    }

    /// Evaluate under concrete integer bindings; unbound symbols yield `None`.
    pub fn eval(&self, bindings: &BTreeMap<String, i64>) -> Option<i64> {
        let mut acc = self.constant;
        for (name, coeff) in &self.terms {
            acc += coeff * bindings.get(name)?;
        }
        Some(acc)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, coeff) in &self.terms {
            if first {
                match coeff {
                    1 => write!(f, "{name}")?,
                    -1 => write!(f, "-{name}")?,
                    c => write!(f, "{c}*{name}")?,
                }
                first = false;
            } else {
                match coeff {
                    1 => write!(f, " + {name}")?,
                    -1 => write!(f, " - {name}")?,
                    c if *c > 0 => write!(f, " + {c}*{name}")?,
                    c => write!(f, " - {}*{name}", -c)?,
                }
            }
        }
        if first {
            write!(f, "{}", self.constant)
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)
        } else {
            Ok(())
        }
    }
}

/// A loop variable with affine bounds: `for name in [lower, upper)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopVar {
    /// The iteration-variable name.
    pub name: String,
    /// Inclusive lower bound (affine in parameters and outer loop variables).
    pub lower: AffineExpr,
    /// Exclusive upper bound (affine in parameters and outer loop variables).
    pub upper: AffineExpr,
}

impl LoopVar {
    /// Construct a loop variable.
    pub fn new(name: impl Into<String>, lower: AffineExpr, upper: AffineExpr) -> Self {
        LoopVar {
            name: name.into(),
            lower,
            upper,
        }
    }

    /// The trip count `upper - lower` as an affine expression.
    pub fn trip_count(&self) -> AffineExpr {
        self.upper.sub(&self.lower)
    }
}

/// An ordered loop nest (outermost first), i.e. the iteration domain `D` of a
/// statement.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IterationDomain {
    /// Loop variables from outermost to innermost.
    pub loops: Vec<LoopVar>,
}

impl IterationDomain {
    /// Create a domain from a list of loops (outermost first).
    pub fn new(loops: Vec<LoopVar>) -> Self {
        IterationDomain { loops }
    }

    /// The loop-nest depth ℓ.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Names of the iteration variables, outermost first.
    pub fn variable_names(&self) -> Vec<String> {
        self.loops.iter().map(|l| l.name.clone()).collect()
    }

    /// Look up a loop variable by name.
    pub fn loop_var(&self, name: &str) -> Option<&LoopVar> {
        self.loops.iter().find(|l| l.name == name)
    }

    /// The exact cardinality `|D|` of the iteration domain as a polynomial in
    /// the symbolic size parameters, computed by summing `1` over the loops
    /// from the innermost outwards (Faulhaber summation handles triangular
    /// bounds exactly).
    pub fn cardinality(&self) -> Polynomial {
        let mut count = Polynomial::one();
        for lv in self.loops.iter().rev() {
            let lower = lv.lower.to_polynomial();
            // Upper bound is exclusive: sum over [lower, upper-1].
            let upper_incl = lv.upper.to_polynomial().sub(&Polynomial::one());
            count = count.sum_over(&lv.name, &lower, &upper_incl);
        }
        count
    }

    /// Enumerate all concrete iteration vectors for the given parameter
    /// bindings (used by the CDAG builder for small instances).  Loops whose
    /// range is empty produce no iterations.
    pub fn enumerate(&self, params: &BTreeMap<String, i64>) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        let mut current = Vec::with_capacity(self.loops.len());
        self.enumerate_rec(params, &mut current, &mut out);
        out
    }

    fn enumerate_rec(
        &self,
        params: &BTreeMap<String, i64>,
        current: &mut Vec<i64>,
        out: &mut Vec<Vec<i64>>,
    ) {
        let depth = current.len();
        if depth == self.loops.len() {
            out.push(current.clone());
            return;
        }
        let lv = &self.loops[depth];
        // Bindings visible at this depth: parameters plus outer loop variables.
        let mut bindings = params.clone();
        for (i, v) in current.iter().enumerate() {
            bindings.insert(self.loops[i].name.clone(), *v);
        }
        let lo = lv
            .lower
            .eval(&bindings)
            .unwrap_or_else(|| panic!("unbound symbol in lower bound of {}", lv.name));
        let hi = lv
            .upper
            .eval(&bindings)
            .unwrap_or_else(|| panic!("unbound symbol in upper bound of {}", lv.name));
        for v in lo..hi {
            current.push(v);
            self.enumerate_rec(params, current, out);
            current.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_affine;

    #[test]
    fn affine_arithmetic_and_display() {
        let e = parse_affine("N - 1").unwrap();
        assert_eq!(e.constant, -1);
        assert_eq!(format!("{}", e), "N - 1");
        let e2 = e.add(&AffineExpr::var("k")).offset(2);
        assert_eq!(format!("{}", e2), "N + k + 1");
        let zero = e.sub(&e);
        assert!(zero.is_constant());
        assert_eq!(zero.constant, 0);
    }

    #[test]
    fn affine_eval() {
        let e = parse_affine("2*N + k - 3").unwrap();
        let mut b = BTreeMap::new();
        b.insert("N".to_string(), 10i64);
        b.insert("k".to_string(), 5i64);
        assert_eq!(e.eval(&b), Some(22));
        b.remove("k");
        assert_eq!(e.eval(&b), None);
    }

    #[test]
    fn rectangular_domain_cardinality() {
        // for i in 0..N, for j in 0..M  ->  N*M
        let dom = IterationDomain::new(vec![
            LoopVar::new("i", AffineExpr::zero(), AffineExpr::var("N")),
            LoopVar::new("j", AffineExpr::zero(), AffineExpr::var("M")),
        ]);
        let card = dom.cardinality();
        let mut b = BTreeMap::new();
        b.insert("N".to_string(), 7.0);
        b.insert("M".to_string(), 5.0);
        assert_eq!(card.eval(&b).unwrap(), 35.0);
    }

    #[test]
    fn triangular_domain_cardinality_matches_enumeration() {
        // for k in 0..N, for i in k+1..N, for j in k+1..N
        let dom = IterationDomain::new(vec![
            LoopVar::new("k", AffineExpr::zero(), AffineExpr::var("N")),
            LoopVar::new("i", AffineExpr::var("k").offset(1), AffineExpr::var("N")),
            LoopVar::new("j", AffineExpr::var("k").offset(1), AffineExpr::var("N")),
        ]);
        let card = dom.cardinality();
        let mut pb = BTreeMap::new();
        pb.insert("N".to_string(), 9i64);
        let points = dom.enumerate(&pb);
        let mut fb = BTreeMap::new();
        fb.insert("N".to_string(), 9.0);
        assert_eq!(card.eval(&fb).unwrap(), points.len() as f64);
    }

    #[test]
    fn enumeration_respects_dependent_bounds() {
        let dom = IterationDomain::new(vec![
            LoopVar::new("i", AffineExpr::zero(), AffineExpr::constant(3)),
            LoopVar::new("j", AffineExpr::zero(), AffineExpr::var("i").offset(1)),
        ]);
        let points = dom.enumerate(&BTreeMap::new());
        // i=0: j=0; i=1: j=0,1; i=2: j=0,1,2  => 6 points
        assert_eq!(points.len(), 6);
        assert!(points.contains(&vec![2, 1]));
        assert!(!points.contains(&vec![1, 2]));
    }
}
