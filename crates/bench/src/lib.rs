//! # soap-bench
//!
//! The evaluation harness: everything needed to regenerate the paper's
//! Table 2 (per-kernel leading-order I/O lower bounds and improvement factors
//! over the previous state of the art) and the validation experiments
//! (pebbling simulations vs. analytic bounds, SDG scalability, analysis
//! runtime).
//!
//! The library part contains the shared row-building code; the binaries
//! (`table2`, `validate_pebbling`) print human-readable tables and emit
//! machine-readable JSON records, and the Criterion benches under `benches/`
//! time the individual pipeline stages.
#![forbid(unsafe_code)]

pub mod fixtures;
pub mod load;
pub mod validation;

use serde::Serialize;
use soap_baselines::{loomis_whitney_bound, sota_bound};
use soap_kernels::{registry, KernelEntry, KernelGroup};
use soap_sdg::{
    analyze_program_with, analyze_suite, ProgramAnalysis, SdgOptions, SuiteProgram, SuiteSummary,
};
use std::collections::BTreeMap;

/// Reference problem size used for the numeric columns of the table.
pub const REFERENCE_SIZE: f64 = 256.0;
/// Reference fast-memory size (words) used for the numeric columns.
pub const REFERENCE_S: f64 = 1024.0;

/// One row of the reproduced Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Kernel name.
    pub kernel: String,
    /// Table-2 group ("polybench", "nn", "various").
    pub group: String,
    /// The leading-order bound derived by this repository.
    pub derived_bound: String,
    /// The bound reported in the paper.
    pub paper_bound: String,
    /// Derived bound evaluated at the reference sizes.
    pub derived_numeric: f64,
    /// Paper bound evaluated at the reference sizes.
    pub paper_numeric: f64,
    /// `derived / paper` at the reference sizes (1.0 = exact reproduction of
    /// the constant; < 1 means our bound is more conservative).
    pub ratio_to_paper: f64,
    /// The improvement factor over the previous state of the art, recomputed
    /// from our derived bound (`derived / prior`).
    pub derived_improvement: f64,
    /// The improvement factor reported in the paper.
    pub paper_improvement: f64,
    /// The executable Loomis–Whitney projection baseline at the reference
    /// sizes (the style of bound prior automated tools produce).
    pub projection_baseline_numeric: f64,
    /// Source of the prior bound.
    pub prior_source: String,
    /// Analysis wall-clock time in milliseconds.
    pub analysis_ms: f64,
}

impl Serialize for Table2Row {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("kernel".to_string(), self.kernel.to_value()),
            ("group".to_string(), self.group.to_value()),
            ("derived_bound".to_string(), self.derived_bound.to_value()),
            ("paper_bound".to_string(), self.paper_bound.to_value()),
            (
                "derived_numeric".to_string(),
                self.derived_numeric.to_value(),
            ),
            ("paper_numeric".to_string(), self.paper_numeric.to_value()),
            ("ratio_to_paper".to_string(), self.ratio_to_paper.to_value()),
            (
                "derived_improvement".to_string(),
                self.derived_improvement.to_value(),
            ),
            (
                "paper_improvement".to_string(),
                self.paper_improvement.to_value(),
            ),
            (
                "projection_baseline_numeric".to_string(),
                self.projection_baseline_numeric.to_value(),
            ),
            ("prior_source".to_string(), self.prior_source.to_value()),
            ("analysis_ms".to_string(), self.analysis_ms.to_value()),
        ])
    }
}

fn group_name(group: KernelGroup) -> &'static str {
    match group {
        KernelGroup::Polybench => "polybench",
        KernelGroup::NeuralNetworks => "nn",
        KernelGroup::Various => "various",
    }
}

/// Reference bindings: every symbolic size parameter of the program is bound
/// to [`REFERENCE_SIZE`] and `S` to [`REFERENCE_S`].
///
/// Networks whose published formula assumes dimensionally-linked parameters
/// (BERT's model width `E = H·P`, feed-forward width `F = 4·H·P`; LeNet-5's
/// fixed layer sizes) get realistic shapes instead, so the paper formula and
/// the program describe the same computation.
pub fn reference_bindings(entry: &KernelEntry) -> BTreeMap<String, f64> {
    let mut b: BTreeMap<String, f64> = entry
        .program
        .parameters()
        .into_iter()
        .map(|p| (p, REFERENCE_SIZE))
        .collect();
    b.insert("S".to_string(), REFERENCE_S);
    let mut set = |pairs: &[(&str, f64)]| {
        for (k, v) in pairs {
            b.insert((*k).to_string(), *v);
        }
    };
    match entry.name {
        "bert-encoder" => set(&[
            ("B", 8.0),
            ("L", 512.0),
            ("H", 8.0),
            ("P", 64.0),
            ("E", 512.0),
            ("F", 2048.0),
        ]),
        "lenet-5" => set(&[
            ("BATCH", 256.0),
            ("CH", 1.0),
            ("C1N", 6.0),
            ("C2N", 16.0),
            ("H", 28.0),
            ("W", 28.0),
            ("FLAT", 400.0),
            ("FC1", 120.0),
            ("FC2", 84.0),
            ("CLASSES", 10.0),
        ]),
        "direct-conv" => set(&[("WKER", 5.0), ("HKER", 5.0), ("CIN", 64.0), ("COUT", 64.0)]),
        _ => {}
    }
    b
}

/// Analyze one kernel with the Table-2 options (the §5.3 injective case for
/// the direct convolution, the conservative case otherwise).
pub fn analyze_kernel(entry: &KernelEntry) -> ProgramAnalysis {
    let opts = SdgOptions {
        assume_injective: entry.assume_injective,
        ..SdgOptions::default()
    };
    analyze_program_with(&entry.program, &opts)
        .unwrap_or_else(|e| panic!("analysis of {} failed: {e}", entry.name))
}

/// The Table-2 analysis options of a kernel, as one [`SuiteProgram`] for the
/// batch engine.
pub fn suite_program(entry: &KernelEntry) -> SuiteProgram {
    SuiteProgram::new(
        entry.program.clone(),
        SdgOptions {
            assume_injective: entry.assume_injective,
            ..SdgOptions::default()
        },
    )
}

/// Build one Table-2 row.
pub fn build_row(entry: &KernelEntry) -> Table2Row {
    // lint:allow(instant-now): harness wall-clock timing is reporting-only and never feeds analysis results
    let start = std::time::Instant::now();
    let analysis = analyze_kernel(entry);
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    build_row_from(entry, &analysis, elapsed)
}

/// Build one Table-2 row from an already-computed analysis (the batch engine
/// produces the analyses; this derives the comparison columns).
pub fn build_row_from(entry: &KernelEntry, analysis: &ProgramAnalysis, elapsed: f64) -> Table2Row {
    let bindings = reference_bindings(entry);
    let derived_numeric = analysis.bound.eval(&bindings).unwrap_or(f64::NAN);
    // lint:allow(unwrap-expect): the Table-2 record set covers every bundled kernel; a miss is a fixture authoring bug
    let table = sota_bound(entry.name).expect("every kernel has a Table-2 record");
    let paper_numeric = table.paper_soap_bound.eval(&bindings).unwrap_or(f64::NAN);
    let prior_numeric = table.prior_bound().eval(&bindings).unwrap_or(f64::NAN);
    let paper_improvement = table.improvement.eval(&bindings).unwrap_or(f64::NAN);
    let projection = loomis_whitney_bound(&entry.program)
        .eval(&bindings)
        .unwrap_or(f64::NAN);
    Table2Row {
        kernel: entry.name.to_string(),
        group: group_name(entry.group).to_string(),
        derived_bound: format!("{}", analysis.bound),
        paper_bound: format!("{}", table.paper_soap_bound),
        derived_numeric,
        paper_numeric,
        ratio_to_paper: derived_numeric / paper_numeric,
        derived_improvement: derived_numeric / prior_numeric,
        paper_improvement,
        projection_baseline_numeric: projection,
        prior_source: table.source.to_string(),
        analysis_ms: elapsed,
    }
}

/// Build all rows of a group (or all groups when `group` is `None`) through
/// the cross-program batch engine: one shared solve cache across the whole
/// suite, so renamed structures (gemm/2mm/3mm, the stencil family) are solved
/// once per run.  Returns the rows plus the suite-level cache accounting.
pub fn table2_suite(group: Option<KernelGroup>) -> (Vec<Table2Row>, SuiteSummary) {
    let entries: Vec<KernelEntry> = registry()
        .into_iter()
        .filter(|e| group.map(|g| e.group == g).unwrap_or(true))
        .collect();
    let jobs: Vec<SuiteProgram> = entries.iter().map(suite_program).collect();
    let batch = analyze_suite(&jobs);
    let rows = entries
        .iter()
        .zip(&batch.reports)
        .map(|(entry, report)| {
            let analysis = report
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("analysis of {} failed: {e}", entry.name));
            build_row_from(entry, analysis, report.analysis_ms)
        })
        .collect();
    (rows, batch.summary)
}

/// Build all rows of a group (or all groups when `group` is `None`).
pub fn table2(group: Option<KernelGroup>) -> Vec<Table2Row> {
    table2_suite(group).0
}

/// The suite-level accounting of a batch run as a JSON record (shared by the
/// `table2` and `perf` binaries and the CI suite artifact).  The record
/// layout is defined once, by `SuiteSummary`'s `Serialize` impl in
/// `soap-sdg` — the same one `soap-cli batch` emits.
pub fn suite_summary_record(summary: &SuiteSummary) -> serde_json::Value {
    serde_json::to_value(summary)
}

/// One-line human rendering of a batch run's suite-level cache accounting.
pub fn render_suite_summary(summary: &SuiteSummary) -> String {
    let c = summary.cache;
    format!(
        "suite: {} programs in {:.1} ms — {} structures solved, {} cache hits ({} from disk store, {} cross-program, {} intra-program), {} uncacheable",
        summary.programs,
        summary.wall_ms,
        c.misses,
        c.hits,
        c.store_hits,
        c.cross_program_hits,
        // Saturating like the CacheStats serializer: the stats are deltas of
        // non-atomic multi-counter snapshots, so under concurrent cache use
        // the classification counters can momentarily exceed `hits`.
        c.hits
            .saturating_sub(c.cross_program_hits)
            .saturating_sub(c.store_hits),
        c.uncacheable,
    )
}

/// Render rows as a fixed-width text table.
pub fn render_table(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>12} {:>12} {:>8} {:>10} {:>10} {:>9}\n",
        "kernel", "derived", "paper", "ratio", "impr(ours)", "impr(paper)", "time[ms]"
    ));
    out.push_str(&"-".repeat(92));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>12.3e} {:>12.3e} {:>8.3} {:>10.2} {:>10.2} {:>9.1}\n",
            r.kernel,
            r.derived_numeric,
            r.paper_numeric,
            r.ratio_to_paper,
            r.derived_improvement,
            r.paper_improvement,
            r.analysis_ms,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_row_reproduces_the_paper_constant() {
        let entry = soap_kernels::by_name("gemm").unwrap();
        let row = build_row(&entry);
        assert!(
            (row.ratio_to_paper - 1.0).abs() < 0.05,
            "ratio {}",
            row.ratio_to_paper
        );
        assert!(row.projection_baseline_numeric <= row.derived_numeric * 1.01);
    }

    #[test]
    fn rendering_contains_all_rows() {
        let entry = soap_kernels::by_name("mvt").unwrap();
        let rows = vec![build_row(&entry)];
        let text = render_table(&rows);
        assert!(text.contains("mvt"));
    }
}
