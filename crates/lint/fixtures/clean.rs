//! Clean fixture for `soap-lint --self-check`: exercises the same constructs
//! as `violations.rs` but in their sanctioned forms (typed errors, justified
//! markers, canonicalized iteration, documented env vars) — the scanner must
//! report nothing here.

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

pub fn float_sort(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| soap_symbolic::nan_last(*a, *b));
}

pub fn timing() -> Instant {
    // lint:allow(instant-now): fixture demonstrates a justified wall-clock read
    Instant::now()
}

pub fn checked(input: Option<u32>) -> Result<u32, &'static str> {
    input.ok_or("missing input")
}

pub fn serialize_counts(counts: &HashMap<String, u64>) -> String {
    // Canonicalize before serializing: BTreeMap iteration order is stable.
    let sorted: BTreeMap<&String, &u64> = counts.iter().collect();
    let mut out = String::new();
    for (k, v) in &sorted {
        out.push_str(&format!("{k}={v};"));
    }
    out
}

pub fn knob() -> bool {
    std::env::var("SOAP_SELF_CHECK_DOCUMENTED").is_ok()
}
