//! Regenerates the "Various" block of Table 2 (LULESH, COSMO stencils).

use criterion::{criterion_group, criterion_main, Criterion};
use soap_bench::{build_row, table2};
use soap_kernels::KernelGroup;

fn bench_various(c: &mut Criterion) {
    let rows = table2(Some(KernelGroup::Various));
    println!("{}", soap_bench::render_table(&rows));

    let mut group = c.benchmark_group("table2/various");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for name in ["lulesh", "horizontal-diffusion", "vertical-advection"] {
        let entry = soap_kernels::by_name(name).unwrap();
        group.bench_function(name, |b| b.iter(|| build_row(&entry)));
    }
    group.finish();
}

criterion_group!(benches, bench_various);
criterion_main!(benches);
