//! # interleave
//!
//! An offline, dependency-free, loom-style **deterministic concurrency model
//! checker** for the hand-rolled parallel core of this workspace (the
//! `compat/rayon` worker pool, the sharded `SolveCache`, `InFlight`
//! leader/follower coalescing, the serve `Gate`/`ResponseMemo`).
//!
//! ## What it does
//!
//! A *model* is a small closed concurrent program written against the shim
//! primitives in [`sync`], [`atomic`] and [`thread`] (drop-in signatures for
//! their `std::sync` counterparts).  [`Model::check`] runs the model over and
//! over under a **controlled scheduler**: exactly one model thread executes
//! at a time, and every visible operation (lock, unlock, condvar wait/notify,
//! atomic access, spawn, join) is a *schedule point* where the scheduler
//! chooses which thread runs next.  The sequence of choices IS the schedule,
//! so every run is deterministic and replayable.
//!
//! Exploration is a **bounded depth-first search** over schedules (the same
//! path-backtracking idea as loom): the first run takes choice 0 everywhere,
//! then the last branch with an untried alternative is flipped, and so on,
//! until the space is exhausted or a schedule cap is hit.  If the cap is hit
//! first, a configurable number of **seeded pseudo-random schedules** follow
//! so long tails still get probed.  Either way the number of schedules
//! explored is bounded and reported.
//!
//! A model fails when a thread panics (assertion failures included), when no
//! runnable thread remains while some are blocked (**deadlock** — this is how
//! lost condvar wakeups surface), or when a run exceeds its step budget
//! (livelock).  The failure report prints the exact schedule as a
//! dot-separated choice string and a ready-to-paste
//! `INTERLEAVE_REPLAY="model-name=0.1.2…"` incantation; replaying that string
//! re-executes the failing interleaving deterministically — under a debugger,
//! with added prints, whatever is needed.
//!
//! ## What it deliberately does not do
//!
//! * **Weak memory**: the shims are sequentially consistent.  The checker
//!   explores *interleavings*, not relaxed-memory reorderings — the right
//!   level for the invariants checked here (budget accounting, one-leader,
//!   FIFO caps), which are all reasoned about at SC level in the real code.
//! * **In-place instrumentation**: the real crates are not compiled against
//!   the shims.  Invariants are *ported* into small closed models that
//!   mirror the production locking protocols line for line; the model tests
//!   live next to the crates they guard and each has a deliberately broken
//!   "mutation twin" proving the checker would catch the real bug
//!   (`docs/CORRECTNESS.md` has the catalogue).
//!
//! ## Rules for writing models
//!
//! * Construct every shim primitive **inside** the model closure (the closure
//!   runs once per schedule; primitives register with the current run).
//! * Don't `catch_unwind` inside a model — the checker aborts parked threads
//!   by unwinding a private payload through them.
//! * Every loop must cross a shim operation, or the step budget will call it
//!   a livelock.
//!
//! ```
//! use interleave::{atomic::AtomicUsize, thread, Model};
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! // Two racing fetch_adds always sum to 2 — exhaustively checked.
//! let report = Model::new("doc-counter").check(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = thread::spawn(move || n2.fetch_add(1, Ordering::SeqCst));
//!     n.fetch_add(1, Ordering::SeqCst);
//!     t.join();
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.exhaustive);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
mod model;
mod sched;
pub mod sync;
pub mod thread;

pub use model::{Failure, Model, Report};
