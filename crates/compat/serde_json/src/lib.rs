//! Offline stand-in for `serde_json`: JSON text rendering and parsing for the
//! [`serde`] stand-in's [`Value`] model, plus the [`json!`] literal macro.
//!
//! Output follows serde_json's conventions (compact `{"k":v}` form from
//! [`to_string`], two-space indentation from [`to_string_pretty`], `null` for
//! non-finite floats) so generated artifacts stay byte-compatible if the real
//! crates are ever restored.
#![forbid(unsafe_code)]

pub use serde::{DeError, Value};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Convert any serializable type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Render a serializable type as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, DeError> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Render a serializable type as pretty-printed JSON (two-space indents).
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, DeError> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, DeError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::msg(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                if *x == x.trunc() && x.abs() < 1e15 {
                    // serde_json prints integral floats with a trailing ".0".
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            '[',
            ']',
            write_value,
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            depth,
            '{',
            '}',
            |o, (k, val), ind, d| {
                write_escaped(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, d);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, it) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(out, it, indent, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(DeError::msg(format!("invalid token at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(DeError::msg(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    // lint:allow(unwrap-expect): this is the parser's own expect(byte) helper returning Result, not Option::expect
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => {
                            return Err(DeError::msg(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(DeError::msg(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        // lint:allow(unwrap-expect): this is the parser's own expect(byte) helper returning Result, not Option::expect
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(DeError::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| DeError::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| DeError::msg("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(DeError::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| DeError::msg("invalid UTF-8"))?;
                    // lint:allow(unwrap-expect): the peek above guarantees the remainder is non-empty
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| DeError::msg(format!("invalid number '{text}'")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| DeError::msg(format!("invalid number '{text}'")))
        }
    }
}

/// Build a [`Value`] from a JSON-like literal, mirroring `serde_json::json!`.
///
/// Object values and array elements may be arbitrary expressions whose types
/// implement `Serialize` (including nested `json!` invocations).  Unlike the
/// real macro, nested *literals* must be wrapped in their own `json!` call —
/// write `json!({"xs": json!([1, 2])})`, not `json!({"xs": [1, 2]})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( (($key).to_string(), $crate::to_value(&$value)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = json!({ "a": 1i64, "b": json!([true, "x"]) });
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,"x"]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn parses_back_what_it_writes() {
        let v = json!({
            "name": "gemm",
            "bound": 2.5f64,
            "sizes": json!([1i64, 2i64, 3i64]),
            "flag": json!(null)
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn escapes_strings() {
        let text = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(text, r#""a\"b\\c\nd""#);
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, Value::Str("a\"b\\c\nd".to_string()));
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }
}
