//! Keep `docs/OPERATIONS.md` and the binary's usage text from drifting
//! apart: every `SOAP_*` environment variable and every `--flag` the usage
//! text mentions must be documented, and every `SOAP_*` variable the doc
//! mentions must exist in the usage text.  The check runs the real release
//! binary (`CARGO_BIN_EXE_soap-cli`) with no arguments, which must exit 2
//! and print the usage to stderr.

use std::collections::BTreeSet;
use std::process::Command;

fn usage_stderr() -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_soap-cli"))
        .output()
        .expect("spawn soap-cli");
    assert_eq!(
        output.status.code(),
        Some(2),
        "no-argument invocation must be a usage error (exit 2)"
    );
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        stderr.contains("usage:"),
        "usage text missing from stderr:\n{stderr}"
    );
    stderr
}

fn operations_doc() -> String {
    // CARGO_MANIFEST_DIR = crates/cli; the docs live at the workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/OPERATIONS.md");
    std::fs::read_to_string(path).expect("docs/OPERATIONS.md exists")
}

/// All `SOAP_[A-Z_]*` tokens in `text`.
fn env_vars(text: &str) -> BTreeSet<String> {
    let mut vars = BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(at) = text[i..].find("SOAP_") {
        let start = i + at;
        let mut end = start;
        while end < bytes.len() && (bytes[end].is_ascii_uppercase() || bytes[end] == b'_') {
            end += 1;
        }
        // `SOAP_SERVE_*` names a family, not a variable — skip globs.
        if end >= bytes.len() || bytes[end] != b'*' {
            vars.insert(text[start..end].trim_end_matches('_').to_string());
        }
        i = end;
    }
    vars
}

/// All `--flag-name` tokens in `text`.
fn flags(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(at) = text[i..].find("--") {
        let start = i + at;
        let mut end = start + 2;
        while end < bytes.len() && (bytes[end].is_ascii_lowercase() || bytes[end] == b'-') {
            end += 1;
        }
        if end > start + 2 {
            out.insert(text[start..end].to_string());
        }
        i = end;
    }
    out
}

#[test]
fn every_usage_env_var_is_documented_and_vice_versa() {
    let usage = env_vars(&usage_stderr());
    let doc = env_vars(&operations_doc());
    assert!(
        !usage.is_empty(),
        "usage text mentions no SOAP_* variables — extraction broken?"
    );
    let undocumented: Vec<_> = usage.difference(&doc).collect();
    assert!(
        undocumented.is_empty(),
        "environment variables in the usage text but not in docs/OPERATIONS.md: {undocumented:?}"
    );
    let phantom: Vec<_> = doc.difference(&usage).collect();
    assert!(
        phantom.is_empty(),
        "environment variables in docs/OPERATIONS.md but not in the usage text \
         (stale doc or forgotten usage entry): {phantom:?}"
    );
}

#[test]
fn every_usage_flag_is_documented() {
    let usage = flags(&usage_stderr());
    let doc = flags(&operations_doc());
    assert!(
        usage.contains("--cache-dir") && usage.contains("--addr"),
        "flag extraction from usage text looks broken: {usage:?}"
    );
    // One-way on purpose: OPERATIONS.md also documents loadgen's flags,
    // which soap-cli's usage text has no reason to mention.
    let undocumented: Vec<_> = usage.difference(&doc).collect();
    assert!(
        undocumented.is_empty(),
        "flags in the usage text but not in docs/OPERATIONS.md: {undocumented:?}"
    );
}
