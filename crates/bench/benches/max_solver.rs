//! The max-form (piecewise-posynomial) solver path: trust-region KKT solves
//! and full power-law fits on §5.1/§5.3 conservative-union dominators, plus
//! the max-aware canonical-key cache on renamed-isomorphic union models.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use soap_core::access_size::tile_var;
use soap_core::{solve_model, AccessModel};
use soap_sdg::SolveCache;
use soap_symbolic::{ConstrainedProduct, Expr};

fn dv(v: &str) -> Expr {
    Expr::sym(tile_var(v))
}

/// A bert-style two-statement union: both statements read the same input, so
/// the dominator carries a top-level `max` of the two Lemma-3 sizes.
fn union_pair() -> (Vec<String>, Expr, Expr) {
    let chi = dv("b")
        .mul(dv("e"))
        .mul(dv("l"))
        .mul(dv("p"))
        .add(dv("b").mul(dv("e1")).mul(dv("l1")).mul(dv("p")));
    let g = dv("b")
        .mul(dv("l"))
        .mul(dv("l1"))
        .add(dv("b").mul(dv("l")).mul(dv("p")))
        .add(dv("b").mul(dv("l1")).mul(dv("p")))
        .add(dv("e").mul(dv("p")))
        .add(dv("e1").mul(dv("p")))
        .add(
            dv("b")
                .mul(dv("e"))
                .mul(dv("l"))
                .max(dv("b").mul(dv("e1")).mul(dv("l1"))),
        );
    (
        ["b", "e", "l", "p", "e1", "l1"]
            .iter()
            .map(|v| tile_var(v))
            .collect(),
        chi,
        g,
    )
}

/// A convolution-style model with a `max` atom *inside* a monomial
/// (non-injective subscript: `max(D_r, D_w)·D_c`).
fn union_monomial() -> (Vec<String>, Expr, Expr) {
    let chi = dv("r").mul(dv("w")).mul(dv("c"));
    let g = dv("r").max(dv("w")).mul(dv("c")).add(dv("r").mul(dv("w")));
    (
        ["r", "w", "c"].iter().map(|v| tile_var(v)).collect(),
        chi,
        g,
    )
}

/// A renamable union model for the cache benchmark.
fn union_model(name: &str, v: [&str; 3]) -> AccessModel {
    AccessModel {
        name: name.into(),
        tile_variables: v.iter().map(|x| tile_var(x)).collect(),
        objective: dv(v[0]).mul(dv(v[1])).mul(dv(v[2])),
        dominator: dv(v[0])
            .mul(dv(v[1]))
            .max(dv(v[0]).mul(dv(v[2])))
            .add(dv(v[1]).mul(dv(v[2]))),
        access_index_sets: vec![],
    }
}

fn bench_max_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_solver");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    for (label, (vars, chi, g)) in [
        ("union_pair", union_pair()),
        ("union_monomial", union_monomial()),
    ] {
        let compiled = ConstrainedProduct::new(vars.clone(), chi.clone(), g.clone());
        assert!(compiled.is_compiled());
        let reference = ConstrainedProduct::new_reference(vars, chi, g);
        group.bench_function(format!("solve_compiled/{label}"), |b| {
            b.iter(|| black_box(compiled.solve(black_box(3.0e6))))
        });
        group.bench_function(format!("solve_reference/{label}"), |b| {
            b.iter(|| black_box(reference.solve_reference(black_box(3.0e6))))
        });
        group.bench_function(format!("fit_power_law_compiled/{label}"), |b| {
            b.iter(|| black_box(compiled.fit_power_law()))
        });
    }

    // 32 renamed-isomorphic union models through the max-aware canonical-key
    // cache vs solved individually — the dedup PR 3 adds for max dominators.
    let models: Vec<AccessModel> = (0..32)
        .map(|s| {
            let (a, b, c) = (format!("a{s}"), format!("b{s}"), format!("c{s}"));
            union_model(&format!("m{s}"), [a.as_str(), b.as_str(), c.as_str()])
        })
        .collect();
    group.bench_function("isomorphic_32/cached", |b| {
        b.iter(|| {
            let cache = SolveCache::new();
            for m in &models {
                black_box(cache.solve(m).expect("solves"));
            }
        })
    });
    group.bench_function("isomorphic_32/uncached", |b| {
        b.iter(|| {
            for m in &models {
                black_box(solve_model(m).expect("solves"));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_max_solver);
criterion_main!(benches);
