//! Program-level analysis: Theorem 1.

use crate::cache::{CacheStats, SolveCache};
use crate::graph::Sdg;
use crate::merge::merged_model;
use crate::service::structural_program_key;
use crate::store::StoredReport;
use crate::subgraphs::enumerate_connected_subgraphs_governed;
use rayon::prelude::*;
use soap_core::{AnalysisError, AnalysisOptions, IntensityResult};
use soap_ir::Program;
// `nan_last` (the shared NaN-below-everything total order) keeps the
// Theorem-1 maximum deterministic when a subgraph's `ρ` fails to evaluate:
// the seed's `partial_cmp(..).unwrap_or(Equal)` silently treated NaN as equal
// to everything, making the winner order-dependent.
use soap_symbolic::{nan_last, Deadline, Expr, Polynomial, Rational};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Options for the SDG analysis.
#[derive(Clone, Debug)]
pub struct SdgOptions {
    /// Section 5.3: treat linear-combination subscripts as injective.
    pub assume_injective: bool,
    /// Maximum number of arrays per enumerated subgraph.
    pub max_subgraph_size: usize,
    /// Hard cap on the number of enumerated subgraphs.
    pub max_subgraphs: usize,
    /// Reference fast-memory size used to order intensities numerically.
    pub reference_s: f64,
}

impl Default for SdgOptions {
    fn default() -> Self {
        SdgOptions {
            assume_injective: false,
            max_subgraph_size: 4,
            max_subgraphs: 4096,
            reference_s: 1.0e6,
        }
    }
}

/// The intensity of one evaluated SDG subgraph.
#[derive(Clone, Debug)]
pub struct SubgraphIntensity {
    /// The arrays of the subgraph `H`.
    pub arrays: Vec<String>,
    /// The solved intensity of the subgraph statement `St_H`.
    pub intensity: IntensityResult,
    /// `ρ` evaluated once at [`SdgOptions::reference_s`], cached so the
    /// Theorem-1 maximum compares plain floats instead of re-evaluating the
    /// symbolic intensity inside the comparator.
    pub rho_ref: f64,
}

/// The per-array term of Theorem 1.
#[derive(Clone, Debug)]
pub struct ArrayBound {
    /// The computed array.
    pub array: String,
    /// `|A|`: the exact number of CDAG vertices written into the array.
    pub vertex_count: Polynomial,
    /// The maximal intensity over subgraphs containing the array.
    pub rho: Expr,
    /// The exponent σ of that intensity's power law.
    pub sigma: Rational,
    /// The subgraph attaining the maximum.
    pub best_subgraph: Vec<String>,
    /// The array's contribution `|A| / ρ` (leading order).
    pub bound: Expr,
}

/// Solver-side accounting of one program analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverSummary {
    /// Subgraphs enumerated (models attempted).
    pub subgraphs_enumerated: usize,
    /// Models answered from the canonical-key cache.
    pub cache_hits: u64,
    /// Models actually solved (cache misses).
    pub cache_misses: u64,
    /// Models solved directly because no canonical key exists (outside
    /// (max-)posynomial form, or carrying exact-LP index sets).
    pub uncacheable: u64,
    /// The subset of `cache_hits` with a max-form (`max`/`min`) dominator.
    pub max_cache_hits: u64,
    /// The subset of `cache_misses` with a max-form dominator.
    pub max_cache_misses: u64,
    /// The subset of `cache_hits` answered from a structure first solved by a
    /// *different* program sharing the same cache (always 0 for a private
    /// per-program cache).
    pub cross_program_hits: u64,
    /// The subset of `cache_hits` answered from the disk-persisted store the
    /// cache was opened with ([`SolveCache::with_store`]) — structures solved
    /// by an earlier *process*.  Always 0 for a store-less cache; disjoint
    /// from `cross_program_hits`.
    pub store_hits: u64,
    /// 1 when this whole analysis was answered from a persisted *report*
    /// record keyed by [`crate::structural_program_key`] — skipping
    /// enumeration, merging, instantiation, and solving entirely (all other
    /// counters and the phase timings are then zero).  0 on every other
    /// path.
    pub report_hits: u64,
    /// KKT solves of this analysis that exhausted the iteration budget
    /// without converging (also reported in `notes` when non-zero).
    pub kkt_cap_hits: u64,
    /// Subgraphs dropped because statement merging failed.
    pub merge_failures: usize,
    /// Subgraphs dropped because the intensity solve failed.
    pub solve_failures: usize,
    /// Subgraphs dropped because their analysis panicked (caught and isolated
    /// per subgraph; the rest of the program's subgraphs still complete).
    pub panic_failures: usize,
    /// Subgraphs abandoned at a deadline/cancellation commit point.  Unlike
    /// the failure counters above these do **not** merely loosen the
    /// Theorem-1 maximum: every array touching a cancelled subgraph has its
    /// contribution deferred (counted as zero), keeping the degraded bound a
    /// sound partial bound.  Always 0 on an ungoverned, fault-free run.
    pub cancelled: usize,
}

/// Wall-clock decomposition of one program analysis into the pipeline's
/// phases, in milliseconds.
///
/// `enumerate_ms` is plain wall clock on the calling thread (SDG construction
/// plus connected-subgraph enumeration).  The other three are *summed across
/// workers*, so on a multi-threaded run their total can legitimately exceed
/// the program's wall clock.  `solve_ms` counts actual optimizer time (cache
/// misses and uncacheable models only); `instantiate_ms` is the remainder of
/// the per-subgraph cache path — canonical-key construction, shard lock
/// waits and stored-solution instantiation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimings {
    /// SDG construction + connected-subgraph enumeration (wall clock).
    pub enumerate_ms: f64,
    /// Per-subgraph statement merging (summed across workers).
    pub merge_ms: f64,
    /// Canonical-key construction + cache lookup + stored-solution
    /// instantiation (summed across workers).
    pub instantiate_ms: f64,
    /// Actual optimizer solves — cache misses and uncacheable models (summed
    /// across workers).
    pub solve_ms: f64,
}

impl PhaseTimings {
    /// Fold another program's phase timings into suite-level totals.
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.enumerate_ms += other.enumerate_ms;
        self.merge_ms += other.merge_ms;
        self.instantiate_ms += other.instantiate_ms;
        self.solve_ms += other.solve_ms;
    }
}

impl serde::Serialize for PhaseTimings {
    /// The canonical JSON record of a phase breakdown — shared by the CLI's
    /// batch summary and the perf snapshot so the emitters cannot drift.
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("enumerate_ms".to_string(), self.enumerate_ms.to_value()),
            ("merge_ms".to_string(), self.merge_ms.to_value()),
            ("instantiate_ms".to_string(), self.instantiate_ms.to_value()),
            ("solve_ms".to_string(), self.solve_ms.to_value()),
        ])
    }
}

/// Best-effort human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The result of analyzing a whole program.
#[derive(Clone, Debug)]
pub struct ProgramAnalysis {
    /// Program name.
    pub name: String,
    /// Per-array Theorem-1 terms.
    pub per_array: Vec<ArrayBound>,
    /// All evaluated subgraphs and their intensities.
    pub subgraphs: Vec<SubgraphIntensity>,
    /// The total leading-order I/O lower bound `Q`.
    pub bound: Expr,
    /// Diagnostic notes (skipped arrays, enumeration truncation, …).
    pub notes: Vec<String>,
    /// Solve/cache accounting for the perf harness.
    pub solver: SolverSummary,
    /// Per-phase timing breakdown (enumerate / merge / instantiate / solve).
    pub phases: PhaseTimings,
    /// True iff a deadline or cancellation abandoned part of the analysis.
    /// The `bound` is then a *sound partial bound*: numerically at most the
    /// full Theorem-1 bound (deferred arrays contribute zero), never more.
    /// Always false on an ungoverned, fault-free run.
    pub degraded: bool,
    /// Computed arrays whose contribution was deferred (counted as zero)
    /// because a candidate subgraph was cancelled before it solved, or
    /// because enumeration itself was cut short.
    pub arrays_deferred: usize,
}

impl ProgramAnalysis {
    /// Evaluate the bound numerically.
    pub fn bound_at(&self, bindings: &BTreeMap<String, f64>) -> Option<f64> {
        self.bound.eval(bindings)
    }

    /// The dominant (highest-degree) term of the bound, as a display string.
    pub fn bound_string(&self) -> String {
        format!("{}", self.bound)
    }
}

/// Analyze a program with default options.
pub fn analyze_program(program: &Program) -> Result<ProgramAnalysis, AnalysisError> {
    analyze_program_with(program, &SdgOptions::default())
}

/// Analyze a program: enumerate SDG subgraphs, solve each subgraph statement's
/// intensity in parallel, and combine them with Theorem 1.
pub fn analyze_program_with(
    program: &Program,
    opts: &SdgOptions,
) -> Result<ProgramAnalysis, AnalysisError> {
    analyze_program_with_cache(program, opts, &SolveCache::new())
}

/// [`analyze_program_with`] against a caller-provided (possibly shared)
/// [`SolveCache`]: structures already solved by *other* programs through the
/// same cache are answered without solving, and the returned
/// [`SolverSummary`] accounts this analysis's traffic only (with
/// cross-program hits broken out).  Results are byte-identical to a run with
/// a private cache — see the order-invariance notes on [`crate::cache`].
pub fn analyze_program_with_cache(
    program: &Program,
    opts: &SdgOptions,
    cache: &SolveCache,
) -> Result<ProgramAnalysis, AnalysisError> {
    analyze_program_governed(program, opts, cache, None)
}

/// [`analyze_program_with_cache`] under a budget.  With no deadline (and no
/// active fault plan) the output is byte-identical to the ungoverned path.
///
/// When the deadline expires — or the active [`crate::faults::FaultPlan`]
/// trips a deterministic cancellation — the analysis abandons work only at
/// commit points (enumeration level boundaries, per-subgraph closure starts,
/// KKT iteration checks) and returns a **degraded-but-sound** result instead
/// of an error: every array touching a cancelled subgraph contributes *zero*
/// to the bound (see [`ProgramAnalysis::degraded`]), so the degraded bound
/// never exceeds the full Theorem-1 bound.
pub fn analyze_program_governed(
    program: &Program,
    opts: &SdgOptions,
    cache: &SolveCache,
    deadline: Option<&Deadline>,
) -> Result<ProgramAnalysis, AnalysisError> {
    program
        .validate()
        .map_err(|e| AnalysisError::InvalidStatement(e.to_string()))?;
    // Report-store probe: a finished analysis persisted under the same
    // structural key (program structure modulo renaming, plus every option
    // that shapes the result) answers the whole request before any pipeline
    // work — enumeration, merging, instantiation, and solving are all
    // skipped.  Stored reports are never degraded, so the replay is the full
    // Theorem-1 result, byte-identical to recomputing it.
    let report_key = structural_program_key(program, opts);
    if let Some(report) = cache.lookup_report(report_key) {
        return Ok(ProgramAnalysis {
            name: program.name.clone(),
            per_array: report.per_array.clone(),
            subgraphs: report.subgraphs.clone(),
            bound: report.bound.clone(),
            notes: report.notes.clone(),
            solver: SolverSummary {
                report_hits: 1,
                ..SolverSummary::default()
            },
            phases: PhaseTimings::default(),
            degraded: false,
            arrays_deferred: 0,
        });
    }
    let plan = crate::faults::active_plan();
    let mut notes = Vec::new();
    // lint:allow(instant-now): phase timings are perf metadata on the report; bound computation never depends on them
    let enumerate_start = Instant::now();
    let sdg = Sdg::from_program(program);
    let enumeration = enumerate_connected_subgraphs_governed(
        &sdg,
        opts.max_subgraph_size,
        opts.max_subgraphs,
        deadline,
        plan.as_deref().and_then(|p| p.level_cap()),
    );
    let enumerate_ms = enumerate_start.elapsed().as_secs_f64() * 1e3;
    if enumeration.truncated {
        notes.push(format!(
            "subgraph enumeration truncated at {} subgraphs (max size {}); the bound may be looser than the full Theorem-1 maximum",
            opts.max_subgraphs, opts.max_subgraph_size
        ));
    }
    let enumeration_cut_short = enumeration.deadline_truncated;
    let subgraph_sets = enumeration.subgraphs;
    let core_opts = AnalysisOptions {
        assume_injective: opts.assume_injective,
    };

    // Solve all subgraph statements in parallel; structurally identical
    // merged models (canonical key modulo variable renaming) hit the shared
    // solve cache and are solved only once.  The session scopes this
    // analysis's accounting within the (possibly shared) cache.  Each
    // subgraph runs under `catch_unwind`, so one panicking subgraph is
    // dropped like any other per-subgraph failure instead of tearing down
    // the whole program analysis.
    let session = cache.session_governed(deadline.cloned());
    let reference_s = opts.reference_s;
    let merge_ns = AtomicU64::new(0);
    let solve_call_ns = AtomicU64::new(0);
    enum SubgraphFailure {
        Merge(AnalysisError),
        Solve(AnalysisError),
        Panic(String),
        Cancelled,
    }
    let program_name = program.name.as_str();
    // The worker-pool stand-in has no `enumerate`; pair each set with its
    // enumeration index up front (the index keys the plan's deterministic,
    // thread-independent cancellation trip).
    let indexed_sets: Vec<(usize, &Vec<String>)> = subgraph_sets.iter().enumerate().collect();
    let outcomes: Vec<Result<SubgraphIntensity, SubgraphFailure>> = indexed_sets
        .par_iter()
        .map(|&(index, arrays)| {
            // Cancellation commit point: the plan trip is a pure function of
            // the enumeration index (thread-independent), the wall-clock
            // check is best-effort.  Checked before any work is spent.
            if plan.as_deref().is_some_and(|p| p.cancels_subgraph(index))
                || deadline.is_some_and(|d| d.expired())
            {
                return Err(SubgraphFailure::Cancelled);
            }
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if plan
                    .as_deref()
                    .is_some_and(|p| p.panics_subgraph(program_name, arrays))
                {
                    panic!(
                        "injected fault-plan panic (program {program_name}, subgraph {arrays:?})"
                    );
                }
                // lint:allow(instant-now): phase timings are perf metadata on the report; bound computation never depends on them
                let merge_start = Instant::now();
                let merged = merged_model(program, arrays, &core_opts);
                merge_ns.fetch_add(crate::cache::elapsed_ns(merge_start), Ordering::Relaxed);
                let model = merged.map_err(SubgraphFailure::Merge)?;
                // lint:allow(instant-now): phase timings are perf metadata on the report; bound computation never depends on them
                let solve_start = Instant::now();
                let solved = session.solve(&model);
                solve_call_ns.fetch_add(crate::cache::elapsed_ns(solve_start), Ordering::Relaxed);
                let intensity = solved.map_err(|e| match e {
                    AnalysisError::Cancelled(_) => SubgraphFailure::Cancelled,
                    other => SubgraphFailure::Solve(other),
                })?;
                let rho_ref = intensity.rho_at(reference_s);
                Ok(SubgraphIntensity {
                    arrays: arrays.clone(),
                    intensity,
                    rho_ref,
                })
            }))
            .unwrap_or_else(|payload| Err(SubgraphFailure::Panic(panic_message(&*payload))))
        })
        .collect();

    // Failed subgraphs only loosen the Theorem-1 maximum (fewer candidate
    // intensities); count them per error kind so a looser bound is
    // diagnosable instead of silently dropping them.  *Cancelled* subgraphs
    // are different: dropping a candidate would raise the claimed lower
    // bound, so every array they touch is deferred instead (contributes 0).
    let attempted = outcomes.len();
    let mut subgraphs: Vec<SubgraphIntensity> = Vec::with_capacity(attempted);
    let mut merge_failures = 0usize;
    let mut solve_failures = 0usize;
    let mut panic_failures = 0usize;
    let mut cancelled = 0usize;
    let mut deferred_arrays: BTreeSet<String> = BTreeSet::new();
    let mut first_panic: Option<String> = None;
    let mut failure_kinds: BTreeMap<String, usize> = BTreeMap::new();
    for (index, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(s) => subgraphs.push(s),
            Err(SubgraphFailure::Cancelled) => {
                cancelled += 1;
                deferred_arrays.extend(subgraph_sets[index].iter().cloned());
            }
            Err(failure) => {
                let (stage, kind) = match &failure {
                    SubgraphFailure::Merge(e) => {
                        merge_failures += 1;
                        ("merge", error_kind(e))
                    }
                    SubgraphFailure::Solve(e) => {
                        solve_failures += 1;
                        ("solve", error_kind(e))
                    }
                    SubgraphFailure::Panic(msg) => {
                        panic_failures += 1;
                        if first_panic.is_none() {
                            first_panic = Some(msg.clone());
                        }
                        ("analysis", "panic")
                    }
                    SubgraphFailure::Cancelled => unreachable!("handled above"),
                };
                *failure_kinds.entry(format!("{stage}/{kind}")).or_insert(0) += 1;
            }
        }
    }
    if merge_failures + solve_failures + panic_failures > 0 {
        let breakdown: Vec<String> = failure_kinds
            .iter()
            .map(|(kind, count)| format!("{count}× {kind}"))
            .collect();
        notes.push(format!(
            "{} of {} enumerated subgraphs were skipped ({}); their intensities are missing from the Theorem-1 maximum, so the bound may be looser",
            merge_failures + solve_failures + panic_failures,
            attempted,
            breakdown.join(", ")
        ));
    }
    if let Some(msg) = first_panic {
        notes.push(format!(
            "a subgraph analysis panicked (first payload: {msg}); this is a bug in the analysis, not a property of the input"
        ));
    }
    let cache_stats: CacheStats = session.stats();
    if cache_stats.kkt_cap_hits > 0 {
        notes.push(format!(
            "{} KKT solve(s) exhausted the iteration budget without converging; the affected intensities use the best iterate found and may be slightly loose",
            cache_stats.kkt_cap_hits
        ));
    }

    let degraded = enumeration_cut_short || cancelled > 0;
    if degraded {
        let mut parts = Vec::new();
        if enumeration_cut_short {
            parts.push("subgraph enumeration was cut short at a level boundary".to_string());
        }
        if cancelled > 0 {
            parts.push(format!(
                "{cancelled} of {attempted} subgraph(s) were cancelled before solving"
            ));
        }
        notes.push(format!(
            "analysis degraded by deadline/cancellation: {}; affected arrays contribute zero, so the reported bound is a sound partial bound (at most the full Theorem-1 bound)",
            parts.join("; ")
        ));
    }

    // Theorem 1: per computed array, the maximal intensity over subgraphs
    // containing it.  Under degradation an array is *deferred* — counted as
    // zero — when its candidate set may be incomplete: dropping a candidate
    // from the maximum would shrink the denominator and *raise* the claimed
    // lower bound, which is the unsound direction.
    let params = program.parameters();
    let mut per_array = Vec::new();
    let mut arrays_deferred = 0usize;
    let mut total = Expr::zero();
    for array in program.computed_arrays() {
        if enumeration_cut_short || deferred_arrays.contains(&array) {
            arrays_deferred += 1;
            notes.push(format!(
                "array {array}: contribution deferred (a candidate subgraph was cancelled before solving); counted as zero in the degraded bound"
            ));
            continue;
        }
        let candidates: Vec<&SubgraphIntensity> = subgraphs
            .iter()
            .filter(|s| s.arrays.contains(&array))
            .collect();
        if candidates.is_empty() {
            notes.push(format!(
                "array {array}: no analyzable subgraph (e.g. an initialization statement without inputs); its compulsory traffic is not included in the bound"
            ));
            continue;
        }
        let best = candidates
            .iter()
            .max_by(|a, b| nan_last(a.rho_ref, b.rho_ref))
            // lint:allow(unwrap-expect): candidate enumeration always yields at least the trivial subgraph
            .expect("non-empty candidates");
        let vertex_count = program.vertex_count_of(&array);
        let leading = vertex_count.leading_terms(&params).to_expr();
        let bound = leading.div(best.intensity.rho.clone());
        total = total.add(bound.clone());
        per_array.push(ArrayBound {
            array,
            vertex_count,
            rho: best.intensity.rho.clone(),
            sigma: best.intensity.sigma,
            best_subgraph: best.arrays.clone(),
            bound,
        });
    }

    let solve_ms = session.solve_ms();
    let phases = PhaseTimings {
        enumerate_ms,
        merge_ms: merge_ns.load(Ordering::Relaxed) as f64 / 1e6,
        instantiate_ms: (solve_call_ns.load(Ordering::Relaxed) as f64 / 1e6 - solve_ms).max(0.0),
        solve_ms,
    };

    // Persist the finished report for later processes — but only a *full*
    // result: degraded analyses are partial by construction, and a panicked
    // subgraph means the Theorem-1 maximum may be missing candidates for a
    // reason that is a bug, not a property of the input.
    if !degraded && panic_failures == 0 && cache.reports_enabled() {
        cache.record_report(
            report_key,
            StoredReport {
                per_array: per_array.clone(),
                subgraphs: subgraphs.clone(),
                bound: total.clone(),
                notes: notes.clone(),
            },
        );
    }

    Ok(ProgramAnalysis {
        name: program.name.clone(),
        per_array,
        subgraphs,
        bound: total,
        notes,
        solver: SolverSummary {
            subgraphs_enumerated: attempted,
            cache_hits: cache_stats.hits,
            cache_misses: cache_stats.misses,
            uncacheable: cache_stats.uncacheable,
            max_cache_hits: cache_stats.max_hits,
            max_cache_misses: cache_stats.max_misses,
            cross_program_hits: cache_stats.cross_program_hits,
            store_hits: cache_stats.store_hits,
            report_hits: 0,
            kkt_cap_hits: cache_stats.kkt_cap_hits,
            merge_failures,
            solve_failures,
            panic_failures,
            cancelled,
        },
        phases,
        degraded,
        arrays_deferred,
    })
}

/// The diagnostic kind label of an [`AnalysisError`] for failure breakdowns.
fn error_kind(err: &AnalysisError) -> &'static str {
    match err {
        AnalysisError::InvalidStatement(_) => "invalid statement",
        AnalysisError::NoInputs(_) => "no inputs",
        AnalysisError::NumericalFailure(_) => "numerical failure",
        AnalysisError::Internal(_) => "internal failure",
        AnalysisError::Cancelled(_) => "cancelled",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_ir::ProgramBuilder;

    fn eval(e: &Expr, pairs: &[(&str, f64)]) -> f64 {
        let b: BTreeMap<String, f64> = pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        e.eval(&b).unwrap()
    }

    fn gemm() -> Program {
        ProgramBuilder::new("gemm")
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N"), ("k", "0", "N")])
                    .update("C", "i,j")
                    .read("A", "i,k")
                    .read("B", "k,j")
            })
            .build()
            .unwrap()
    }

    fn two_mm() -> Program {
        ProgramBuilder::new("2mm")
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N"), ("k", "0", "N")])
                    .update("tmp", "i,j")
                    .read("A", "i,k")
                    .read("B", "k,j")
            })
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("l", "0", "N"), ("j", "0", "N")])
                    .update("D", "i,l")
                    .read("tmp", "i,j")
                    .read("C", "j,l")
            })
            .build()
            .unwrap()
    }

    #[test]
    fn gemm_program_bound_matches_single_statement() {
        let res = analyze_program(&gemm()).unwrap();
        assert_eq!(res.per_array.len(), 1);
        let q = eval(&res.bound, &[("N", 1000.0), ("S", 10_000.0)]);
        assert!((q - 2.0e7).abs() / 2.0e7 < 0.05, "bound {q}");
    }

    #[test]
    fn two_mm_bound_is_four_n_cubed_over_sqrt_s() {
        let res = analyze_program(&two_mm()).unwrap();
        assert_eq!(res.per_array.len(), 2);
        let q = eval(&res.bound, &[("N", 1000.0), ("S", 10_000.0)]);
        let expected = 4.0e9 / 100.0;
        assert!(
            (q - expected).abs() / expected < 0.1,
            "bound {q} vs {expected}"
        );
        // Both arrays should be bounded by the isolated matmul intensity.
        for ab in &res.per_array {
            assert_eq!(ab.sigma, Rational::new(3, 2), "array {}", ab.array);
        }
    }

    #[test]
    fn mvt_counts_the_matrix_once() {
        let p = ProgramBuilder::new("mvt")
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N")])
                    .update("x1", "i")
                    .read("A", "i,j")
                    .read("y1", "j")
            })
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N")])
                    .update("x2", "i")
                    .read("A", "j,i")
                    .read("y2", "j")
            })
            .build()
            .unwrap();
        let res = analyze_program(&p).unwrap();
        // Q ≈ N² (the matrix is read once; the two MVs share it).
        let q = eval(&res.bound, &[("N", 1000.0), ("S", 10_000.0)]);
        assert!((q - 1.0e6).abs() / 1.0e6 < 0.1, "bound {q}");
    }

    #[test]
    fn notes_report_uncovered_arrays() {
        // An initialization statement writing zeros has no inputs at all; its
        // array cannot be bounded and must be reported in the notes.
        let p = ProgramBuilder::new("init_only")
            .statement(|st| st.loops(&[("i", "0", "N")]).write("Z", "0"))
            .build();
        // "Z[0]" uses a constant subscript; the loop variable i never appears,
        // which is fine for the IR but yields no analyzable dominator.
        let p = p.unwrap();
        let res = analyze_program(&p).unwrap();
        assert!(res.per_array.is_empty());
        assert!(!res.notes.is_empty());
    }
}
