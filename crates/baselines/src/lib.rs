//! # soap-baselines
//!
//! The comparison column of Table 2: previously published state-of-the-art
//! I/O lower bounds (IOLB, Olivry et al. PLDI'20, for Polybench; Zhang et al.
//! for the direct convolution), plus an executable Loomis–Whitney projection
//! baseline that reproduces the "geometric" style of bound the prior work is
//! built on.
//!
//! The published formulas are encoded symbolically so the Table-2 improvement
//! factors can be recomputed as a ratio of expressions, and the projection
//! baseline lets the benchmark harness compare against an *executable* prior
//! method rather than only against transcription of published numbers.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod projection;
pub mod sota;

pub use projection::loomis_whitney_bound;
pub use sota::{sota_bound, SotaBound};
