//! # soap-serve
//!
//! Analysis-as-a-service: a multi-threaded HTTP daemon that answers I/O
//! lower-bound queries for program source (`.c`/`.py` dialects) or built-in
//! Table-2 kernel names — the paper's *static* promise (bounds computed once,
//! reused everywhere) turned into one warm, shared service.
//!
//! The daemon is deliberately a thin shell over machinery that earlier layers
//! already proved out:
//!
//! * **Analysis** goes through
//!   [`analyze_program_governed`] with the
//!   process-lifetime sharded [`SolveCache`] — structurally identical subgraph
//!   models are solved once per process, and with `--cache-dir` once *ever*
//!   (the disk store is the shared warm state across replicas and restarts).
//! * **Per-request deadlines** map the server's timeout knob onto the
//!   `--timeout-ms` degraded-mode machinery: a request that exceeds its budget
//!   returns HTTP 200 with `"degraded": true` and a sound partial bound —
//!   degradation is not a failure, so it is never a 5xx.
//! * **Request dedup** happens before any analysis: responses are memoized by
//!   [`canonical_program_hash`] (renaming-invariant, so gensym'd duplicates
//!   hit), and N identical *concurrent* requests coalesce onto one analysis
//!   through [`InFlight`] — one leader computes, N−1 followers share.
//! * **Backpressure**: admission to the analysis engine runs through a
//!   bounded gate (`analysis_slots` running + `queue_capacity` waiting).  A
//!   request that finds the queue full is rejected immediately with `429` and
//!   a `Retry-After` header — memory stays bounded no matter the offered load.
//! * **Graceful shutdown** (`POST /shutdown` or [`RunningServer::shutdown_now`])
//!   stops the listeners, lets in-flight requests finish, and flushes newly
//!   solved canonical solutions back to the store.
//!
//! ## Endpoints
//!
//! | Route | Method | Behavior |
//! |---|---|---|
//! | `/healthz` | GET | liveness probe, `200 ok` |
//! | `/stats` | GET | counters, dedup ratio, queue depth, solve-cache stats |
//! | `/kernels` | GET | built-in kernel names (JSON array) |
//! | `/analyze?kernel=NAME` | GET/POST | analyze a built-in kernel |
//! | `/analyze?lang=c\|python[&name=..][&timeout_ms=..][&injective=1]` | POST | analyze the request body as source |
//! | `/flush` | POST | flush new canonical solutions to the store now |
//! | `/shutdown` | POST | begin graceful shutdown |
//!
//! Client mistakes (unknown kernel, malformed source, bad query parameter,
//! wrong method) are 4xx; 5xx is reserved for genuine server faults (an
//! analysis panic).  See `docs/OPERATIONS.md` for the full configuration
//! reference.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use soap_sdg::{
    analyze_program_governed, canonical_program_hash, parse_timeout_ms, Claim, Deadline, InFlight,
    ProgramAnalysis, SdgOptions, SolveCache,
};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Server configuration: listen address, concurrency shape, analysis budget
/// and warm state.  [`ServeConfig::from_env`] reads the `SOAP_SERVE_*` /
/// `SOAP_TIMEOUT_MS` / `SOAP_CACHE_DIR` environment (documented in
/// `docs/OPERATIONS.md`); the CLI layers `serve` flags on top.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:7878` by default; use port 0 for an
    /// ephemeral port in tests).
    pub addr: String,
    /// HTTP listener threads — the maximum number of concurrently *served*
    /// connections (`SOAP_SERVE_HTTP_THREADS`, default 8).
    pub http_threads: usize,
    /// Analyses allowed to run concurrently (`SOAP_SERVE_SLOTS`, default 4).
    /// Each analysis is itself parallel on the shared worker pool
    /// (`SOAP_THREADS`), so a few slots saturate a machine.
    pub analysis_slots: usize,
    /// Requests allowed to *wait* for a slot (`SOAP_SERVE_QUEUE`, default
    /// 64).  A request beyond `analysis_slots + queue_capacity` is rejected
    /// with 429 instead of growing memory.
    pub queue_capacity: usize,
    /// Default per-request analysis budget (`SOAP_TIMEOUT_MS`; none by
    /// default).  Queue wait counts against it.  Overridable per request via
    /// `?timeout_ms=`.
    pub timeout: Option<Duration>,
    /// Canonical-solution store directory (`SOAP_CACHE_DIR` / `--cache-dir`):
    /// hydrated at startup, flushed on `/flush` and at shutdown.
    pub cache_dir: Option<String>,
    /// Base value of the `Retry-After` header on 429 responses, in seconds.
    /// The advertised value scales with the queue depth observed at
    /// rejection: `retry_after_secs × (1 + queued)`, capped at 600 — a
    /// saturated queue tells clients to back off longer.
    pub retry_after_secs: u32,
    /// Maximum entries in the memoized-response cache
    /// (`SOAP_SERVE_MEMO_CAP` / `--memo-cap`, default 4096).  Inserting
    /// beyond the cap evicts the oldest entry (FIFO), so a long-lived daemon
    /// fed an unbounded stream of distinct programs holds bounded memory.
    pub memo_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            http_threads: 8,
            analysis_slots: 4,
            queue_capacity: 64,
            timeout: None,
            cache_dir: None,
            retry_after_secs: 1,
            memo_cap: 4096,
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by the environment.  Invalid values are ignored
    /// (an env var travels further than a flag, so a typo must not kill every
    /// daemon start on the host) — the CLI flags, in contrast, reject bad
    /// values loudly.
    pub fn from_env() -> ServeConfig {
        let mut c = ServeConfig::default();
        if let Ok(addr) = std::env::var("SOAP_SERVE_ADDR") {
            if !addr.is_empty() {
                c.addr = addr;
            }
        }
        if let Some(n) = env_usize("SOAP_SERVE_HTTP_THREADS") {
            c.http_threads = n;
        }
        if let Some(n) = env_usize("SOAP_SERVE_SLOTS") {
            c.analysis_slots = n;
        }
        if let Ok(raw) = std::env::var("SOAP_SERVE_QUEUE") {
            // Unlike the others, 0 is meaningful here: "no queue, reject
            // whatever cannot start immediately".
            if let Ok(n) = raw.trim().parse::<usize>() {
                c.queue_capacity = n;
            }
        }
        c.timeout = std::env::var("SOAP_TIMEOUT_MS")
            .ok()
            .and_then(|raw| parse_timeout_ms(&raw));
        c.cache_dir = std::env::var("SOAP_CACHE_DIR")
            .ok()
            .filter(|d| !d.is_empty());
        if let Some(n) = env_usize("SOAP_SERVE_MEMO_CAP") {
            c.memo_cap = n;
        }
        c
    }
}

fn env_usize(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Admission gate: at most `slots` analyses running, at most `queue` more
/// waiting; everything beyond is rejected immediately.
struct Gate {
    state: Mutex<GateState>,
    cond: Condvar,
    slots: usize,
    queue: usize,
}

#[derive(Clone, Copy, Default)]
struct GateState {
    running: usize,
    queued: usize,
}

impl Gate {
    fn new(slots: usize, queue: usize) -> Gate {
        Gate {
            state: Mutex::new(GateState::default()),
            cond: Condvar::new(),
            slots: slots.max(1),
            queue,
        }
    }

    /// Admit or reject.  Admitted callers may block (bounded by the queue
    /// capacity, counted against their own deadline); rejected callers return
    /// immediately with `Err(queued)` — the 429 path — carrying the queue
    /// depth observed at rejection so the response can scale its
    /// `Retry-After` advice.
    fn admit(&self) -> Result<GatePermit<'_>, usize> {
        // lint:allow(unwrap-expect): gate state is plain counters; a poisoned lock means a handler panicked and fail-stop is the policy (model-checked in tests/interleave_serve.rs)
        let mut st = self.state.lock().expect("not poisoned");
        if st.running + st.queued >= self.slots + self.queue {
            return Err(st.queued);
        }
        if st.running < self.slots {
            st.running += 1;
            return Ok(GatePermit { gate: self });
        }
        st.queued += 1;
        while st.running >= self.slots {
            // lint:allow(unwrap-expect): gate state is plain counters; a poisoned lock means a handler panicked and fail-stop is the policy (model-checked in tests/interleave_serve.rs)
            st = self.cond.wait(st).expect("not poisoned");
        }
        st.queued -= 1;
        st.running += 1;
        Ok(GatePermit { gate: self })
    }

    fn depth(&self) -> GateState {
        // lint:allow(unwrap-expect): gate state is plain counters; a poisoned lock means a handler panicked and fail-stop is the policy (model-checked in tests/interleave_serve.rs)
        *self.state.lock().expect("not poisoned")
    }
}

/// Holding this permit is holding one of the gate's execution slots.
struct GatePermit<'a> {
    gate: &'a Gate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        // lint:allow(unwrap-expect): gate state is plain counters; a poisoned lock means a handler panicked and fail-stop is the policy (model-checked in tests/interleave_serve.rs)
        let mut st = self.gate.state.lock().expect("not poisoned");
        st.running -= 1;
        drop(st);
        self.gate.cond.notify_one();
    }
}

/// Monotonic service counters, all readable through `GET /stats`.
#[derive(Default)]
struct Counters {
    /// Every request the handler saw.
    requests: AtomicU64,
    /// Requests to `/analyze` (the dedup-ratio denominator).
    analyze_requests: AtomicU64,
    /// Analyses actually executed (leader runs).
    analyses: AtomicU64,
    /// Analyses that returned an error (client-program problem, 4xx).
    analysis_failures: AtomicU64,
    /// Analyses that hit their deadline and returned a degraded (sound
    /// partial) bound.
    degraded: AtomicU64,
    /// `/analyze` answered from the memoized-response cache.
    response_cache_hits: AtomicU64,
    /// `/analyze` answered by waiting on an identical in-flight analysis.
    coalesced: AtomicU64,
    /// Memoized responses evicted because the memo hit its capacity bound.
    memo_evictions: AtomicU64,
    /// Requests rejected with 429 because the queue was full.
    rejected: AtomicU64,
    /// Responses by status class.
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
}

/// What one analysis produced, shared verbatim with coalesced followers.
/// `tail` is the serialized record *minus* the `program` name field, which
/// every response splices back in (dedup is renaming-invariant, so followers
/// may have asked under a different name).
#[derive(Clone)]
struct Outcome {
    status: u16,
    /// `Retry-After` seconds to advertise (429 rejections only).
    retry_after: Option<u32>,
    tail: Arc<String>,
}

/// The memoized-response cache, bounded by `memo_cap`: a map plus FIFO
/// insertion order.  Inserting a fresh key at capacity evicts the oldest
/// entry, so memory stays bounded under an unbounded stream of distinct
/// programs while steady-state workloads (a registry's worth of kernels, far
/// below any sane cap) never evict at all.
struct ResponseMemo {
    state: Mutex<MemoState>,
    cap: usize,
}

#[derive(Default)]
struct MemoState {
    map: HashMap<u64, Arc<String>>,
    order: VecDeque<u64>,
}

impl ResponseMemo {
    fn new(cap: usize) -> ResponseMemo {
        ResponseMemo {
            state: Mutex::new(MemoState::default()),
            cap: cap.max(1),
        }
    }

    fn get(&self, key: u64) -> Option<Arc<String>> {
        self.state
            .lock()
            // lint:allow(unwrap-expect): memo state is a plain map+queue; a poisoned lock means a handler panicked and fail-stop is the policy (model-checked in tests/interleave_serve.rs)
            .expect("not poisoned")
            .map
            .get(&key)
            .cloned()
    }

    /// Insert (or refresh) an entry; returns the number of entries evicted
    /// to stay within the cap (0 or 1).
    fn insert(&self, key: u64, tail: Arc<String>) -> u64 {
        // lint:allow(unwrap-expect): memo state is a plain map+queue; a poisoned lock means a handler panicked and fail-stop is the policy (model-checked in tests/interleave_serve.rs)
        let mut st = self.state.lock().expect("not poisoned");
        if st.map.insert(key, tail).is_some() {
            return 0; // refreshed in place; order entry already present
        }
        st.order.push_back(key);
        if st.map.len() <= self.cap {
            return 0;
        }
        while let Some(oldest) = st.order.pop_front() {
            if st.map.remove(&oldest).is_some() {
                return 1;
            }
        }
        0
    }

    fn len(&self) -> usize {
        // lint:allow(unwrap-expect): memo state is a plain map+queue; a poisoned lock means a handler panicked and fail-stop is the policy (model-checked in tests/interleave_serve.rs)
        self.state.lock().expect("not poisoned").map.len()
    }
}

/// The request-handling core: every route, independent of the transport.
/// [`RunningServer`] mounts it behind the HTTP listener threads; tests can
/// drive [`AnalysisService::handle`] directly.
pub struct AnalysisService {
    config: ServeConfig,
    cache: SolveCache,
    /// The kernel registry, materialized once: `soap_kernels::registry()`
    /// constructs all 38 programs, far too much work to redo per request on
    /// the `?kernel=` hot path.
    kernels: Vec<soap_kernels::KernelEntry>,
    responses: ResponseMemo,
    inflight: InFlight<Outcome>,
    gate: Gate,
    counters: Counters,
    shutdown: ShutdownSignal,
}

struct ShutdownSignal {
    requested: Mutex<bool>,
    cond: Condvar,
}

impl AnalysisService {
    /// Build a service: opens the store-backed solve cache when
    /// `config.cache_dir` is set (hydrating prior canonical solutions), a
    /// plain process-local cache otherwise.
    pub fn new(config: ServeConfig) -> io::Result<AnalysisService> {
        let cache = match config.cache_dir.as_deref() {
            Some(dir) => {
                SolveCache::with_store(dir).map_err(|e| io::Error::other(e.to_string()))?
            }
            None => SolveCache::new(),
        };
        Ok(AnalysisService {
            gate: Gate::new(config.analysis_slots, config.queue_capacity),
            responses: ResponseMemo::new(config.memo_cap),
            config,
            cache,
            kernels: soap_kernels::registry(),
            inflight: InFlight::new(),
            counters: Counters::default(),
            shutdown: ShutdownSignal {
                requested: Mutex::new(false),
                cond: Condvar::new(),
            },
        })
    }

    /// Handle one request: route, execute, count.  This is the entire server
    /// behavior; the HTTP layer adds nothing but transport.
    pub fn handle(&self, req: &httpd::Request) -> httpd::Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let resp = self.route(req);
        let class = match resp.status {
            200..=299 => &self.counters.responses_2xx,
            400..=499 => &self.counters.responses_4xx,
            _ => &self.counters.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        resp
    }

    fn route(&self, req: &httpd::Request) -> httpd::Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => httpd::Response::text(200, "ok\n"),
            ("GET", "/stats") => self.stats_response(),
            ("GET", "/kernels") => {
                let names: Vec<serde_json::Value> = self
                    .kernels
                    .iter()
                    .map(|e| serde_json::Value::Str(e.name.to_string()))
                    .collect();
                json_response(
                    200,
                    vec![("kernels".into(), serde_json::Value::Array(names))],
                )
            }
            ("GET" | "POST", "/analyze") => self.analyze(req),
            ("POST", "/flush") => match self.cache.flush_store() {
                Ok(flush) => json_response(
                    200,
                    vec![
                        (
                            "flushed".into(),
                            serde_json::Value::Int(flush.appended as i128),
                        ),
                        (
                            "reports_flushed".into(),
                            serde_json::Value::Int(flush.reports_appended as i128),
                        ),
                    ],
                ),
                Err(e) => error_response(500, &format!("store flush failed: {e}")),
            },
            ("POST", "/shutdown") => {
                self.request_shutdown();
                json_response(
                    200,
                    vec![("shutting_down".into(), serde_json::Value::Bool(true))],
                )
            }
            (_, "/healthz" | "/stats" | "/kernels" | "/analyze" | "/flush" | "/shutdown") => {
                error_response(405, "method not allowed")
            }
            _ => error_response(404, "no such route"),
        }
    }

    /// `/analyze`: resolve the program, dedup, admit, run governed analysis.
    fn analyze(&self, req: &httpd::Request) -> httpd::Response {
        self.counters
            .analyze_requests
            .fetch_add(1, Ordering::Relaxed);
        let (program, injective, name) = match self.resolve_program(req) {
            Ok(triple) => triple,
            Err(resp) => return resp,
        };
        let timeout = match req.query_param("timeout_ms") {
            Some(raw) => match parse_timeout_ms(&raw) {
                Some(d) => Some(d),
                None => {
                    return error_response(
                        400,
                        "timeout_ms expects a positive integer of milliseconds",
                    )
                }
            },
            None => self.config.timeout,
        };
        // The dedup key: renaming-invariant program structure, plus the one
        // option that changes the answer.
        let mut key = canonical_program_hash(&program);
        if injective {
            key ^= 0x9e37_79b9_7f4a_7c15;
        }

        if let Some(tail) = self.memoized(key) {
            self.counters
                .response_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            return spliced_response(200, &name, &tail, None);
        }

        // Coalesce: one leader per key; followers share its outcome.  A
        // follower only sees `None` if its leader died without publishing
        // (panic mid-publish); retry once, then report the fault.
        for _ in 0..2 {
            match self.inflight.claim(key) {
                Claim::Follower(Some(outcome)) => {
                    self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                    return spliced_response(
                        outcome.status,
                        &name,
                        &outcome.tail,
                        outcome.retry_after,
                    );
                }
                Claim::Follower(None) => continue,
                Claim::Leader(guard) => {
                    // Double-check the memo: a previous leader may have
                    // published between our miss and our claim.
                    if let Some(tail) = self.memoized(key) {
                        guard.complete(Outcome {
                            status: 200,
                            retry_after: None,
                            tail: Arc::clone(&tail),
                        });
                        self.counters
                            .response_cache_hits
                            .fetch_add(1, Ordering::Relaxed);
                        return spliced_response(200, &name, &tail, None);
                    }
                    // Deadline starts here: time spent waiting in the
                    // admission queue is time the caller is waiting, so it
                    // counts against the budget.
                    let deadline = timeout.map(Deadline::after);
                    let permit = match self.gate.admit() {
                        Ok(permit) => permit,
                        Err(queued) => {
                            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                            let outcome = Outcome {
                                status: 429,
                                retry_after: Some(self.retry_after_hint(queued)),
                                tail: Arc::new(rejected_tail()),
                            };
                            guard.complete(outcome.clone());
                            return spliced_response(
                                429,
                                &name,
                                &outcome.tail,
                                outcome.retry_after,
                            );
                        }
                    };
                    let outcome = self.run_analysis(key, &program, injective, deadline.as_ref());
                    drop(permit);
                    guard.complete(outcome.clone());
                    return spliced_response(
                        outcome.status,
                        &name,
                        &outcome.tail,
                        outcome.retry_after,
                    );
                }
            }
        }
        error_response(500, "analysis leader failed repeatedly")
    }

    /// `Retry-After` seconds for a 429: the configured base scaled by the
    /// queue depth observed at rejection.  An empty queue (`slots` all busy,
    /// nobody waiting) advertises the base; every waiter ahead of a retry
    /// adds one more base interval, capped at ten minutes.
    fn retry_after_hint(&self, queued: usize) -> u32 {
        let multiplier = (1 + queued).min(u32::MAX as usize) as u32;
        self.config
            .retry_after_secs
            .saturating_mul(multiplier)
            .min(600)
    }

    /// Execute one governed analysis (the leader path) and render its
    /// outcome.  Panics are isolated to a 500 for this request only.
    fn run_analysis(
        &self,
        key: u64,
        program: &soap_ir::Program,
        injective: bool,
        deadline: Option<&Deadline>,
    ) -> Outcome {
        self.counters.analyses.fetch_add(1, Ordering::Relaxed);
        let opts = SdgOptions {
            assume_injective: injective,
            ..SdgOptions::default()
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            analyze_program_governed(program, &opts, &self.cache, deadline)
        }));
        match result {
            Ok(Ok(analysis)) => {
                let tail = Arc::new(analysis_tail(&analysis));
                if analysis.degraded {
                    // A degraded bound is sound but budget-shaped: memoizing
                    // it would freeze one request's deadline into every
                    // future answer, so only complete analyses are cached.
                    self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                } else {
                    let evicted = self.responses.insert(key, Arc::clone(&tail));
                    if evicted > 0 {
                        self.counters
                            .memo_evictions
                            .fetch_add(evicted, Ordering::Relaxed);
                    }
                }
                Outcome {
                    status: 200,
                    retry_after: None,
                    tail,
                }
            }
            Ok(Err(e)) => {
                self.counters
                    .analysis_failures
                    .fetch_add(1, Ordering::Relaxed);
                Outcome {
                    status: 400,
                    retry_after: None,
                    tail: Arc::new(error_tail(&format!("analysis failed: {e}"))),
                }
            }
            Err(_) => Outcome {
                status: 500,
                retry_after: None,
                tail: Arc::new(error_tail("internal: analysis panicked")),
            },
        }
    }

    fn memoized(&self, key: u64) -> Option<Arc<String>> {
        self.responses.get(key)
    }

    /// Resolve the request to `(program, assume_injective, display name)`.
    #[allow(clippy::type_complexity)]
    fn resolve_program(
        &self,
        req: &httpd::Request,
    ) -> Result<(soap_ir::Program, bool, String), httpd::Response> {
        if let Some(kernel) = req.query_param("kernel") {
            let Some(entry) = self.kernels.iter().find(|e| e.name == kernel) else {
                return Err(error_response(
                    404,
                    &format!("unknown kernel '{kernel}'; GET /kernels lists the registry"),
                ));
            };
            return Ok((entry.program.clone(), entry.assume_injective, kernel));
        }
        if req.method != "POST" {
            return Err(error_response(
                400,
                "GET /analyze requires ?kernel=NAME; POST source with ?lang=c|python",
            ));
        }
        if req.body.is_empty() {
            return Err(error_response(
                400,
                "empty body: POST program source with ?lang=c|python",
            ));
        }
        let Some(source) = req.body_utf8() else {
            return Err(error_response(400, "body is not valid UTF-8"));
        };
        let name = req
            .query_param("name")
            .unwrap_or_else(|| "program".to_string());
        let lang = req
            .query_param("lang")
            .unwrap_or_else(|| "python".to_string());
        let injective = match req.query_param("injective").as_deref() {
            None => false,
            Some("1" | "true") => true,
            Some("0" | "false") => false,
            Some(other) => {
                return Err(error_response(
                    400,
                    &format!("injective expects 1|0|true|false, got '{other}'"),
                ))
            }
        };
        let parsed = match lang.as_str() {
            "c" => soap_frontend::parse_c(&name, source),
            "python" | "py" => soap_frontend::parse_python(&name, source),
            other => {
                return Err(error_response(
                    400,
                    &format!("unknown language '{other}' (expected c or python)"),
                ))
            }
        };
        match parsed {
            Ok(program) => Ok((program, injective, name)),
            Err(e) => Err(error_response(400, &format!("parse error: {e}"))),
        }
    }

    /// `GET /stats`: the numbers an operator (or the load harness) watches.
    fn stats_response(&self) -> httpd::Response {
        let c = &self.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let analyze_requests = load(&c.analyze_requests);
        let deduped = load(&c.response_cache_hits) + load(&c.coalesced);
        let dedup_ratio = if analyze_requests == 0 {
            0.0
        } else {
            deduped as f64 / analyze_requests as f64
        };
        let depth = self.gate.depth();
        let mut fields: Vec<(String, serde_json::Value)> = vec![
            ("requests".into(), int(load(&c.requests))),
            ("analyze_requests".into(), int(analyze_requests)),
            ("analyses".into(), int(load(&c.analyses))),
            ("analysis_failures".into(), int(load(&c.analysis_failures))),
            ("degraded".into(), int(load(&c.degraded))),
            (
                "response_cache_hits".into(),
                int(load(&c.response_cache_hits)),
            ),
            ("coalesced".into(), int(load(&c.coalesced))),
            ("memo_evictions".into(), int(load(&c.memo_evictions))),
            ("rejected".into(), int(load(&c.rejected))),
            ("responses_2xx".into(), int(load(&c.responses_2xx))),
            ("responses_4xx".into(), int(load(&c.responses_4xx))),
            ("responses_5xx".into(), int(load(&c.responses_5xx))),
            ("dedup_ratio".into(), serde_json::Value::Float(dedup_ratio)),
            (
                "response_cache_entries".into(),
                int(self.responses.len() as u64),
            ),
            ("response_cache_cap".into(), int(self.responses.cap as u64)),
            ("inflight".into(), int(self.inflight.len() as u64)),
            (
                "queue".into(),
                serde_json::Value::Object(vec![
                    ("running".into(), int(depth.running as u64)),
                    ("queued".into(), int(depth.queued as u64)),
                    ("slots".into(), int(self.gate.slots as u64)),
                    ("queue_capacity".into(), int(self.gate.queue as u64)),
                ]),
            ),
            (
                "solve_cache".into(),
                serde_json::to_value(&self.cache.stats()),
            ),
        ];
        if let Some(loaded) = self.cache.store_load_stats() {
            let mut store_fields = vec![
                ("hydrated_entries".into(), int(loaded.entries as u64)),
                ("segments".into(), int(loaded.segments as u64)),
            ];
            if let Some(reports) = self.cache.report_load_stats() {
                store_fields.push(("hydrated_reports".into(), int(reports.entries as u64)));
                store_fields.push(("report_segments".into(), int(reports.segments as u64)));
            }
            fields.push(("store".into(), serde_json::Value::Object(store_fields)));
        }
        json_response(200, fields)
    }

    /// Signal graceful shutdown; [`RunningServer::wait_for_shutdown`] wakes.
    pub fn request_shutdown(&self) {
        // lint:allow(unwrap-expect): shutdown flag holders only read or set a bool; they cannot panic while holding it
        *self.shutdown.requested.lock().expect("not poisoned") = true;
        self.shutdown.cond.notify_all();
    }

    /// True once a shutdown was requested.
    pub fn shutdown_requested(&self) -> bool {
        // lint:allow(unwrap-expect): shutdown flag holders only read or set a bool; they cannot panic while holding it
        *self.shutdown.requested.lock().expect("not poisoned")
    }

    /// Block until a shutdown is requested.
    pub fn wait_for_shutdown(&self) {
        // lint:allow(unwrap-expect): shutdown flag holders only read or set a bool; they cannot panic while holding it
        let mut requested = self.shutdown.requested.lock().expect("not poisoned");
        while !*requested {
            // lint:allow(unwrap-expect): shutdown flag holders only read or set a bool; they cannot panic while holding it
            requested = self.shutdown.cond.wait(requested).expect("not poisoned");
        }
    }

    /// Flush newly solved canonical solutions to the store (no-op without a
    /// store).  Returns the number of appended records.
    pub fn flush(&self) -> Result<usize, String> {
        self.cache
            .flush_store()
            .map(|f| f.appended)
            .map_err(|e| e.to_string())
    }

    /// The store directory, when store-backed.
    pub fn cache_dir(&self) -> Option<&str> {
        self.config.cache_dir.as_deref()
    }
}

fn int(v: u64) -> serde_json::Value {
    serde_json::Value::Int(v as i128)
}

/// Serialize an object and strip the opening `{`: the stored "tail" of a
/// response whose `program` field gets spliced in per request.
fn object_tail(fields: Vec<(String, serde_json::Value)>) -> String {
    // lint:allow(unwrap-expect): the JSON value is a finite map of strings and numbers; serialization cannot fail
    let s = serde_json::to_string(&serde_json::Value::Object(fields)).expect("serializable");
    s[1..].to_string()
}

/// The success record for one analysis, minus the `program` field.  Layout
/// mirrors `soap-cli batch` per-program records (bound, per-array ρ/σ, notes,
/// degradation accounting) without the order/time-dependent fields — the tail
/// is memoized, so it must be a pure function of program structure.
fn analysis_tail(analysis: &ProgramAnalysis) -> String {
    let mut fields: Vec<(String, serde_json::Value)> = vec![
        ("ok".into(), serde_json::Value::Bool(true)),
        (
            "bound".into(),
            serde_json::Value::Str(format!("{}", analysis.bound)),
        ),
        (
            "per_array".into(),
            serde_json::Value::Array(
                analysis
                    .per_array
                    .iter()
                    .map(|a| {
                        serde_json::Value::Object(vec![
                            ("array".into(), serde_json::Value::Str(a.array.clone())),
                            ("rho".into(), serde_json::Value::Str(format!("{}", a.rho))),
                            (
                                "sigma".into(),
                                serde_json::Value::Str(format!("{}", a.sigma)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("notes".into(), serde_json::to_value(&analysis.notes)),
    ];
    if analysis.degraded {
        fields.push(("degraded".into(), serde_json::Value::Bool(true)));
        fields.push((
            "subgraphs_cancelled".into(),
            serde_json::to_value(&analysis.solver.cancelled),
        ));
        fields.push((
            "arrays_deferred".into(),
            serde_json::to_value(&analysis.arrays_deferred),
        ));
    }
    object_tail(fields)
}

fn error_tail(message: &str) -> String {
    object_tail(vec![
        ("ok".into(), serde_json::Value::Bool(false)),
        ("error".into(), serde_json::Value::Str(message.to_string())),
    ])
}

fn rejected_tail() -> String {
    object_tail(vec![
        ("ok".into(), serde_json::Value::Bool(false)),
        (
            "error".into(),
            serde_json::Value::Str("queue full: retry later".to_string()),
        ),
    ])
}

/// Splice the caller's program name into a stored tail:
/// `{"program":<name>,` + tail.  One small allocation per response — this is
/// what lets memoized/coalesced answers skip serialization entirely.
fn spliced_response(
    status: u16,
    name: &str,
    tail: &str,
    retry_after: Option<u32>,
) -> httpd::Response {
    let escaped = serde_json::to_string(&serde_json::Value::Str(name.to_string()))
        // lint:allow(unwrap-expect): the JSON value is a finite map of strings and numbers; serialization cannot fail
        .expect("string serializes");
    let body = format!("{{\"program\":{escaped},{}", tail);
    let resp = httpd::Response::json(status, body);
    match retry_after {
        Some(secs) => resp.with_header("retry-after", &secs.to_string()),
        None => resp,
    }
}

fn json_response(status: u16, fields: Vec<(String, serde_json::Value)>) -> httpd::Response {
    let body =
        // lint:allow(unwrap-expect): the JSON value is a finite map of strings and numbers; serialization cannot fail
        serde_json::to_string(&serde_json::Value::Object(fields)).expect("serializable") + "\n";
    httpd::Response::json(status, body)
}

fn error_response(status: u16, message: &str) -> httpd::Response {
    json_response(
        status,
        vec![
            ("ok".into(), serde_json::Value::Bool(false)),
            ("error".into(), serde_json::Value::Str(message.to_string())),
        ],
    )
}

/// A live daemon: the HTTP listeners plus the shared [`AnalysisService`].
pub struct RunningServer {
    http: httpd::Server,
    service: Arc<AnalysisService>,
}

impl RunningServer {
    /// Bind and start serving.  Returns once the socket is listening.
    pub fn start(config: ServeConfig) -> io::Result<RunningServer> {
        let http_threads = config.http_threads.max(1);
        let addr = config.addr.clone();
        let service = Arc::new(AnalysisService::new(config)?);
        let handler_service = Arc::clone(&service);
        let http = httpd::Server::serve(
            &addr,
            http_threads,
            Arc::new(move |req: &httpd::Request| handler_service.handle(req)),
        )?;
        Ok(RunningServer { http, service })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.http.local_addr()
    }

    /// The shared service, e.g. to inspect counters in tests.
    pub fn service(&self) -> &Arc<AnalysisService> {
        &self.service
    }

    /// Block until `POST /shutdown` (or [`AnalysisService::request_shutdown`]).
    pub fn wait_for_shutdown(&self) {
        self.service.wait_for_shutdown();
    }

    /// Graceful stop: stop accepting, finish in-flight requests, flush the
    /// store.  Returns the number of canonical solutions persisted.
    pub fn stop(self) -> Result<usize, String> {
        self.http.stop();
        self.service.flush()
    }

    /// Programmatic shutdown trigger (same as `POST /shutdown`).
    pub fn shutdown_now(&self) {
        self.service.request_shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str, query: Option<&str>, body: &[u8]) -> httpd::Request {
        httpd::Request {
            method: method.to_string(),
            path: path.to_string(),
            query: query.map(str::to_string),
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    fn service() -> AnalysisService {
        AnalysisService::new(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        })
        .expect("service")
    }

    #[test]
    fn health_kernels_and_routing() {
        let svc = service();
        assert_eq!(
            svc.handle(&request("GET", "/healthz", None, b"")).status,
            200
        );
        let kernels = svc.handle(&request("GET", "/kernels", None, b""));
        assert_eq!(kernels.status, 200);
        assert!(kernels.body_utf8().unwrap().contains("\"atax\""));
        assert_eq!(svc.handle(&request("GET", "/nope", None, b"")).status, 404);
        assert_eq!(
            svc.handle(&request("PUT", "/healthz", None, b"")).status,
            405
        );
        assert_eq!(svc.handle(&request("GET", "/flush", None, b"")).status, 405);
    }

    #[test]
    fn kernel_analysis_and_response_memoization() {
        let svc = service();
        let r1 = svc.handle(&request("GET", "/analyze", Some("kernel=atax"), b""));
        assert_eq!(r1.status, 200, "{:?}", r1.body_utf8());
        let body = r1.body_utf8().unwrap();
        assert!(body.starts_with("{\"program\":\"atax\","), "{body}");
        assert!(body.contains("\"ok\":true"));
        assert!(body.contains("\"bound\""));
        // Second request: answered from the memo, byte-identical.
        let r2 = svc.handle(&request("GET", "/analyze", Some("kernel=atax"), b""));
        assert_eq!(r2.body_utf8().unwrap(), body);
        assert_eq!(svc.counters.analyses.load(Ordering::Relaxed), 1);
        assert_eq!(svc.counters.response_cache_hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn renamed_source_hits_the_same_memo_entry() {
        let svc = service();
        let src_a =
            "for i in range(0, N):\n    for j in range(0, N):\n        C[i] += A[i][j] * B[j]\n";
        let src_b =
            "for q in range(0, N):\n    for r in range(0, N):\n        C[q] += A[q][r] * B[r]\n";
        let r1 = svc.handle(&request(
            "POST",
            "/analyze",
            Some("lang=python&name=first"),
            src_a.as_bytes(),
        ));
        assert_eq!(r1.status, 200, "{:?}", r1.body_utf8());
        let r2 = svc.handle(&request(
            "POST",
            "/analyze",
            Some("lang=python&name=second"),
            src_b.as_bytes(),
        ));
        assert_eq!(r2.status, 200);
        assert_eq!(svc.counters.analyses.load(Ordering::Relaxed), 1);
        assert_eq!(svc.counters.response_cache_hits.load(Ordering::Relaxed), 1);
        // Same payload, different spliced name.
        let b1 = r1.body_utf8().unwrap();
        let b2 = r2.body_utf8().unwrap();
        assert!(b1.starts_with("{\"program\":\"first\","));
        assert!(b2.starts_with("{\"program\":\"second\","));
        assert_eq!(b1.split_once(',').unwrap().1, b2.split_once(',').unwrap().1);
    }

    #[test]
    fn client_mistakes_are_4xx() {
        let svc = service();
        // Unknown kernel.
        let r = svc.handle(&request(
            "GET",
            "/analyze",
            Some("kernel=not-a-kernel"),
            b"",
        ));
        assert_eq!(r.status, 404);
        // GET without kernel.
        assert_eq!(
            svc.handle(&request("GET", "/analyze", None, b"")).status,
            400
        );
        // Empty body.
        assert_eq!(
            svc.handle(&request("POST", "/analyze", Some("lang=python"), b""))
                .status,
            400
        );
        // Non-UTF-8 body.
        assert_eq!(
            svc.handle(&request(
                "POST",
                "/analyze",
                Some("lang=python"),
                &[0xff, 0xfe, 0x01]
            ))
            .status,
            400
        );
        // Malformed source.
        let r = svc.handle(&request(
            "POST",
            "/analyze",
            Some("lang=python"),
            b"this is not a loop nest",
        ));
        assert_eq!(r.status, 400);
        assert!(r.body_utf8().unwrap().contains("parse error"));
        // Bad language / bad params.
        assert_eq!(
            svc.handle(&request("POST", "/analyze", Some("lang=fortran"), b"x"))
                .status,
            400
        );
        assert_eq!(
            svc.handle(&request(
                "GET",
                "/analyze",
                Some("kernel=atax&timeout_ms=zero"),
                b""
            ))
            .status,
            400
        );
        assert_eq!(svc.counters.responses_5xx.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn gate_saturation_rejects_with_retry_after() {
        let svc = AnalysisService::new(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            analysis_slots: 1,
            queue_capacity: 0,
            ..ServeConfig::default()
        })
        .expect("service");
        // Deterministic saturation: hold the only slot directly, then ask
        // for an analysis.
        let permit = svc.gate.admit().expect("first permit");
        let r = svc.handle(&request("GET", "/analyze", Some("kernel=gemm"), b""));
        assert_eq!(r.status, 429, "{:?}", r.body_utf8());
        assert_eq!(r.header("retry-after"), Some("1"));
        assert!(r.body_utf8().unwrap().contains("queue full"));
        assert_eq!(svc.counters.rejected.load(Ordering::Relaxed), 1);
        drop(permit);
        // Slot free again: the same request now succeeds.
        let r = svc.handle(&request("GET", "/analyze", Some("kernel=gemm"), b""));
        assert_eq!(r.status, 200);
    }

    #[test]
    fn gate_queues_up_to_capacity_and_rejects_beyond() {
        let gate = Gate::new(1, 1);
        let p1 = gate.admit().expect("slot");
        let gate_ref: &'static Gate = Box::leak(Box::new(Gate::new(1, 1)));
        let q1 = gate_ref.admit().expect("slot");
        let waiter = std::thread::spawn(move || gate_ref.admit().map(drop).is_ok());
        // Give the waiter time to enter the queue, then the queue is full.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(gate_ref.admit().err(), Some(1), "queue slot already taken");
        drop(q1);
        assert!(waiter.join().unwrap(), "queued request runs after release");
        drop(p1);
        assert!(gate.admit().is_ok());
    }

    #[test]
    fn retry_after_scales_with_queue_depth() {
        let svc = Arc::new(
            AnalysisService::new(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                analysis_slots: 1,
                queue_capacity: 2,
                ..ServeConfig::default()
            })
            .expect("service"),
        );
        // Deterministic saturation: hold the only slot, then park two
        // waiters in the queue so a rejection observes depth 2.
        let permit = svc.gate.admit().expect("slot");
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&svc);
                std::thread::spawn(move || drop(s.gate.admit()))
            })
            .collect();
        while svc.gate.depth().queued < 2 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let r = svc.handle(&request("GET", "/analyze", Some("kernel=gemm"), b""));
        assert_eq!(r.status, 429, "{:?}", r.body_utf8());
        // Base 1s × (1 + 2 queued): a deeper queue advertises a longer
        // back-off than the empty-queue "1".
        assert_eq!(r.header("retry-after"), Some("3"));
        drop(permit);
        for w in waiters {
            w.join().expect("waiter exits");
        }
    }

    #[test]
    fn memo_is_bounded_with_fifo_eviction() {
        let svc = AnalysisService::new(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            memo_cap: 3,
            ..ServeConfig::default()
        })
        .expect("service");
        // Eight structurally distinct programs (the array name feeds the
        // canonical hash) — more than twice the cap.
        let programs: Vec<String> = (0..8)
            .map(|i| format!("for i in range(0, N):\n    B{i}[i] = A{i}[i] + 1\n"))
            .collect();
        let mut bodies = Vec::new();
        for (i, src) in programs.iter().enumerate() {
            let r = svc.handle(&request(
                "POST",
                "/analyze",
                Some(&format!("lang=python&name=p{i}")),
                src.as_bytes(),
            ));
            assert_eq!(r.status, 200, "{:?}", r.body_utf8());
            bodies.push(r.body_utf8().unwrap().to_string());
        }
        // The map never grew past the cap, and the overflow was counted.
        assert_eq!(svc.responses.len(), 3);
        assert_eq!(svc.counters.memo_evictions.load(Ordering::Relaxed), 5);
        // Evicted programs still answer correctly — they just re-analyze.
        let analyses_before = svc.counters.analyses.load(Ordering::Relaxed);
        let r = svc.handle(&request(
            "POST",
            "/analyze",
            Some("lang=python&name=p0"),
            programs[0].as_bytes(),
        ));
        assert_eq!(r.status, 200);
        assert_eq!(r.body_utf8().unwrap(), bodies[0]);
        assert_eq!(
            svc.counters.analyses.load(Ordering::Relaxed),
            analyses_before + 1,
            "p0 was evicted, so it re-analyzes"
        );
        // The freshest entries are still memoized.
        let hits_before = svc.counters.response_cache_hits.load(Ordering::Relaxed);
        let r = svc.handle(&request(
            "POST",
            "/analyze",
            Some("lang=python&name=p7"),
            programs[7].as_bytes(),
        ));
        assert_eq!(r.status, 200);
        assert_eq!(r.body_utf8().unwrap(), bodies[7]);
        assert_eq!(
            svc.counters.response_cache_hits.load(Ordering::Relaxed),
            hits_before + 1
        );
    }

    #[test]
    fn stats_expose_dedup_and_queue() {
        let svc = service();
        svc.handle(&request("GET", "/analyze", Some("kernel=atax"), b""));
        svc.handle(&request("GET", "/analyze", Some("kernel=atax"), b""));
        let stats = svc.handle(&request("GET", "/stats", None, b""));
        assert_eq!(stats.status, 200);
        let v: serde_json::Value = serde_json::from_str(stats.body_utf8().unwrap()).unwrap();
        assert_eq!(v.get("analyses").and_then(|x| x.as_i128()), Some(1));
        assert_eq!(
            v.get("response_cache_hits").and_then(|x| x.as_i128()),
            Some(1)
        );
        assert!(v.get("dedup_ratio").is_some());
        assert!(v.get("queue").and_then(|q| q.get("slots")).is_some());
        assert!(v.get("solve_cache").and_then(|c| c.get("hits")).is_some());
    }

    #[test]
    fn shutdown_signal_wakes_waiters() {
        let svc = Arc::new(service());
        let waiter_svc = Arc::clone(&svc);
        let waiter = std::thread::spawn(move || waiter_svc.wait_for_shutdown());
        let r = svc.handle(&request("POST", "/shutdown", None, b""));
        assert_eq!(r.status, 200);
        assert!(svc.shutdown_requested());
        waiter.join().expect("waiter exits");
    }

    #[test]
    fn name_with_quotes_is_escaped() {
        let svc = service();
        let src = "for i in range(0, N):\n    B[i] = A[i]\n";
        let r = svc.handle(&request(
            "POST",
            "/analyze",
            Some("lang=python&name=we%22ird"),
            src.as_bytes(),
        ));
        assert_eq!(r.status, 200);
        let body = r.body_utf8().unwrap();
        assert!(body.starts_with("{\"program\":\"we\\\"ird\","), "{body}");
        // Still valid JSON.
        let v: Result<serde_json::Value, _> = serde_json::from_str(body);
        assert!(v.is_ok());
    }
}
