//! Golden tests pinning the interned-symbol `Expr` to the seed's observable
//! behaviour: `Display` strings and the serde wire format must be exactly
//! what the pre-interning `String`-payload implementation produced.
//!
//! The expressions are the leading-order Table-2 bounds the pipeline derives
//! (gemm, 2mm, mvt, jacobi-1d-style stencils), so any canonical-ordering or
//! formatting drift in the symbol rewrite shows up as a failed golden string.

use soap_symbolic::{Expr, Rational};

fn gemm_bound() -> Expr {
    // 2*NI*NJ*NK/sqrt(S)
    Expr::int(2)
        .mul(Expr::sym("NI"))
        .mul(Expr::sym("NJ"))
        .mul(Expr::sym("NK"))
        .div(Expr::sym("S").sqrt())
}

fn two_mm_bound() -> Expr {
    // 2*NI*NJ*NK/sqrt(S) + 2*NI*NJ*NL/sqrt(S)
    let first = Expr::int(2)
        .mul(Expr::sym("NI"))
        .mul(Expr::sym("NJ"))
        .mul(Expr::sym("NK"))
        .div(Expr::sym("S").sqrt());
    let second = Expr::int(2)
        .mul(Expr::sym("NI"))
        .mul(Expr::sym("NJ"))
        .mul(Expr::sym("NL"))
        .div(Expr::sym("S").sqrt());
    first.add(second)
}

#[test]
fn table2_display_strings_match_seed() {
    assert_eq!(format!("{}", gemm_bound()), "2*NI*NJ*NK/sqrt(S)");
    assert_eq!(
        format!("{}", two_mm_bound()),
        "2*NI*NJ*NK/sqrt(S) + 2*NI*NJ*NL/sqrt(S)"
    );
    // mvt: N^2
    assert_eq!(format!("{}", Expr::sym("N").pow(Rational::int(2))), "N^2");
    // jacobi-1d-style: 3*N*T/S (leading order of the stencil bound).
    let jacobi = Expr::int(3)
        .mul(Expr::sym("N"))
        .mul(Expr::sym("T"))
        .div(Expr::sym("S"));
    assert_eq!(format!("{jacobi}"), "3*N*T/S");
    // A subtraction renders with the constant last.
    assert_eq!(format!("{}", Expr::sym("N").sub(Expr::one())), "N - 1");
}

#[test]
fn canonical_term_order_is_alphabetical_not_interner_order() {
    // Intern Z before A: canonical ordering must still follow the strings,
    // exactly as the seed's `Expr::Sym(String)` ordering did.
    let z_first = Expr::sym("ZZZ_golden").add(Expr::sym("AAA_golden"));
    assert_eq!(format!("{z_first}"), "AAA_golden + ZZZ_golden");
    let product = Expr::sym("ZZ_g2").mul(Expr::sym("AA_g2"));
    assert_eq!(format!("{product}"), "AA_g2*ZZ_g2");
}

#[test]
fn serde_wire_format_matches_seed_derive() {
    // {"Sym":"N"} — externally tagged, name as a plain string.
    assert_eq!(
        serde_json::to_string(&Expr::sym("N")).unwrap(),
        r#"{"Sym":"N"}"#
    );
    // Numbers carry the named Rational fields.
    assert_eq!(
        serde_json::to_string(&Expr::num(Rational::new(1, 2))).unwrap(),
        r#"{"Num":{"num":1,"den":2}}"#
    );
    // Pow is a [base, exponent] tuple variant.
    assert_eq!(
        serde_json::to_string(&Expr::sym("S").sqrt()).unwrap(),
        r#"{"Pow":[{"Sym":"S"},{"num":1,"den":2}]}"#
    );
    // The full gemm bound, exactly as the seed's derived serde wrote it.
    assert_eq!(
        serde_json::to_string(&gemm_bound()).unwrap(),
        r#"{"Mul":[{"Num":{"num":2,"den":1}},{"Sym":"NI"},{"Sym":"NJ"},{"Sym":"NK"},{"Pow":[{"Sym":"S"},{"num":-1,"den":2}]}]}"#
    );
}

#[test]
fn serde_round_trips_table2_bounds() {
    for expr in [
        gemm_bound(),
        two_mm_bound(),
        Expr::sym("N").pow(Rational::int(2)),
        Expr::sym("N").max(Expr::sym("S")).mul(Expr::int(3)),
        Expr::sym("N").min(Expr::sym("M")).add(Expr::one()),
    ] {
        let text = serde_json::to_string(&expr).unwrap();
        let back: Expr = serde_json::from_str(&text).unwrap();
        assert_eq!(back, expr, "round trip changed {text}");
        // Round-tripping must also preserve the rendered form.
        assert_eq!(format!("{back}"), format!("{expr}"));
    }
}

#[test]
fn eval_subs_diff_are_stable_across_interning() {
    let bound = gemm_bound();
    let mut bindings = std::collections::BTreeMap::new();
    for (k, v) in [("NI", 10.0), ("NJ", 10.0), ("NK", 10.0), ("S", 4.0)] {
        bindings.insert(k.to_string(), v);
    }
    assert!((bound.eval(&bindings).unwrap() - 1000.0).abs() < 1e-9);
    let fixed = bound.subs("NK", &Expr::int(7));
    assert_eq!(format!("{fixed}"), "14*NI*NJ/sqrt(S)");
    let d = Expr::sym("N").pow(Rational::int(3)).diff("N");
    assert_eq!(format!("{d}"), "3*N^2");
}
