//! Construction of the *subgraph SOAP statement* `St_H` (Definition 6) as an
//! [`AccessModel`].
//!
//! Given a subgraph `H` of computed arrays, the statements writing arrays in
//! `H` are fused: their iteration variables are unified through the
//! producer→consumer array subscripts (`C[i,j]` written by `St1` and read as
//! `C[i,k]` by `St2` identifies `St1.j ↔ St2.k`), reads of arrays inside `H`
//! by *other* statements are dropped (they may be recomputed or reused inside
//! the subcomputation), and the remaining access sets form the dominator of
//! the merged optimization problem.

use soap_core::access_size::{corollary1_size, lemma3_size, tile_var, update_output_size};
use soap_core::projections::provably_disjoint;
use soap_core::{AccessModel, AnalysisError, AnalysisOptions};
use soap_ir::{AccessComponent, ArrayAccess, LinIndex, Program, Statement};
use soap_symbolic::Expr;
use std::collections::{BTreeMap, BTreeSet};

/// An index-based union-find with union by rank and path halving, over the
/// dense numbering of every statement's loop variables (see [`VarIndex`]).
struct VarUnion {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl VarUnion {
    fn new(n: usize) -> VarUnion {
        VarUnion {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving: point every visited node at its grandparent.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => self.parent[ra as usize] = rb,
            std::cmp::Ordering::Greater => self.parent[rb as usize] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
            }
        }
    }
}

/// Dense numbering of `(statement index, loop variable)` pairs, so the
/// union-find runs on integers instead of cloned string keys.
struct VarIndex {
    per_stmt: Vec<Vec<String>>,
    offsets: Vec<u32>,
}

impl VarIndex {
    fn new(stmts: &[&Statement]) -> VarIndex {
        let per_stmt: Vec<Vec<String>> = stmts.iter().map(|s| s.loop_variables()).collect();
        let mut offsets = Vec::with_capacity(per_stmt.len());
        let mut total = 0u32;
        for vars in &per_stmt {
            offsets.push(total);
            total += vars.len() as u32;
        }
        VarIndex { per_stmt, offsets }
    }

    fn len(&self) -> usize {
        self.per_stmt.iter().map(Vec::len).sum()
    }

    /// The dense id of `(stmt, var)`; `None` for names that are not loop
    /// variables of the statement (constant subscript symbols).
    fn id(&self, stmt: usize, var: &str) -> Option<u32> {
        self.per_stmt[stmt]
            .iter()
            .position(|v| v == var)
            .map(|p| self.offsets[stmt] + p as u32)
    }

    /// Inverse mapping: dense id back to `(stmt, var name)`.
    fn name(&self, id: u32) -> (usize, &str) {
        let stmt = match self.offsets.binary_search(&id) {
            Ok(i) => {
                // An offset can repeat when a statement has no variables;
                // take the last statement starting at this id.
                let mut i = i;
                while i + 1 < self.offsets.len() && self.offsets[i + 1] == id {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        (
            stmt,
            &self.per_stmt[stmt][(id - self.offsets[stmt]) as usize],
        )
    }
}

/// Rename the variables of a subscript according to the per-statement map.
fn rename_index(idx: &LinIndex, rename: &BTreeMap<String, String>) -> LinIndex {
    let mut coeffs = BTreeMap::new();
    for (v, c) in &idx.coeffs {
        let name = rename.get(v).cloned().unwrap_or_else(|| v.clone());
        *coeffs.entry(name).or_insert(0) += c;
    }
    coeffs.retain(|_, c| *c != 0);
    LinIndex {
        coeffs,
        offset: idx.offset,
    }
}

fn rename_component(c: &AccessComponent, rename: &BTreeMap<String, String>) -> AccessComponent {
    AccessComponent::new(
        c.indices
            .iter()
            .map(|ix| rename_index(ix, rename))
            .collect(),
    )
}

/// One external access collected during merging (kept with its origin so the
/// disjointness projection can use the original statement's loop bounds).
struct CollectedAccess {
    array: String,
    statement_idx: usize,
    original: AccessComponent,
    renamed: AccessComponent,
}

/// Build the merged [`AccessModel`] of the subgraph `H` of computed arrays.
pub fn merged_model(
    program: &Program,
    subgraph: &[String],
    opts: &AnalysisOptions,
) -> Result<AccessModel, AnalysisError> {
    let h: BTreeSet<&str> = subgraph.iter().map(|s| s.as_str()).collect();
    let stmts: Vec<&Statement> = program
        .statements
        .iter()
        .filter(|s| h.contains(s.output_array()))
        .collect();
    if stmts.is_empty() {
        return Err(AnalysisError::InvalidStatement(format!(
            "subgraph {subgraph:?} contains no computed arrays of the program"
        )));
    }

    // --- 1. unify iteration variables through producer→consumer subscripts ---
    let idx = VarIndex::new(&stmts);
    let mut uf = VarUnion::new(idx.len());
    for array in &h {
        let writers: Vec<usize> = stmts
            .iter()
            .enumerate()
            .filter(|(_, s)| s.output_array() == *array)
            .map(|(i, _)| i)
            .collect();
        for &w in &writers {
            let out_comp = &stmts[w].output.components[0];
            for (r, reader) in stmts.iter().enumerate() {
                if r == w {
                    continue;
                }
                // Unify through reads of `array` by other fused statements.
                for acc in reader.accesses_of(array) {
                    for comp in &acc.components {
                        unify_components(&mut uf, &idx, w, out_comp, r, comp);
                    }
                }
                // Unify two writers of the same array.
                if reader.output_array() == *array {
                    unify_components(&mut uf, &idx, w, out_comp, r, &reader.output.components[0]);
                }
            }
        }
    }

    // --- 2. assign unified names ---
    // Class representative -> chosen name; names are made unique across classes.
    let mut class_names: BTreeMap<u32, String> = BTreeMap::new();
    let mut used_names: BTreeSet<String> = BTreeSet::new();
    let mut renames: Vec<BTreeMap<String, String>> = vec![BTreeMap::new(); stmts.len()];
    for (si, rename) in renames.iter_mut().enumerate() {
        for vi in 0..idx.per_stmt[si].len() {
            let vid = idx.offsets[si] + vi as u32;
            let root = uf.find(vid);
            let unified = class_names
                .entry(root)
                .or_insert_with(|| {
                    let (_, base) = idx.name(root);
                    let mut candidate = base.to_string();
                    let mut k = 1;
                    while used_names.contains(&candidate) {
                        candidate = format!("{base}_{k}");
                        k += 1;
                    }
                    used_names.insert(candidate.clone());
                    candidate
                })
                .clone();
            rename.insert(idx.per_stmt[si][vi].clone(), unified);
        }
    }

    // --- 3. objective: Σ over fused statements of ∏ of their tile extents ---
    let mut tile_variables: Vec<String> = Vec::new();
    let mut objective = Expr::zero();
    for (si, st) in stmts.iter().enumerate() {
        let mut vars: Vec<String> = st
            .loop_variables()
            .iter()
            .map(|v| renames[si][v].clone())
            .collect();
        vars.sort();
        vars.dedup();
        for v in &vars {
            let tv = tile_var(v);
            if !tile_variables.contains(&tv) {
                tile_variables.push(tv);
            }
        }
        objective = objective.add(Expr::product(vars.iter().map(|v| Expr::sym(tile_var(v)))));
    }

    // --- 4. dominator terms ---
    let mut collected: Vec<CollectedAccess> = Vec::new();
    let mut terms: Vec<Expr> = Vec::new();
    for (si, st) in stmts.iter().enumerate() {
        let out_array = st.output_array().to_string();
        let out_comp = &st.output.components[0];
        for acc in &st.inputs {
            let internal = h.contains(acc.array.as_str()) && acc.array != out_array;
            if internal {
                // Reads of other arrays in H: satisfied inside the
                // subcomputation (reuse/recomputation) — not part of Dom(St_H).
                continue;
            }
            for comp in &acc.components {
                if acc.array == out_array {
                    // Reads of the statement's own output array with the same
                    // linear part are the previous-version/Corollary-1 reads,
                    // handled by the output contribution below.
                    if comp
                        .indices
                        .iter()
                        .zip(&out_comp.indices)
                        .all(|(a, b)| a.linear_part() == b.linear_part())
                    {
                        continue;
                    }
                }
                collected.push(CollectedAccess {
                    array: acc.array.clone(),
                    statement_idx: si,
                    original: comp.clone(),
                    renamed: rename_component(comp, &renames[si]),
                });
            }
        }
        // Output contribution (accumulation chain or in/out stencil overlap).
        if st.is_update {
            let out_vars: Vec<String> = st
                .output
                .variables()
                .iter()
                .map(|v| renames[si][v].clone())
                .collect();
            let red = st.reduction_variables();
            let outer_red: Vec<String> = if red.len() > 1 {
                red[..red.len() - 1]
                    .iter()
                    .map(|v| renames[si][v].clone())
                    .collect()
            } else {
                Vec::new()
            };
            terms.push(update_output_size(&out_vars, &outer_red));
        } else {
            // Non-update statement reading its own output with the same linear
            // part: Corollary 1.
            let overlapping: Vec<AccessComponent> = st
                .inputs
                .iter()
                .filter(|a| a.array == out_array)
                .flat_map(|a| a.components.iter())
                .filter(|c| c.translation_from(out_comp).is_some())
                .cloned()
                .collect();
            if !overlapping.is_empty() {
                let mut comps = vec![rename_component(out_comp, &renames[si])];
                comps.extend(
                    overlapping
                        .iter()
                        .map(|c| rename_component(c, &renames[si])),
                );
                let combined = ArrayAccess::new(out_array.clone(), comps);
                let size = corollary1_size(&combined, opts.assume_injective);
                let size = if size.is_zero() {
                    Expr::product(
                        st.output
                            .variables()
                            .iter()
                            .map(|v| Expr::sym(tile_var(&renames[si][v]))),
                    )
                } else {
                    size
                };
                terms.push(size);
            }
        }
    }

    // Group the collected external accesses per array by renamed linear part.
    let mut arrays_in_order: Vec<String> = Vec::new();
    for c in &collected {
        if !arrays_in_order.contains(&c.array) {
            arrays_in_order.push(c.array.clone());
        }
    }
    for array in arrays_in_order {
        let entries: Vec<&CollectedAccess> =
            collected.iter().filter(|c| c.array == array).collect();
        // Group by renamed linear part.
        let mut groups: Vec<(Vec<&CollectedAccess>, ArrayAccess)> = Vec::new();
        'entry: for e in entries {
            for (members, acc) in &mut groups {
                if e.renamed.translation_from(&acc.components[0]).is_some() {
                    if !acc.components.contains(&e.renamed) {
                        acc.components.push(e.renamed.clone());
                    }
                    members.push(e);
                    continue 'entry;
                }
            }
            groups.push((
                vec![e],
                ArrayAccess::new(array.clone(), vec![e.renamed.clone()]),
            ));
        }
        let sizes: Vec<Expr> = groups
            .iter()
            .map(|(_, acc)| lemma3_size(acc, opts.assume_injective))
            .collect();
        if groups.len() == 1 {
            // lint:allow(unwrap-expect): the grouping above produced exactly one group in this branch
            terms.push(sizes.into_iter().next().expect("one group"));
            continue;
        }
        // §5.1: sum the groups only if every pair is provably disjoint; pairs
        // from different statements cannot be proven disjoint from loop bounds
        // alone, so they fall back to the conservative union (max).
        let all_disjoint = groups.iter().enumerate().all(|(i, (ma, _))| {
            groups.iter().skip(i + 1).all(|(mb, _)| {
                ma.iter().all(|a| {
                    mb.iter().all(|b| {
                        a.statement_idx == b.statement_idx
                            && provably_disjoint(
                                &a.original,
                                &b.original,
                                &stmts[a.statement_idx].domain,
                            )
                    })
                })
            })
        });
        if all_disjoint {
            terms.extend(sizes);
        } else {
            let mut it = sizes.into_iter();
            // lint:allow(unwrap-expect): callers guarantee at least one size; checked by the callers' construction
            let first = it.next().expect("at least one size");
            terms.push(it.fold(first, |a, b| a.max(b)));
        }
    }

    Ok(AccessModel {
        name: format!("{{{}}}", subgraph.join(",")),
        tile_variables,
        objective,
        dominator: Expr::sum(terms),
        access_index_sets: Vec::new(),
    })
}

/// Unify per-dimension single-variable subscripts of two components.
fn unify_components(
    uf: &mut VarUnion,
    idx: &VarIndex,
    stmt_a: usize,
    a: &AccessComponent,
    stmt_b: usize,
    b: &AccessComponent,
) {
    if a.arity() != b.arity() {
        return;
    }
    for (ia, ib) in a.indices.iter().zip(&b.indices) {
        if let (Some(va), Some(vb)) = (ia.simple_var(), ib.simple_var()) {
            if let (Some(x), Some(y)) = (idx.id(stmt_a, va), idx.id(stmt_b, vb)) {
                uf.union(x, y);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_core::solve_model;
    use soap_ir::ProgramBuilder;
    use soap_symbolic::Rational;

    fn figure2() -> Program {
        ProgramBuilder::new("figure2")
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "M")])
                    .write("C", "i,j")
                    .read_multi("A", &["i", "i+1"])
                    .read_multi("B", &["j", "j+1"])
            })
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "K"), ("k", "0", "M")])
                    .update("E", "i,j")
                    .read("C", "i,k")
                    .read("D", "k,j")
            })
            .build()
            .unwrap()
    }

    #[test]
    fn figure2_merged_subgraph_captures_recomputation_of_c() {
        // H = {C, E}: C is produced internally from the cheap outer-product
        // statement, so a subcomputation may recompute C elements on the fly
        // from small A/B slices — the fused intensity grows to Θ(S) (σ = 2),
        // strictly above the Θ(√S) of the isolated matrix-multiply statement.
        // This is exactly the "elements of C are recomputed, decreasing the
        // I/O cost" effect highlighted in Figure 2 of the paper.
        let p = figure2();
        let model =
            merged_model(&p, &["C".into(), "E".into()], &AnalysisOptions::default()).unwrap();
        // St1's j must have been unified with St2's k through array C.
        assert_eq!(
            model.tile_variables.len(),
            3,
            "vars: {:?}",
            model.tile_variables
        );
        let res = solve_model(&model).unwrap();
        assert_eq!(res.sigma, Rational::int(2));
        let singleton = merged_model(&p, &["E".into()], &AnalysisOptions::default()).unwrap();
        let single_res = solve_model(&singleton).unwrap();
        assert!(res.rho_at(10_000.0) > single_res.rho_at(10_000.0));
    }

    #[test]
    fn singleton_subgraph_keeps_external_inputs() {
        let p = figure2();
        let model = merged_model(&p, &["E".into()], &AnalysisOptions::default()).unwrap();
        let res = solve_model(&model).unwrap();
        // {E} alone is ordinary matrix multiplication with C, D external.
        assert_eq!(res.sigma, Rational::new(3, 2));
    }

    #[test]
    fn atax_style_fusion_counts_the_matrix_once() {
        // tmp[i] += A[i,j]·x[j];  y[j2] += A[i2,j2]·tmp[i2]
        let p = ProgramBuilder::new("atax")
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "M")])
                    .update("tmp", "i")
                    .read("A", "i,j")
                    .read("x", "j")
            })
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "M")])
                    .update("y", "j")
                    .read("A", "i,j")
                    .read("tmp", "i")
            })
            .build()
            .unwrap();
        let model =
            merged_model(&p, &["tmp".into(), "y".into()], &AnalysisOptions::default()).unwrap();
        let res = solve_model(&model).unwrap();
        // Fusing the two statements reuses the A tile: σ = 1, ρ → 2.
        assert_eq!(res.sigma, Rational::ONE);
        assert!(
            (res.rho_at(10_000.0) - 2.0).abs() < 0.1,
            "rho = {}",
            res.rho_at(10_000.0)
        );
    }

    #[test]
    fn unknown_subgraph_is_rejected() {
        let p = figure2();
        assert!(merged_model(&p, &["Z".into()], &AnalysisOptions::default()).is_err());
    }
}
