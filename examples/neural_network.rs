//! Whole-network analysis: I/O lower bounds for the deep-learning workloads
//! of Table 2 (direct convolution, Softmax, MLP, LeNet-5, BERT encoder),
//! including the conditional convolution bound of Section 5.3.
//!
//! ```text
//! cargo run --release --example neural_network
//! ```

use soap::core::analyze_conditional;
use soap::prelude::*;
use std::collections::BTreeMap;

fn main() {
    // Full networks through the SDG (inter-layer reuse is captured).
    for name in ["softmax", "mlp", "lenet-5", "bert-encoder"] {
        let entry = soap::kernels::by_name(name).expect("kernel exists");
        let analysis = analyze_program_with(
            &entry.program,
            &SdgOptions {
                assume_injective: entry.assume_injective,
                ..SdgOptions::default()
            },
        )
        .expect("analysis succeeds");
        println!("{name:<14} Q ≥ {}", analysis.bound);
    }

    // The direct convolution has a *conditional* intensity (Section 5.3):
    // the reuse achievable depends on the stride/kernel relationship.
    let conv = soap::kernels::by_name("direct-conv").unwrap();
    let st = &conv.program.statements[0];
    let (overlapping, injective) = analyze_conditional(st).expect("conditional analysis");
    println!("\ndirect convolution (Example 6)");
    println!(
        "  case 1 (large stride, injective) : ρ_min = {}",
        injective.intensity.rho
    );
    println!(
        "  case 2 (unit stride, overlapping) : ρ_max = {}",
        overlapping.intensity.rho
    );

    // Evaluate the BERT-encoder bound for a BERT-base-like shape.
    let bert = soap::kernels::by_name("bert-encoder").unwrap();
    let analysis = analyze_program(&bert.program).unwrap();
    let mut b = BTreeMap::new();
    for (k, v) in [
        ("B", 8.0),
        ("L", 512.0),
        ("H", 12.0),
        ("P", 64.0),
        ("E", 768.0),
        ("F", 3072.0),
        ("S", 128.0 * 1024.0),
    ] {
        b.insert(k.to_string(), v);
    }
    let q = analysis.bound.eval(&b).unwrap();
    println!("\nBERT encoder (B=8, L=512, H=12, P=64, S=128Ki words):");
    println!("  Q ≥ {:.3e} words moved per layer", q);
}
