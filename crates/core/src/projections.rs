//! Section 5 projections: checks and rewrites that map nearly-SOAP programs
//! onto SOAP.
//!
//! * **Non-overlapping access sets (§5.1)** — [`provably_disjoint`] proves,
//!   from the affine loop bounds, that two access components of the same array
//!   can never address the same element (the LU example: `A[i,k]` vs `A[k,j]`
//!   with `i, j ≥ k+1`).  Provably disjoint component groups are counted as
//!   separate arrays; otherwise the analysis falls back to a conservative
//!   single contribution (the union of overlapping access sets is at least as
//!   large as its largest member).
//! * **Equivalent input/output accesses (§5.2)** — update (`+=`) statements
//!   are handled by the version-dimension rule in
//!   [`crate::access_size::update_output_size`].
//! * **Non-injective access functions (§5.3)** — conditional bounds: the
//!   analysis is run once with the conservative `max(|D_r|,|D_w|)` extent and
//!   once under the injectivity assumption, yielding the `ρ_min ≤ ρ ≤ ρ_max`
//!   interval of Example 6 (see [`crate::analysis::analyze_conditional`]).

use soap_ir::{AccessComponent, IterationDomain, LinIndex};

/// True when the two access components provably address disjoint element sets
/// for every iteration of the given domain.
///
/// The proof obligation is discharged dimension-wise: if in some dimension the
/// difference of the two subscripts is (a) a non-zero constant, or (b) of the
/// form `±(v − w) + c` where the loop bounds imply `v ≥ w + k` (or `v < w + k`)
/// strongly enough to keep the difference non-zero, the components can never
/// coincide.
pub fn provably_disjoint(
    a: &AccessComponent,
    b: &AccessComponent,
    domain: &IterationDomain,
) -> bool {
    if a.arity() != b.arity() {
        // Different arity means different (virtual) arrays; treat as disjoint.
        return true;
    }
    for d in 0..a.arity() {
        if dimension_never_equal(&a.indices[d], &b.indices[d], domain) {
            return true;
        }
    }
    false
}

/// True if `x != y` for every point of the domain (best-effort affine check).
fn dimension_never_equal(x: &LinIndex, y: &LinIndex, domain: &IterationDomain) -> bool {
    // delta = x - y as (coeffs, constant)
    let mut coeffs = x.coeffs.clone();
    for (v, c) in &y.coeffs {
        let e = coeffs.entry(v.clone()).or_insert(0);
        *e -= c;
        if *e == 0 {
            coeffs.remove(v);
        }
    }
    let constant = x.offset - y.offset;
    match coeffs.len() {
        0 => constant != 0,
        2 => {
            // delta = v - w + constant (only the ±1 coefficient pattern is
            // analyzed; anything else is "unknown").
            let mut pos = None;
            let mut neg = None;
            for (v, c) in &coeffs {
                match c {
                    1 => pos = Some(v.clone()),
                    -1 => neg = Some(v.clone()),
                    _ => return false,
                }
            }
            let (Some(v), Some(w)) = (pos, neg) else {
                return false;
            };
            // v ≥ lower(v); if lower(v) = w + k then v - w ≥ k.
            if let Some(lv) = domain.loop_var(&v) {
                if let Some(k) = bound_offset_against(&lv.lower, &w) {
                    // v - w + constant ≥ k + constant > 0 ?
                    if k + constant >= 1 {
                        return true;
                    }
                }
                // v < upper(v); if upper(v) = w + k then v - w ≤ k - 1.
                if let Some(k) = bound_offset_against(&lv.upper, &w) {
                    if k - 1 + constant <= -1 {
                        return true;
                    }
                }
            }
            // Symmetric: w ≥ lower(w) referencing v.
            if let Some(lw) = domain.loop_var(&w) {
                if let Some(k) = bound_offset_against(&lw.lower, &v) {
                    // w ≥ v + k  =>  v - w ≤ -k  =>  delta ≤ -k + constant
                    if -k + constant <= -1 {
                        return true;
                    }
                }
                if let Some(k) = bound_offset_against(&lw.upper, &v) {
                    // w ≤ v + k - 1  =>  v - w ≥ 1 - k => delta ≥ 1 - k + constant
                    if 1 - k + constant >= 1 {
                        return true;
                    }
                }
            }
            false
        }
        _ => false,
    }
}

/// If `bound` is exactly `other + k`, return `k`.
fn bound_offset_against(bound: &soap_ir::AffineExpr, other: &str) -> Option<i64> {
    if bound.terms.len() == 1 && bound.terms.get(other) == Some(&1) {
        Some(bound.constant)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_ir::parse::{parse_affine, parse_indices};
    use soap_ir::{AccessComponent, LoopVar};

    fn comp(s: &str) -> AccessComponent {
        AccessComponent::new(parse_indices(s).unwrap())
    }

    fn lu_domain() -> IterationDomain {
        IterationDomain::new(vec![
            LoopVar::new("k", parse_affine("0").unwrap(), parse_affine("N").unwrap()),
            LoopVar::new(
                "i",
                parse_affine("k+1").unwrap(),
                parse_affine("N").unwrap(),
            ),
            LoopVar::new(
                "j",
                parse_affine("k+1").unwrap(),
                parse_affine("N").unwrap(),
            ),
        ])
    }

    #[test]
    fn lu_access_components_are_disjoint() {
        let d = lu_domain();
        // A[i,j] vs A[i,k]: j ≥ k+1 in dimension 1.
        assert!(provably_disjoint(&comp("i,j"), &comp("i,k"), &d));
        // A[i,j] vs A[k,j]: i ≥ k+1 in dimension 0.
        assert!(provably_disjoint(&comp("i,j"), &comp("k,j"), &d));
        // A[i,k] vs A[k,j]: i ≥ k+1 in dimension 0.
        assert!(provably_disjoint(&comp("i,k"), &comp("k,j"), &d));
    }

    #[test]
    fn transposed_accesses_are_not_disjoint() {
        // mvt-style A[i,j] vs A[j,i] over a full rectangle: they coincide on
        // the diagonal, and subcomputations may align the two ranges.
        let d = IterationDomain::new(vec![
            LoopVar::new("i", parse_affine("0").unwrap(), parse_affine("N").unwrap()),
            LoopVar::new("j", parse_affine("0").unwrap(), parse_affine("N").unwrap()),
        ]);
        assert!(!provably_disjoint(&comp("i,j"), &comp("j,i"), &d));
    }

    #[test]
    fn constant_offset_in_some_dimension_is_disjoint() {
        let d = lu_domain();
        // A[i,j] vs A[i,j+1]: the per-iteration subscripts differ by the
        // constant 1 in dimension 1, so no iteration addresses both.
        assert!(provably_disjoint(&comp("i,j"), &comp("i,j+1"), &d));
        // Different constant subscripts never collide.
        assert!(provably_disjoint(&comp("i,0"), &comp("i,1"), &d));
    }

    #[test]
    fn strict_upper_bound_proves_disjointness() {
        // for i in 0..N, for j in 0..i  =>  j < i, so A[i] and A[j] are disjoint.
        let d = IterationDomain::new(vec![
            LoopVar::new("i", parse_affine("0").unwrap(), parse_affine("N").unwrap()),
            LoopVar::new("j", parse_affine("0").unwrap(), parse_affine("i").unwrap()),
        ]);
        assert!(provably_disjoint(&comp("i"), &comp("j"), &d));
    }
}
