//! Adversarial fuzz for the two frontend parsers: seeded mutations of
//! valid-ish generated programs, plus raw byte garbage, are fed through
//! `parse_c` and `parse_python`.  The parsers may reject anything they like —
//! but they must never panic.  Failing inputs are printed with their seed so
//! a reproduction is one `cargo test` away.

use soap_frontend::{parse_c, parse_python};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Deterministic xorshift64* generator — same engine as
/// `roundtrip_property.rs`; no external crates in this workspace.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

const LOOP_VARS: [&str; 4] = ["i", "j", "k", "t"];
const PARAMS: [&str; 3] = ["N", "M", "P"];

/// A valid-ish program in both dialects: a small random loop nest around a
/// random assignment.  This is deliberately simpler than the round-trip
/// generator — the mutations below do the damage; the template only needs to
/// land the mutated input *near* the grammar so it reaches deep parser paths.
fn gen_template(rng: &mut Rng, c_style: bool) -> String {
    let depth = 1 + rng.below(3);
    let vars: Vec<&str> = LOOP_VARS[..depth].to_vec();
    let mut out = String::new();
    for (level, v) in vars.iter().enumerate() {
        let lo = rng.below(2);
        let hi = PARAMS[rng.below(PARAMS.len())];
        if c_style {
            out.push_str(&"  ".repeat(level));
            out.push_str(&format!("for ({v} = {lo}; {v} < {hi}; {v}++) {{\n"));
        } else {
            out.push_str(&"    ".repeat(level));
            out.push_str(&format!("for {v} in range({lo}, {hi}):\n"));
        }
    }
    let indent = if c_style {
        "  ".repeat(depth)
    } else {
        "    ".repeat(depth)
    };
    let sub = |rng: &mut Rng, vars: &[&str]| -> String {
        let v = vars[rng.below(vars.len())];
        match rng.below(4) {
            0 => format!("{v} + 1"),
            1 => format!("{v} - 1"),
            _ => v.to_string(),
        }
    };
    let lhs_ix = sub(rng, &vars);
    let rhs_ix = sub(rng, &vars);
    let op = if rng.chance(50) { "+=" } else { "=" };
    if c_style {
        out.push_str(&format!(
            "{indent}Out[{lhs_ix}] {op} In[{rhs_ix}] * W[{rhs_ix}];\n"
        ));
        for level in (0..depth).rev() {
            out.push_str(&"  ".repeat(level));
            out.push_str("}\n");
        }
    } else {
        out.push_str(&format!(
            "{indent}Out[{lhs_ix}] {op} In[{rhs_ix}] * W[{rhs_ix}]\n"
        ));
    }
    out
}

/// Characters the mutators splice in: grammar-significant punctuation plus a
/// couple of multi-byte UTF-8 sequences (they used to panic byte-indexed
/// scans).
const SPLICE: [&str; 14] = [
    "[", "]", "(", ")", "{", "}", ";", ":", "=", ",", "<", "*", "β", "∑",
];

/// Apply one random mutation to the source.
fn mutate(rng: &mut Rng, src: &mut String) {
    if src.is_empty() {
        src.push_str(SPLICE[rng.below(SPLICE.len())]);
        return;
    }
    match rng.below(5) {
        // Truncate at a random (char-boundary) position.
        0 => {
            let mut cut = rng.below(src.len() + 1);
            while !src.is_char_boundary(cut) {
                cut -= 1;
            }
            src.truncate(cut);
        }
        // Insert a grammar character at a random boundary.
        1 => {
            let mut at = rng.below(src.len() + 1);
            while !src.is_char_boundary(at) {
                at -= 1;
            }
            src.insert_str(at, SPLICE[rng.below(SPLICE.len())]);
        }
        // Delete one random character.
        2 => {
            let mut at = rng.below(src.len());
            while !src.is_char_boundary(at) {
                at -= 1;
            }
            src.remove(at);
        }
        // Swap two bracket-ish characters (turns `A[i]` into `A]i[` etc.).
        3 => {
            let swapped: String = src
                .chars()
                .map(|c| match c {
                    '[' => ']',
                    ']' => '[',
                    '(' => ')',
                    ')' => '(',
                    '{' => '}',
                    '}' => '{',
                    other => other,
                })
                .collect();
            *src = swapped;
        }
        // Duplicate a random line (stresses the dedent/brace stacks).
        _ => {
            let lines: Vec<&str> = src.lines().collect();
            if !lines.is_empty() {
                let line = lines[rng.below(lines.len())].to_string();
                src.push_str(&line);
                src.push('\n');
            }
        }
    }
}

/// Raw garbage: random bytes forced into UTF-8 (lossy), so the parsers see
/// arbitrary character soup rather than anything grammar-shaped.
fn gen_garbage(rng: &mut Rng) -> String {
    let len = rng.below(200);
    let bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0xFF) as u8).collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Both parsers must return `Ok` or `Err` — never panic — on `src`.
fn assert_no_panic(case: usize, kind: &str, src: &str) {
    for (dialect, parser) in [
        ("C", parse_c as fn(&str, &str) -> _),
        ("python", parse_python as fn(&str, &str) -> _),
    ] {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _ = parser("fuzz", src);
        }));
        if result.is_err() {
            panic!(
                "case {case} ({kind}): {dialect} parser panicked on input:\n\
                 ---8<---\n{src}\n--->8---"
            );
        }
    }
}

#[test]
fn mutated_programs_never_panic_the_parsers() {
    let mut rng = Rng(0x5eed_5afe_2026_0808);
    for case in 0..600 {
        let c_style = case % 2 == 0;
        let mut src = gen_template(&mut rng, c_style);
        let n_mutations = 1 + rng.below(4);
        for _ in 0..n_mutations {
            mutate(&mut rng, &mut src);
        }
        assert_no_panic(case, "mutated", &src);
    }
}

#[test]
fn raw_garbage_never_panics_the_parsers() {
    let mut rng = Rng(0x6a55_ba6e_2026_0808);
    for case in 0..400 {
        let src = gen_garbage(&mut rng);
        assert_no_panic(case, "garbage", &src);
    }
}

#[test]
fn known_historical_panics_stay_fixed() {
    // Regression corpus: each of these used to panic a parser before the
    // hardening pass (inverted slices, mid-character str indexing).
    let corpus = [
        "for ) ( { A[i] = B[i]; }",
        "for (i = 0; i < N; i++) { A[i]]x[ = B[i]; }",
        "for (i = 0; i < N; i++) { βA[i] = B[i]; }",
        "for i in range(N):\n    A[i]]x[ = B[i]\n",
        "for i in range(N):\n    ∑[i] = B[i]\n",
    ];
    for (case, src) in corpus.iter().enumerate() {
        assert_no_panic(case, "regression", src);
    }
}
