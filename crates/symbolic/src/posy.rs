//! Compiled posynomial forms of objective/dominator expressions.
//!
//! The objective `χ(D)` and dominator `g(D)` of optimization problem (8) are
//! always *posynomials* in the tile extents: sums of monomials
//! `c_k · ∏_t D_t^{e_{k,t}}` with integer exponents (Lemma 3 / Corollary 1
//! produce expanded products of extents minus integer offsets).  Compiling an
//! [`Expr`] once into a dense exponent matrix over variable *indices* turns
//! every solver probe into an allocation-free pass over flat `f64`/`i16`
//! arrays, and makes log-space gradients *analytic*:
//!
//! ```text
//!   ∂/∂log D_t  Σ_k c_k ∏ D^e  =  Σ_k e_{k,t} · term_k
//! ```
//!
//! so one evaluation of the per-term values serves the partial derivatives of
//! *all* variables — replacing the `2n` finite-difference tree walks per KKT
//! iteration of the retained `Expr`-eval reference path.
//!
//! Exact rational coefficients are kept alongside the `f64` mirrors so that
//! structurally identical models can be compared exactly (the cross-subgraph
//! canonical model key in `soap-sdg`).

use crate::expr::Expr;
use crate::rational::Rational;

/// A posynomial `Σ_k c_k · ∏_t x_t^{e_{k,t}}` compiled to flat arrays.
///
/// Terms are stored row-major: term `k` occupies
/// `exps[k*n_vars .. (k+1)*n_vars]`.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledPosynomial {
    n_vars: usize,
    /// Per-term coefficients as `f64` (hot path).
    coeffs: Vec<f64>,
    /// Per-term coefficients as exact rationals (canonical keys).
    rat_coeffs: Vec<Rational>,
    /// Dense `n_terms × n_vars` exponent matrix, row-major.
    exps: Vec<i16>,
}

impl CompiledPosynomial {
    /// Lower `expr` into a compiled posynomial over the given variable order.
    ///
    /// Returns `None` when the expression is not a posynomial over `vars`
    /// with integer exponents — unknown symbols, fractional powers, or
    /// `Max`/`Min` nodes (the §5.1 conservative-union fallback) — in which
    /// case callers fall back to the retained `Expr`-eval path.
    pub fn compile(expr: &Expr, vars: &[String]) -> Option<CompiledPosynomial> {
        let n_vars = vars.len();
        let expanded = expr.expand();
        let terms: Vec<&Expr> = match &expanded {
            Expr::Add(items) => items.iter().collect(),
            other => vec![other],
        };
        let mut coeffs = Vec::with_capacity(terms.len());
        let mut rat_coeffs = Vec::with_capacity(terms.len());
        let mut exps = vec![0i16; terms.len() * n_vars];
        for (k, term) in terms.iter().enumerate() {
            let row = &mut exps[k * n_vars..(k + 1) * n_vars];
            let coeff = compile_term(term, vars, row)?;
            coeffs.push(coeff.to_f64());
            rat_coeffs.push(coeff);
        }
        Some(CompiledPosynomial {
            n_vars,
            coeffs,
            rat_coeffs,
            exps,
        })
    }

    /// Assemble a compiled posynomial directly from term rows (exponent row
    /// plus exact coefficient).  Each row must have exactly `n_vars` entries.
    ///
    /// Used by the cross-subgraph solve cache to rebuild a canonical model's
    /// compiled form straight from its canonical key, so a cache miss solves
    /// the canonical structure without round-tripping through `Expr`
    /// construction and re-compilation.
    pub fn from_rows(n_vars: usize, rows: &[(Vec<i16>, Rational)]) -> CompiledPosynomial {
        let mut coeffs = Vec::with_capacity(rows.len());
        let mut rat_coeffs = Vec::with_capacity(rows.len());
        let mut exps = Vec::with_capacity(rows.len() * n_vars);
        for (row, coeff) in rows {
            debug_assert_eq!(row.len(), n_vars);
            coeffs.push(coeff.to_f64());
            rat_coeffs.push(*coeff);
            exps.extend_from_slice(row);
        }
        CompiledPosynomial {
            n_vars,
            coeffs,
            rat_coeffs,
            exps,
        }
    }

    /// Number of variables (row width of the exponent matrix).
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of terms (rows of the exponent matrix).
    pub fn n_terms(&self) -> usize {
        self.coeffs.len()
    }

    /// The exponent row of term `k`.
    pub fn exponent_row(&self, k: usize) -> &[i16] {
        &self.exps[k * self.n_vars..(k + 1) * self.n_vars]
    }

    /// The exact rational coefficient of term `k`.
    pub fn rational_coeff(&self, k: usize) -> Rational {
        self.rat_coeffs[k]
    }

    /// Evaluate at the point `x` (allocation-free).
    pub fn eval(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.n_vars);
        let mut acc = 0.0;
        for k in 0..self.coeffs.len() {
            acc += self.coeffs[k] * self.term_product(k, x);
        }
        acc
    }

    /// Evaluate at `x`, storing each term's value in `terms`; returns the sum.
    ///
    /// The per-term values are exactly what the analytic gradient needs, so
    /// one call serves the function value *and* all `n` partial derivatives.
    pub fn eval_terms(&self, x: &[f64], terms: &mut [f64]) -> f64 {
        debug_assert_eq!(terms.len(), self.n_terms());
        let mut acc = 0.0;
        for (k, slot) in terms.iter_mut().enumerate() {
            let t = self.coeffs[k] * self.term_product(k, x);
            *slot = t;
            acc += t;
        }
        acc
    }

    /// Analytic log-space gradient from precomputed term values:
    /// `out[t] = ∂/∂log x_t = Σ_k e_{k,t} · terms[k]`.
    pub fn grad_log_from_terms(&self, terms: &[f64], out: &mut [f64]) {
        debug_assert_eq!(terms.len(), self.n_terms());
        debug_assert_eq!(out.len(), self.n_vars);
        out.fill(0.0);
        for (k, &tv) in terms.iter().enumerate() {
            let row = &self.exps[k * self.n_vars..(k + 1) * self.n_vars];
            for (o, &e) in out.iter_mut().zip(row) {
                if e != 0 {
                    *o += f64::from(e) * tv;
                }
            }
        }
    }

    /// Evaluate at `x` together with the derivative of the value with respect
    /// to a common log-scale `s` applied to the variables selected by
    /// `active`:
    ///
    /// ```text
    ///   d/ds Σ_k c_k ∏_t (x_t·e^{s·[active t]})^{e_{k,t}} |_{s=0}
    ///     = Σ_k term_k · Σ_{t active} e_{k,t}
    /// ```
    ///
    /// This is the one derivative Newton constraint-projection needs.
    pub fn eval_and_scale_derivative(
        &self,
        x: &[f64],
        active: impl Fn(usize) -> bool,
    ) -> (f64, f64) {
        debug_assert_eq!(x.len(), self.n_vars);
        let mut value = 0.0;
        let mut derivative = 0.0;
        for k in 0..self.coeffs.len() {
            let tv = self.coeffs[k] * self.term_product(k, x);
            let row = &self.exps[k * self.n_vars..(k + 1) * self.n_vars];
            let mut active_deg = 0.0;
            for (t, &e) in row.iter().enumerate() {
                if e != 0 && active(t) {
                    active_deg += f64::from(e);
                }
            }
            value += tv;
            derivative += tv * active_deg;
        }
        (value, derivative)
    }

    /// `∏_t x_t^{e_{k,t}}` of term `k`.
    #[inline]
    fn term_product(&self, k: usize, x: &[f64]) -> f64 {
        let row = &self.exps[k * self.n_vars..(k + 1) * self.n_vars];
        let mut p = 1.0;
        for (&xi, &e) in x.iter().zip(row) {
            if e != 0 {
                p *= xi.powi(i32::from(e));
            }
        }
        p
    }
}

/// A posynomial whose monomials may carry `max`/`min` factors over pure
/// posynomials — the shape of §5.1/§5.3 conservative-union dominators
/// (`max(D_r, D_w)·D_c`, or a top-level `max` of whole Lemma-3 sizes).
///
/// Piecewise-posynomial: evaluation takes the max/min over each atom's
/// branches, and the analytic log-gradient routes through the *selected*
/// branch (valid almost everywhere; the damped KKT iteration only ever needs
/// a subgradient at the kinks).
#[derive(Clone, Debug, PartialEq)]
pub struct MaxPosynomial {
    n_vars: usize,
    /// Per-term coefficients.
    coeffs: Vec<f64>,
    /// Per-term coefficients as exact rationals (canonical keys).
    rat_coeffs: Vec<Rational>,
    /// Dense `n_terms × n_vars` exponent matrix of the monomial parts.
    exps: Vec<i16>,
    /// Per-term `(start, len)` slice into `atom_refs`.
    term_atoms: Vec<(u32, u32)>,
    /// Flattened atom indices of all terms.
    atom_refs: Vec<u32>,
    /// The distinct max/min atoms.
    atoms: Vec<MaxAtom>,
}

/// One `max`/`min` factor over pure posynomial branches.
#[derive(Clone, Debug, PartialEq)]
struct MaxAtom {
    branches: Vec<CompiledPosynomial>,
    is_min: bool,
}

/// Reusable scratch buffers for [`MaxPosynomial`] evaluation, sized on first
/// use; one instance per solve keeps the hot loop allocation-free.
#[derive(Clone, Debug, Default)]
pub struct MaxScratch {
    /// Selected value per atom.
    atom_values: Vec<f64>,
    /// Per-branch values of the atom currently being prepared.
    branch_values: Vec<f64>,
    /// Subgradient of the atom, `n_atoms × n_vars` row-major.
    atom_grads: Vec<f64>,
    /// Per-branch term values (sized to the largest branch).
    branch_terms: Vec<f64>,
    /// Gradient accumulator for one branch.
    branch_grad: Vec<f64>,
    /// Smallest relative gap between any atom's selected value and its nearest
    /// *excluded* (non-tied) branch at the last gradient evaluation; `∞` when
    /// every branch of every atom is tied (or there is only one branch).
    kink_gap: f64,
    /// The relative tie window used by the next gradient evaluation; values
    /// `< TIE_REL_FLOOR` (including the default 0) fall back to the floor.
    tie_window: f64,
}

/// The minimum (and default) relative tie window: branches this close to the
/// selected one always average their gradients, mirroring the central
/// differences of the `Expr`-eval reference path at kinks.
pub const TIE_REL_FLOOR: f64 = 1e-4;

impl MaxScratch {
    /// The relative distance from the last evaluated point to the nearest
    /// subgradient kink: how much the closest non-selected branch of any atom
    /// trails the selected one.  The trust-region KKT step uses this to decide
    /// when its iterates have settled onto a kink.
    pub fn kink_gap(&self) -> f64 {
        self.kink_gap
    }

    /// Set the relative tie window for subsequent gradient evaluations.
    ///
    /// Branches within this relative distance of the selected one count as
    /// tied and average their gradients — a Polyak-style smoothing of the
    /// `max`.  The trust-region KKT solve starts wide (smooth surrogate, no
    /// kink oscillation while the iterates travel) and anneals down to
    /// [`TIE_REL_FLOOR`] (the exact subgradient, matching the reference
    /// path's central differences).
    pub fn set_tie_window(&mut self, window: f64) {
        self.tie_window = window;
    }
}

impl MaxPosynomial {
    /// Lower `expr` into max-posynomial form over the given variable order.
    ///
    /// Returns `None` when even this form does not fit: fractional powers,
    /// unknown symbols, `max`/`min` with non-posynomial branches, or nested
    /// `max` under a power.
    pub fn compile(expr: &Expr, vars: &[String]) -> Option<MaxPosynomial> {
        let n_vars = vars.len();
        let expanded = expr.expand();
        let terms: Vec<&Expr> = match &expanded {
            Expr::Add(items) => items.iter().collect(),
            other => vec![other],
        };
        let mut out = MaxPosynomial {
            n_vars,
            coeffs: Vec::with_capacity(terms.len()),
            rat_coeffs: Vec::with_capacity(terms.len()),
            exps: vec![0i16; terms.len() * n_vars],
            term_atoms: Vec::with_capacity(terms.len()),
            atom_refs: Vec::new(),
            atoms: Vec::new(),
        };
        for (k, term) in terms.iter().enumerate() {
            let start = out.atom_refs.len() as u32;
            let row_range = k * n_vars..(k + 1) * n_vars;
            let mut coeff = Rational::ONE;
            let factors: Vec<&Expr> = match term {
                Expr::Mul(items) => items.iter().collect(),
                other => vec![other],
            };
            for f in factors {
                match f {
                    Expr::Max(items) | Expr::Min(items) => {
                        let branches: Option<Vec<CompiledPosynomial>> = items
                            .iter()
                            .map(|b| CompiledPosynomial::compile(b, vars))
                            .collect();
                        let atom = MaxAtom {
                            branches: branches?,
                            is_min: matches!(f, Expr::Min(_)),
                        };
                        let idx = out
                            .atoms
                            .iter()
                            .position(|a| *a == atom)
                            .unwrap_or_else(|| {
                                out.atoms.push(atom);
                                out.atoms.len() - 1
                            });
                        out.atom_refs.push(idx as u32);
                    }
                    other => {
                        let row = &mut out.exps[row_range.clone()];
                        coeff *= compile_term(other, vars, row)?;
                    }
                }
            }
            out.coeffs.push(coeff.to_f64());
            out.rat_coeffs.push(coeff);
            out.term_atoms
                .push((start, out.atom_refs.len() as u32 - start));
        }
        Some(out)
    }

    /// Assemble a max-posynomial directly from its parts: per-term monomial
    /// rows (`n_vars` exponents, exact coefficient, atom indices into
    /// `atoms`) and the atom list (`is_min` flag plus posynomial branches).
    ///
    /// The structural dual of [`MaxPosynomial::compile`], used by the
    /// cross-subgraph solve cache to rebuild a canonical model's compiled
    /// form straight from its canonical key (see
    /// [`CompiledPosynomial::from_rows`]).
    pub fn from_parts(
        n_vars: usize,
        terms: &[(Vec<i16>, Rational, Vec<u32>)],
        atoms: Vec<(bool, Vec<CompiledPosynomial>)>,
    ) -> MaxPosynomial {
        let mut out = MaxPosynomial {
            n_vars,
            coeffs: Vec::with_capacity(terms.len()),
            rat_coeffs: Vec::with_capacity(terms.len()),
            exps: Vec::with_capacity(terms.len() * n_vars),
            term_atoms: Vec::with_capacity(terms.len()),
            atom_refs: Vec::new(),
            atoms: atoms
                .into_iter()
                .map(|(is_min, branches)| MaxAtom { branches, is_min })
                .collect(),
        };
        for (row, coeff, atom_ids) in terms {
            debug_assert_eq!(row.len(), n_vars);
            let start = out.atom_refs.len() as u32;
            out.coeffs.push(coeff.to_f64());
            out.rat_coeffs.push(*coeff);
            out.exps.extend_from_slice(row);
            debug_assert!(atom_ids.iter().all(|&j| (j as usize) < out.atoms.len()));
            out.atom_refs.extend_from_slice(atom_ids);
            out.term_atoms.push((start, atom_ids.len() as u32));
        }
        out
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of terms (rows of the monomial-part exponent matrix).
    pub fn n_terms(&self) -> usize {
        self.coeffs.len()
    }

    /// The monomial-part exponent row of term `k`.
    pub fn exponent_row(&self, k: usize) -> &[i16] {
        &self.exps[k * self.n_vars..(k + 1) * self.n_vars]
    }

    /// The exact rational coefficient of term `k`.
    pub fn rational_coeff(&self, k: usize) -> Rational {
        self.rat_coeffs[k]
    }

    /// The atom indices attached to term `k` (indices into the atom list).
    pub fn term_atom_indices(&self, k: usize) -> &[u32] {
        let (start, len) = self.term_atoms[k];
        &self.atom_refs[start as usize..(start + len) as usize]
    }

    /// Number of distinct max/min atoms.
    pub fn n_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Whether atom `j` is a `min` (as opposed to a `max`).
    pub fn atom_is_min(&self, j: usize) -> bool {
        self.atoms[j].is_min
    }

    /// The pure-posynomial branches of atom `j`.
    pub fn atom_branches(&self, j: usize) -> &[CompiledPosynomial] {
        &self.atoms[j].branches
    }

    /// The monomial parts alone as a pure posynomial (atom factors dropped).
    ///
    /// Used by the canonical model key: the monomial-part matrix participates
    /// in the variable-signature refinement exactly like a pure dominator.
    pub fn monomial_part(&self) -> CompiledPosynomial {
        CompiledPosynomial {
            n_vars: self.n_vars,
            coeffs: self.coeffs.clone(),
            rat_coeffs: self.rat_coeffs.clone(),
            exps: self.exps.clone(),
        }
    }

    fn prepare_atoms(&self, x: &[f64], scratch: &mut MaxScratch, with_grads: bool) {
        // Branches within the tie window of the selected value count as tied;
        // the subgradient averages their gradients.  Symmetric optima sit
        // exactly on the kink (`max(D_i·D_j, D_i·D_k)` with `D_j = D_k`),
        // where a one-sided argmax gradient would break the symmetry and
        // drive the KKT iteration away — the central differences of the
        // reference path average the two slopes there, and so do we.
        let tie_rel = scratch.tie_window.max(TIE_REL_FLOOR);
        let n_atoms = self.atoms.len();
        scratch.atom_values.resize(n_atoms, 0.0);
        scratch.kink_gap = f64::INFINITY;
        if with_grads {
            scratch.atom_grads.resize(n_atoms * self.n_vars, 0.0);
            scratch.branch_grad.resize(self.n_vars, 0.0);
        }
        for (j, atom) in self.atoms.iter().enumerate() {
            scratch.branch_values.resize(atom.branches.len(), 0.0);
            let mut best_v = f64::NAN;
            for (b, branch) in atom.branches.iter().enumerate() {
                let v = branch.eval(x);
                scratch.branch_values[b] = v;
                let better = b == 0 || (atom.is_min && v < best_v) || (!atom.is_min && v > best_v);
                if better {
                    best_v = v;
                }
            }
            scratch.atom_values[j] = best_v;
            if with_grads {
                let grad_range = j * self.n_vars..(j + 1) * self.n_vars;
                scratch.atom_grads[grad_range.clone()].fill(0.0);
                let mut tied = 0usize;
                for (b, branch) in atom.branches.iter().enumerate() {
                    let rel_gap =
                        (scratch.branch_values[b] - best_v).abs() / best_v.abs().max(1e-300);
                    if rel_gap > tie_rel {
                        scratch.kink_gap = scratch.kink_gap.min(rel_gap);
                        continue;
                    }
                    tied += 1;
                    scratch.branch_terms.resize(branch.n_terms(), 0.0);
                    branch.eval_terms(x, &mut scratch.branch_terms[..branch.n_terms()]);
                    branch.grad_log_from_terms(
                        &scratch.branch_terms[..branch.n_terms()],
                        &mut scratch.branch_grad,
                    );
                    for (acc, g) in scratch.atom_grads[grad_range.clone()]
                        .iter_mut()
                        .zip(&scratch.branch_grad)
                    {
                        *acc += g;
                    }
                }
                if tied > 1 {
                    for g in &mut scratch.atom_grads[grad_range] {
                        *g /= tied as f64;
                    }
                }
            }
        }
    }

    /// Evaluate at `x` (allocation-free after scratch warm-up).
    pub fn eval(&self, x: &[f64], scratch: &mut MaxScratch) -> f64 {
        self.prepare_atoms(x, scratch, false);
        let mut acc = 0.0;
        for k in 0..self.coeffs.len() {
            acc += self.term_value(k, x, scratch);
        }
        acc
    }

    /// Evaluate at `x` and fill the analytic log-space gradient:
    /// `grad[t] = ∂/∂log x_t`, routing each atom through its selected branch.
    pub fn eval_grad(&self, x: &[f64], grad: &mut [f64], scratch: &mut MaxScratch) -> f64 {
        debug_assert_eq!(grad.len(), self.n_vars);
        self.prepare_atoms(x, scratch, true);
        grad.fill(0.0);
        let mut acc = 0.0;
        for k in 0..self.coeffs.len() {
            let tv = self.term_value(k, x, scratch);
            acc += tv;
            if tv == 0.0 {
                continue;
            }
            let row = &self.exps[k * self.n_vars..(k + 1) * self.n_vars];
            let (start, len) = self.term_atoms[k];
            // d term/dlog x_t = term · (e_{k,t} + Σ_j ∂log atom_j/∂log x_t).
            for (t, g) in grad.iter_mut().enumerate() {
                let mut factor = f64::from(row[t]);
                for &j in &self.atom_refs[start as usize..(start + len) as usize] {
                    let j = j as usize;
                    let v = scratch.atom_values[j];
                    if v != 0.0 {
                        factor += scratch.atom_grads[j * self.n_vars + t] / v;
                    }
                }
                if factor != 0.0 {
                    *g += tv * factor;
                }
            }
        }
        acc
    }

    /// `coeff_k · ∏ x^e · ∏ atom values` of term `k` (atoms pre-evaluated).
    fn term_value(&self, k: usize, x: &[f64], scratch: &MaxScratch) -> f64 {
        let row = &self.exps[k * self.n_vars..(k + 1) * self.n_vars];
        let mut p = self.coeffs[k];
        for (&xi, &e) in x.iter().zip(row) {
            if e != 0 {
                p *= xi.powi(i32::from(e));
            }
        }
        let (start, len) = self.term_atoms[k];
        for &j in &self.atom_refs[start as usize..(start + len) as usize] {
            p *= scratch.atom_values[j as usize];
        }
        p
    }
}

/// Compile one expanded term (a monomial) into its coefficient and exponent
/// row; `None` when the term is not a monomial over `vars`.
fn compile_term(term: &Expr, vars: &[String], row: &mut [i16]) -> Option<Rational> {
    let mut coeff = Rational::ONE;
    let factors: Vec<&Expr> = match term {
        Expr::Mul(items) => items.iter().collect(),
        other => vec![other],
    };
    for f in factors {
        match f {
            Expr::Num(r) => coeff *= *r,
            Expr::Sym(s) => {
                let t = var_index(vars, s.as_str())?;
                row[t] = row[t].checked_add(1)?;
            }
            Expr::Pow(base, e) => {
                let Expr::Sym(s) = &**base else { return None };
                if !e.is_integer() {
                    return None;
                }
                let t = var_index(vars, s.as_str())?;
                let e = i16::try_from(e.numer()).ok()?;
                row[t] = row[t].checked_add(e)?;
            }
            // Max/Min (the conservative-union fallback) and nested sums (only
            // possible under fractional powers after expand()) are not
            // posynomial material.
            _ => return None,
        }
    }
    Some(coeff)
}

fn var_index(vars: &[String], name: &str) -> Option<usize> {
    vars.iter().position(|v| v == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn d(name: &str) -> Expr {
        Expr::sym(name)
    }

    fn vars(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn compiles_and_evaluates_the_mmm_dominator() {
        // Di·Dk + Dk·Dj + Di·Dj
        let g = d("Di")
            .mul(d("Dk"))
            .add(d("Dk").mul(d("Dj")))
            .add(d("Di").mul(d("Dj")));
        let p = CompiledPosynomial::compile(&g, &vars(&["Di", "Dj", "Dk"])).unwrap();
        assert_eq!(p.n_terms(), 3);
        assert_eq!(p.eval(&[2.0, 3.0, 5.0]), 2.0 * 5.0 + 5.0 * 3.0 + 2.0 * 3.0);
    }

    #[test]
    fn gradient_matches_symbolic_derivative() {
        // f = 2·Di²·Dj + 3·Dj; ∂f/∂log Di = 2·2·Di²·Dj, ∂f/∂log Dj = 2·Di²·Dj + 3·Dj.
        let f = Expr::int(2)
            .mul(d("Di").pow(Rational::int(2)))
            .mul(d("Dj"))
            .add(Expr::int(3).mul(d("Dj")));
        let p = CompiledPosynomial::compile(&f, &vars(&["Di", "Dj"])).unwrap();
        let x = [3.0, 7.0];
        let mut terms = vec![0.0; p.n_terms()];
        let total = p.eval_terms(&x, &mut terms);
        assert_eq!(total, 2.0 * 9.0 * 7.0 + 21.0);
        let mut grad = vec![0.0; 2];
        p.grad_log_from_terms(&terms, &mut grad);
        assert_eq!(grad[0], 2.0 * 2.0 * 9.0 * 7.0);
        assert_eq!(grad[1], 2.0 * 9.0 * 7.0 + 21.0);
    }

    #[test]
    fn expansion_happens_during_compilation() {
        // (Di − 2)·(Dj − 1) has integer-exponent monomials after expansion.
        let f = d("Di").sub(Expr::int(2)).mul(d("Dj").sub(Expr::one()));
        let p = CompiledPosynomial::compile(&f, &vars(&["Di", "Dj"])).unwrap();
        let mut b = BTreeMap::new();
        b.insert("Di".to_string(), 9.0);
        b.insert("Dj".to_string(), 4.0);
        assert_eq!(p.eval(&[9.0, 4.0]), f.eval(&b).unwrap());
    }

    #[test]
    fn non_posynomials_are_rejected() {
        let m = d("Di").max(d("Dj"));
        assert!(CompiledPosynomial::compile(&m, &vars(&["Di", "Dj"])).is_none());
        let frac = d("Di").pow(Rational::new(1, 2));
        assert!(CompiledPosynomial::compile(&frac, &vars(&["Di"])).is_none());
        let unknown = d("Di").mul(d("Dz"));
        assert!(CompiledPosynomial::compile(&unknown, &vars(&["Di"])).is_none());
    }

    #[test]
    fn constant_terms_have_empty_rows() {
        let f = d("Di").add(Expr::int(5));
        let p = CompiledPosynomial::compile(&f, &vars(&["Di"])).unwrap();
        assert_eq!(p.eval(&[10.0]), 15.0);
        let constant_row: Vec<i16> = (0..p.n_terms())
            .find(|&k| p.rational_coeff(k) == Rational::int(5))
            .map(|k| p.exponent_row(k).to_vec())
            .unwrap();
        assert_eq!(constant_row, vec![0]);
    }
}
