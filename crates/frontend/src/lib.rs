//! # soap-frontend
//!
//! Parsers that turn source code into SOAP IR, playing the role DaCe plays in
//! the paper's toolchain ("derive lower bounds directly from provided C
//! code").  Two dialects are supported, covering the input class the analysis
//! needs — perfectly or imperfectly nested affine loops around array
//! assignments:
//!
//! * a **Python-like** dialect (`for i in range(lo, hi):` with indentation),
//!   matching the listings in the paper;
//! * a **C-like** dialect (`for (i = lo; i < hi; i++) { ... }` with
//!   `A[i][j]`-style subscripts).
//!
//! Assignments of the form `X[...] = expr` become SOAP statements; `+=`, `-=`
//! and `*=` assignments become update statements; every array reference on the
//! right-hand side becomes an input access component.  Scalar temporaries and
//! arithmetic on the right-hand side are irrelevant for the I/O analysis and
//! are ignored beyond the array references they contain.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod c_like;
mod python_like;
mod rhs;

pub use c_like::parse_c;
pub use python_like::parse_python;

use soap_ir::IrError;

/// Largest source (in bytes) either parser accepts.  Real kernels are a few
/// hundred bytes; anything past this is rejected up front instead of parsed.
pub const MAX_SOURCE_BYTES: usize = 1 << 20;

/// Deepest loop nest either parser accepts.  The analysis cost is already
/// exponential in nesting depth, so this only guards against adversarial
/// input, not real programs.
pub const MAX_LOOP_DEPTH: usize = 64;

/// Errors produced by the front-end parsers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrontendError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// 1-based byte column where the offending construct starts.
        column: usize,
        /// Description of the problem.
        message: String,
    },
    /// A statement appeared outside of any loop.
    StatementOutsideLoop {
        /// 1-based line number.
        line: usize,
    },
    /// The source exceeds [`MAX_SOURCE_BYTES`].
    SourceTooLarge {
        /// Size of the rejected source in bytes.
        bytes: usize,
    },
    /// Loops nest deeper than [`MAX_LOOP_DEPTH`].
    NestingTooDeep {
        /// 1-based line number of the loop that exceeded the limit.
        line: usize,
    },
    /// Lowering to the IR failed.
    Ir(IrError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Syntax {
                line,
                column,
                message,
            } => write!(f, "line {line}, column {column}: {message}"),
            FrontendError::StatementOutsideLoop { line } => {
                write!(f, "line {line}: statement outside of any loop")
            }
            FrontendError::SourceTooLarge { bytes } => {
                write!(
                    f,
                    "source is {bytes} bytes, above the {MAX_SOURCE_BYTES}-byte limit"
                )
            }
            FrontendError::NestingTooDeep { line } => {
                write!(
                    f,
                    "line {line}: loops nest deeper than the limit of {MAX_LOOP_DEPTH}"
                )
            }
            FrontendError::Ir(e) => write!(f, "IR error: {e}"),
        }
    }
}

/// 1-based byte column of the subslice `part` inside the line `whole` it was
/// sliced from.  Falls back to column 1 when `part` is not a subslice.
pub(crate) fn column_of(whole: &str, part: &str) -> usize {
    let whole_range = whole.as_ptr() as usize..whole.as_ptr() as usize + whole.len();
    let part_start = part.as_ptr() as usize;
    if whole_range.contains(&part_start) || part_start == whole_range.end {
        part_start - whole_range.start + 1
    } else {
        1
    }
}

impl std::error::Error for FrontendError {}

impl From<IrError> for FrontendError {
    fn from(e: IrError) -> Self {
        FrontendError::Ir(e)
    }
}
