//! Single-statement SOAP analysis (Section 4 of the paper).

use crate::access_size::{
    corollary1_size, lemma3_size, statement_chi, tile_var, update_output_size,
};
use crate::model::{solve_model, AccessModel, IntensityResult};
use crate::projections::provably_disjoint;
use crate::AnalysisError;
use soap_ir::{AccessComponent, ArrayAccess, Statement};
use soap_symbolic::{Expr, Polynomial};
use std::collections::BTreeMap;

/// Options controlling the analysis.
#[derive(Clone, Debug, Default)]
pub struct AnalysisOptions {
    /// Treat linear-combination subscripts (`Image[r + σ·w]`) as injective
    /// (Section 5.3 case 1).  The default `false` keeps the always-valid
    /// conservative bound (case 2).
    pub assume_injective: bool,
}

/// The result of analyzing one SOAP statement.
#[derive(Clone, Debug)]
pub struct StatementAnalysis {
    /// Statement name.
    pub name: String,
    /// The solved intensity (σ, ρ(S), X₀, tile shape).
    pub intensity: IntensityResult,
    /// The exact iteration-domain cardinality `|D|`.
    pub domain_size: Polynomial,
    /// The leading-order I/O lower bound `Q ≥ |D| / ρ(S)` (Eq. 9).
    pub bound: Expr,
    /// The dominator-set size expression used in the optimization.
    pub dominator: Expr,
    /// Human-readable notes about projections and conservative fallbacks.
    pub notes: Vec<String>,
}

/// One group of access components of a single array sharing a linear part —
/// the unit on which Lemma 3 applies.
#[derive(Clone, Debug)]
struct AccessGroup {
    access: ArrayAccess,
}

/// Assemble the dominator-size expression for a statement, applying the
/// Section-5 projections.  Returns the expression, the per-term iteration
/// variable index sets (when all terms are pure products — used for the exact
/// exponent LP), and notes.
pub(crate) fn build_dominator(
    st: &Statement,
    opts: &AnalysisOptions,
    vars: &[String],
) -> (Expr, Vec<Vec<usize>>, Vec<String>) {
    let mut notes = Vec::new();
    let var_index: BTreeMap<&str, usize> = vars
        .iter()
        .enumerate()
        .map(|(i, v)| (v.as_str(), i))
        .collect();
    let out_array = st.output_array().to_string();
    let out_component = st.output.components[0].clone();

    // Collect all input components per array.
    let mut per_array: BTreeMap<String, Vec<AccessComponent>> = BTreeMap::new();
    let mut array_order: Vec<String> = Vec::new();
    for acc in &st.inputs {
        if !array_order.contains(&acc.array) {
            array_order.push(acc.array.clone());
        }
        per_array
            .entry(acc.array.clone())
            .or_default()
            .extend(acc.components.iter().cloned());
    }

    let mut terms: Vec<Expr> = Vec::new();
    let mut index_sets: Vec<Vec<usize>> = Vec::new();
    let mut pure_products = true;

    for array in &array_order {
        let mut components = per_array.remove(array).unwrap_or_default();
        let is_output_array = *array == out_array;

        // Update statements read the previous version of the output element;
        // that read is modeled by the version-dimension rule below, not by a
        // separate access group, so drop components identical in linear part
        // to the output subscripts.
        if is_output_array && st.is_update {
            components.retain(|c| {
                c.translation_from(&out_component).is_none()
                    || c.indices
                        .iter()
                        .zip(&out_component.indices)
                        .any(|(a, b)| a.linear_part() != b.linear_part())
            });
        }

        // Group by linear part.
        let mut groups: Vec<AccessGroup> = Vec::new();
        'next_component: for c in components {
            for g in &mut groups {
                if c.translation_from(&g.access.components[0]).is_some() {
                    if !g.access.components.contains(&c) {
                        g.access.components.push(c);
                    }
                    continue 'next_component;
                }
            }
            groups.push(AccessGroup {
                access: ArrayAccess::new(array.clone(), vec![c]),
            });
        }

        // Input/output simple overlap (Corollary 1): a non-update statement
        // whose output array is also read with the same linear part (stencils
        // with an explicit time/version subscript).
        if is_output_array && !st.is_update {
            if let Some(pos) = groups.iter().position(|g| {
                g.access.components[0]
                    .translation_from(&out_component)
                    .is_some()
            }) {
                let mut combined = groups.remove(pos).access;
                combined.components.insert(0, out_component.clone());
                let size = corollary1_size(&combined, opts.assume_injective);
                let size = if size.is_zero() {
                    // Degenerate overlap (identical subscripts): fall back to
                    // the version-dimension projection of §5.2.
                    notes.push(format!(
                        "array {array}: identical in/out subscripts — applied version-dimension projection (§5.2)"
                    ));
                    Expr::product(st.output.variables().iter().map(|v| Expr::sym(tile_var(v))))
                } else {
                    notes.push(format!(
                        "array {array}: input/output simple overlap handled by Corollary 1"
                    ));
                    size
                };
                pure_products = false;
                terms.push(size);
            }
        }

        if groups.is_empty() {
            continue;
        }

        // Decide between §5.1 splitting (sum) and the conservative union bound
        // (max) for multiple linear-part groups of the same array.
        let all_disjoint = groups.len() == 1
            || groups.iter().enumerate().all(|(i, a)| {
                groups.iter().skip(i + 1).all(|b| {
                    provably_disjoint(&a.access.components[0], &b.access.components[0], &st.domain)
                })
            });

        let group_sizes: Vec<(Expr, Vec<usize>, bool)> = groups
            .iter()
            .map(|g| {
                let size = lemma3_size(&g.access, opts.assume_injective);
                let has_offsets = g
                    .access
                    .offset_sets()
                    .map(|s| s.iter().any(|d| !d.is_empty()))
                    .unwrap_or(false);
                let multi_var_dim = g.access.components[0]
                    .indices
                    .iter()
                    .any(|ix| ix.variables().count() > 1);
                let set: Vec<usize> = g
                    .access
                    .variables()
                    .iter()
                    .filter_map(|v| var_index.get(v.as_str()).copied())
                    .collect();
                (size, set, has_offsets || multi_var_dim)
            })
            .collect();

        if all_disjoint {
            if groups.len() > 1 {
                notes.push(format!(
                    "array {}: {} access groups proven disjoint from the loop bounds (§5.1), counted separately",
                    array, groups.len()
                ));
            }
            for (size, set, surface) in group_sizes {
                if surface {
                    pure_products = false;
                }
                index_sets.push(set);
                terms.push(size);
            }
        } else {
            notes.push(format!(
                "array {array}: overlapping access groups could not be proven disjoint — using the conservative union bound (max of group sizes)"
            ));
            pure_products = false;
            let mut it = group_sizes.into_iter();
            // lint:allow(unwrap-expect): grouping a non-empty input always yields at least one group
            let (first, set, _) = it.next().expect("at least one group");
            let combined = it.fold(first, |acc, (e, _, _)| acc.max(e));
            index_sets.push(set);
            terms.push(combined);
        }
    }

    // Update (`+=`) output contribution: the accumulation-chain rule.
    if st.is_update {
        let out_vars = st.output.variables();
        let red = st.reduction_variables();
        let outer_red: Vec<String> = if red.len() > 1 {
            red[..red.len() - 1].to_vec()
        } else {
            Vec::new()
        };
        if !outer_red.is_empty() {
            notes.push(format!(
                "update output {}: accumulation chain is contiguous only along '{}'; outer reduction variables {:?} enter the dominator",
                out_array,
                red.last().cloned().unwrap_or_default(),
                outer_red
            ));
        }
        let expr = update_output_size(&out_vars, &outer_red);
        let set: Vec<usize> = out_vars
            .iter()
            .chain(outer_red.iter())
            .filter_map(|v| var_index.get(v.as_str()).copied())
            .collect();
        index_sets.push(set);
        terms.push(expr);
    }

    let dominator = Expr::sum(terms);
    let index_sets = if pure_products {
        index_sets
    } else {
        Vec::new()
    };
    (dominator, index_sets, notes)
}

/// Analyze a single SOAP statement: build the dominator model, solve it, and
/// assemble the leading-order I/O lower bound `Q ≥ |D| / ρ(S)` (Eq. 9).
pub fn analyze_statement(
    st: &Statement,
    opts: &AnalysisOptions,
) -> Result<StatementAnalysis, AnalysisError> {
    st.validate()
        .map_err(|e| AnalysisError::InvalidStatement(e.to_string()))?;
    let vars = st.loop_variables();
    let (dominator, index_sets, notes) = build_dominator(st, opts, &vars);
    let model = AccessModel {
        name: st.name.clone(),
        tile_variables: vars.iter().map(|v| tile_var(v)).collect(),
        objective: statement_chi(&vars),
        dominator: dominator.clone(),
        access_index_sets: index_sets,
    };
    let intensity = solve_model(&model)?;
    let domain_size = st.execution_count();
    let params = st.parameters();
    let leading = domain_size.leading_terms(&params).to_expr();
    let bound = leading.div(intensity.rho.clone());
    Ok(StatementAnalysis {
        name: st.name.clone(),
        intensity,
        domain_size,
        bound,
        dominator,
        notes,
    })
}

/// Run the analysis under both branches of the Section 5.3 conditional
/// (conservative vs. injective subscripts), returning `(case2, case1)` in the
/// paper's numbering: the first element is the always-valid bound, the second
/// the large-stride bound.
pub fn analyze_conditional(
    st: &Statement,
) -> Result<(StatementAnalysis, StatementAnalysis), AnalysisError> {
    let conservative = analyze_statement(
        st,
        &AnalysisOptions {
            assume_injective: false,
        },
    )?;
    let injective = analyze_statement(
        st,
        &AnalysisOptions {
            assume_injective: true,
        },
    )?;
    Ok((conservative, injective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_ir::StatementBuilder;
    use soap_symbolic::Rational;
    use std::collections::BTreeMap;

    fn eval(e: &Expr, pairs: &[(&str, f64)]) -> f64 {
        let b: BTreeMap<String, f64> = pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        e.eval(&b).unwrap()
    }

    fn gemm() -> Statement {
        StatementBuilder::new("gemm")
            .loops(&[("i", "0", "N"), ("j", "0", "N"), ("k", "0", "N")])
            .update("C", "i,j")
            .read("A", "i,k")
            .read("B", "k,j")
            .build()
            .unwrap()
    }

    #[test]
    fn gemm_bound_is_two_n_cubed_over_sqrt_s() {
        let res = analyze_statement(&gemm(), &AnalysisOptions::default()).unwrap();
        assert_eq!(res.intensity.sigma, Rational::new(3, 2));
        // ρ(S) = sqrt(S)/2
        assert!((res.intensity.rho_at(10_000.0) - 50.0).abs() < 1.0);
        // Q(N=1000, S=10000) ≈ 2·10^9 / 100 = 2·10^7
        let q = eval(&res.bound, &[("N", 1000.0), ("S", 10_000.0)]);
        assert!((q - 2.0e7).abs() / 2.0e7 < 0.03, "bound {q}");
    }

    #[test]
    fn stencil_statement_reproduces_jacobi1d_bound() {
        // A[i,t+1] = (A[i-1,t] + A[i,t] + A[i+1,t])/3   =>  Q ≥ 2NT/S
        let st = StatementBuilder::new("jacobi1d")
            .loops(&[("t", "0", "T"), ("i", "1", "N - 1")])
            .write("A", "i,t+1")
            .read_multi("A", &["i-1,t", "i,t", "i+1,t"])
            .build()
            .unwrap();
        let res = analyze_statement(&st, &AnalysisOptions::default()).unwrap();
        assert_eq!(res.intensity.sigma, Rational::int(2));
        // ρ(S) = S/2 (up to lower-order terms).
        let rho = res.intensity.rho_at(1000.0);
        assert!((rho - 500.0).abs() / 500.0 < 0.05, "rho {rho}");
        let q = eval(&res.bound, &[("N", 1.0e4), ("T", 1.0e3), ("S", 100.0)]);
        let expected = 2.0 * 1.0e4 * 1.0e3 / 100.0;
        assert!(
            (q - expected).abs() / expected < 0.1,
            "bound {q} vs {expected}"
        );
    }

    #[test]
    fn lu_trailing_update_uses_disjoint_splitting() {
        // A[i,j] -= A[i,k]*A[k,j]  with i,j in k+1..N  =>  σ = 3/2, ρ = sqrt(S)/2.
        let st = StatementBuilder::new("lu_update")
            .loops(&[("k", "0", "N"), ("i", "k+1", "N"), ("j", "k+1", "N")])
            .update("A", "i,j")
            .read("A", "i,k")
            .read("A", "k,j")
            .build()
            .unwrap();
        let res = analyze_statement(&st, &AnalysisOptions::default()).unwrap();
        assert_eq!(res.intensity.sigma, Rational::new(3, 2));
        assert!((res.intensity.rho_at(10_000.0) - 50.0).abs() < 1.5);
        assert!(
            res.notes.iter().any(|n| n.contains("disjoint")),
            "notes: {:?}",
            res.notes
        );
        // |D| = N³/3 to leading order  =>  Q ≈ 2N³/(3·sqrt(S)).
        let q = eval(&res.bound, &[("N", 300.0), ("S", 10_000.0)]);
        let expected = 2.0 * 300.0_f64.powi(3) / (3.0 * 100.0);
        assert!(
            (q - expected).abs() / expected < 0.05,
            "bound {q} vs {expected}"
        );
    }

    #[test]
    fn transposed_reads_use_conservative_union() {
        // y[i] += A[i,j]*x[j] fused form that also reads A[j,i] must not count
        // A twice when the accesses cannot be proven disjoint.
        let st = StatementBuilder::new("sym_reads")
            .loops(&[("i", "0", "N"), ("j", "0", "N")])
            .update("y", "i")
            .read("A", "i,j")
            .read("A", "j,i")
            .read("x", "j")
            .build()
            .unwrap();
        let res = analyze_statement(&st, &AnalysisOptions::default()).unwrap();
        assert!(res.notes.iter().any(|n| n.contains("conservative")));
        assert_eq!(res.intensity.sigma, Rational::ONE);
        // ρ → 1: every compute vertex needs about one fresh A element.
        assert!((res.intensity.rho_at(64.0) - 1.0).abs() < 0.1);
    }

    #[test]
    fn direct_convolution_has_conditional_intensity() {
        // 7-loop direct convolution (Example 6).
        let st = StatementBuilder::new("conv")
            .loops(&[
                ("b", "0", "B"),
                ("c", "0", "C"),
                ("k", "0", "K"),
                ("w", "0", "W"),
                ("h", "0", "H"),
                ("r", "0", "R"),
                ("s", "0", "Sk"),
            ])
            .update("Out", "k,h,w,b")
            .read("Image", "r+2*w,s+2*h,c,b")
            .read("Filter", "k,r,s")
            .build()
            .unwrap();
        let (conservative, injective) = analyze_conditional(&st).unwrap();
        // Case 1 (injective): σ = 3/2  =>  ρ_min ~ sqrt(S).
        assert_eq!(injective.intensity.sigma, Rational::new(3, 2));
        // Case 2 (overlapping windows): σ = 2  =>  ρ_max ~ S.
        assert_eq!(conservative.intensity.sigma, Rational::int(2));
        assert!(conservative.intensity.rho_at(1000.0) > injective.intensity.rho_at(1000.0));
    }

    #[test]
    fn pure_write_statement_without_inputs_errors() {
        let st = StatementBuilder::new("init")
            .loops(&[("i", "0", "N")])
            .write("A", "i")
            .build()
            .unwrap();
        assert!(matches!(
            analyze_statement(&st, &AnalysisOptions::default()),
            Err(AnalysisError::NoInputs(_))
        ));
    }
}
