//! Load-test the `soap-serve` daemon: mixed registry + renamed-source
//! traffic over keep-alive TCP, with client-side latency percentiles and
//! server-side dedup accounting, plus pass/fail assertion flags for CI.
//!
//! ```text
//! loadgen [--addr HOST:PORT]        # default: in-process server, port 0
//!         [--duration-ms MS]        # timed window (default 2000)
//!         [--connections N]         # client threads (default 8)
//!         [--warmup N]              # untimed requests per connection (default 96)
//!         [--cache-dir DIR]         # store for the in-process server
//!         [--out FILE]              # write the report as JSON
//!         [--shutdown]              # POST /shutdown to the server afterwards
//!         [--min-rps R]             # fail below R requests/second
//!         [--require-zero-5xx]      # fail on any 5xx response
//!         [--require-dedup]         # fail unless dedup_ratio > 0
//!         [--require-store-hits]    # fail unless the solve cache hit the disk store
//!         [--require-report-hits]   # fail unless whole analyses replayed from report records
//! ```
//!
//! Every requirement violation is reported; the process exits nonzero if any
//! failed, so one CI step both generates the latency artifact and enforces
//! the serving SLOs.

#![forbid(unsafe_code)]

use soap_bench::load::{run_load, LoadConfig};
use std::cmp::Ordering;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--duration-ms MS] [--connections N] [--warmup N]\n               \
         [--cache-dir DIR] [--out FILE] [--shutdown] [--min-rps R]\n               \
         [--require-zero-5xx] [--require-dedup] [--require-store-hits]\n               \
         [--require-report-hits]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = LoadConfig::default();
    let mut out_path: Option<String> = None;
    let mut shutdown = false;
    let mut min_rps: Option<f64> = None;
    let mut require_zero_5xx = false;
    let mut require_dedup = false;
    let mut require_store_hits = false;
    let mut require_report_hits = false;
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--addr" => config.addr = Some(value(&mut i)),
            "--duration-ms" => {
                let ms: u64 = value(&mut i).parse().unwrap_or_else(|_| usage());
                config.duration = Duration::from_millis(ms);
            }
            "--connections" => {
                config.connections = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--warmup" => {
                config.warmup_requests = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--cache-dir" => config.cache_dir = Some(value(&mut i)),
            "--out" => out_path = Some(value(&mut i)),
            "--shutdown" => shutdown = true,
            "--min-rps" => min_rps = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--require-zero-5xx" => require_zero_5xx = true,
            "--require-dedup" => require_dedup = true,
            "--require-store-hits" => require_store_hits = true,
            "--require-report-hits" => require_report_hits = true,
            _ => usage(),
        }
        i += 1;
    }

    let report = match run_load(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "loadgen: {} requests in {:.0} ms over {} connection(s) — {:.0} req/s",
        report.requests, report.elapsed_ms, config.connections, report.throughput_rps
    );
    println!(
        "  latency: p50 {:.3} ms   p99 {:.3} ms   max {:.3} ms",
        report.p50_ms, report.p99_ms, report.max_ms
    );
    println!(
        "  status:  2xx {}   4xx {} (429: {})   5xx {}",
        report.status_2xx, report.status_4xx, report.status_429, report.status_5xx
    );
    println!(
        "  server:  dedup ratio {:.3} ({} memo hits + {} coalesced over {} analyze requests, {} analyses), {} store hits, {} report hits",
        report.dedup_ratio,
        report.response_cache_hits,
        report.coalesced,
        report.analyze_requests,
        report.analyses,
        report.store_hits,
        report.report_hits,
    );
    if report.status_429 > 0 {
        println!(
            "  backpressure: {} rejection(s), max Retry-After {} s",
            report.status_429, report.retry_after_max_secs
        );
    }

    if let Some(path) = &out_path {
        let text = serde_json::to_string_pretty(&report.to_value()).expect("report serializes");
        if let Err(e) = std::fs::write(path, text + "\n") {
            eprintln!("loadgen: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("  wrote {path}");
    }

    if shutdown {
        let Some(addr) = &config.addr else {
            eprintln!(
                "loadgen: --shutdown requires --addr (the in-process server already stopped)"
            );
            std::process::exit(1);
        };
        let stopped = httpd::Client::connect(addr.as_str())
            .and_then(|mut c| c.request("POST", "/shutdown", None));
        match stopped {
            Ok(resp) if resp.status == 200 => println!("  server at {addr} shutting down"),
            Ok(resp) => {
                eprintln!("loadgen: POST /shutdown returned {}", resp.status);
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("loadgen: POST /shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut failures: Vec<String> = Vec::new();
    if let Some(min) = min_rps {
        if report.throughput_rps < min {
            failures.push(format!(
                "throughput {:.0} req/s below required {min:.0}",
                report.throughput_rps
            ));
        }
    }
    if require_zero_5xx && report.status_5xx > 0 {
        failures.push(format!("{} 5xx response(s)", report.status_5xx));
    }
    if require_dedup && soap_symbolic::nan_last(report.dedup_ratio, 0.0) != Ordering::Greater {
        failures.push(format!("dedup ratio {} is not > 0", report.dedup_ratio));
    }
    if require_store_hits && report.store_hits == 0 && report.report_hits == 0 {
        failures.push("no solve-cache store hits (server not warm-started?)".to_string());
    }
    if require_report_hits && report.report_hits == 0 {
        failures.push(
            "no finished-report replays (report records missing from the store?)".to_string(),
        );
    }
    if !failures.is_empty() {
        eprintln!("loadgen FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("loadgen OK");
}
