//! Degraded-mode guarantees: a plan-driven cancellation trip must produce
//! output that is (a) byte-identical for every worker budget and shard
//! count — the trips key on enumeration index and level, never wall-clock —
//! and (b) *sound*: the degraded bound never exceeds the full bound, because
//! an affected array defers its contribution (counts as zero) rather than
//! keeping a too-small candidate set for the Theorem-1 maximum.

use soap_kernels::registry;
use soap_sdg::{
    analyze_suite_with, override_plan, set_worker_budget, FaultPlan, SdgOptions, SolveCache,
    SuiteProgram,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Run `f` with the worker budget forced to `n`, restoring the previous one.
fn with_budget<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = set_worker_budget(n);
    let result = f();
    set_worker_budget(prev);
    result
}

/// The Table-2 analysis options of every registry entry.
fn jobs() -> Vec<SuiteProgram> {
    registry()
        .into_iter()
        .map(|entry| {
            SuiteProgram::new(
                entry.program,
                SdgOptions {
                    assume_injective: entry.assume_injective,
                    ..SdgOptions::default()
                },
            )
        })
        .collect()
}

/// Bit-exact dump of one analysis, including the degraded-mode accounting.
fn dump(analysis: &soap_sdg::ProgramAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "program {} degraded {} deferred {} cancelled {} enumerated {}",
        analysis.name,
        analysis.degraded,
        analysis.arrays_deferred,
        analysis.solver.cancelled,
        analysis.solver.subgraphs_enumerated,
    );
    let _ = writeln!(out, "bound {}", analysis.bound);
    for a in &analysis.per_array {
        let _ = writeln!(
            out,
            "array {} |A|={} rho={} sigma={:?} via={:?} bound={}",
            a.array, a.vertex_count, a.rho, a.sigma, a.best_subgraph, a.bound
        );
    }
    for s in &analysis.subgraphs {
        let i = &s.intensity;
        let _ = writeln!(
            out,
            "subgraph {:?} sigma={:?} chi_coeff={:016x} rho={} rho_ref={:016x}",
            s.arrays,
            i.sigma,
            i.chi_coeff.to_bits(),
            i.rho,
            s.rho_ref.to_bits(),
        );
    }
    for n in &analysis.notes {
        let _ = writeln!(out, "note {n}");
    }
    out
}

/// Numeric value of a program's bound: every parameter at 1000, fast memory
/// at 10^4.  An empty / unevaluable bound counts as zero (no claim at all).
fn bound_value(program: &soap_ir::Program, analysis: &soap_sdg::ProgramAnalysis) -> f64 {
    let mut bindings: BTreeMap<String, f64> = program
        .parameters()
        .into_iter()
        .map(|p| (p, 1000.0))
        .collect();
    bindings.insert("S".to_string(), 1.0e4);
    analysis.bound_at(&bindings).unwrap_or(0.0)
}

#[test]
fn plan_tripped_degraded_output_is_identical_across_budgets_and_shards() {
    let jobs = jobs();
    let plan = FaultPlan {
        seed: 42,
        cancel_at_subgraph: Some(3),
        cancel_at_level: Some(3),
        ..FaultPlan::default()
    };
    // The override guard also serializes this test against the chaos suite's
    // plan injection when the two binaries share a process (they don't — but
    // the in-file worker-budget mutation below still wants one test at a
    // time, which #[test] isolation per binary provides).
    let guard = override_plan(Some(plan));

    let baseline: Vec<String> = with_budget(1, || {
        let batch = analyze_suite_with(&jobs, &SolveCache::with_shards(1));
        assert_eq!(batch.summary.failures, 0, "degraded is not failed");
        assert!(
            batch.summary.degraded > 0,
            "this plan must degrade part of the registry"
        );
        batch
            .reports
            .iter()
            .map(|r| dump(r.outcome.as_ref().expect("analysis succeeds")))
            .collect()
    });
    assert!(
        baseline.iter().any(|d| d.contains("degraded true")),
        "baseline must contain degraded programs"
    );

    for budget in [1usize, 4] {
        for shards in [1usize, 16] {
            let batch = with_budget(budget, || {
                analyze_suite_with(&jobs, &SolveCache::with_shards(shards))
            });
            assert_eq!(batch.summary.failures, 0, "budget={budget} shards={shards}");
            for (expected, report) in baseline.iter().zip(&batch.reports) {
                assert_eq!(
                    expected,
                    &dump(report.outcome.as_ref().expect("analysis succeeds")),
                    "{}: degraded output under budget={budget} shards={shards} diverged",
                    report.name
                );
            }
        }
    }
    drop(guard);
}

#[test]
fn degraded_bounds_never_exceed_the_full_bounds() {
    let jobs = jobs();
    let full: Vec<f64> = {
        let _guard = override_plan(None);
        let batch = analyze_suite_with(&jobs, &SolveCache::new());
        assert_eq!(batch.summary.failures, 0);
        batch
            .reports
            .iter()
            .zip(&jobs)
            .map(|(r, job)| bound_value(&job.program, r.outcome.as_ref().unwrap()))
            .collect()
    };

    // Several trip points, from "cancel almost everything" to "cancel the
    // tail": soundness must hold at every one, on every kernel.
    for cancel_at in [0u64, 1, 2, 5] {
        let _guard = override_plan(Some(FaultPlan {
            seed: 42,
            cancel_at_subgraph: Some(cancel_at),
            ..FaultPlan::default()
        }));
        let batch = analyze_suite_with(&jobs, &SolveCache::new());
        assert_eq!(batch.summary.failures, 0, "cancel_at={cancel_at}");
        for ((report, job), full_bound) in batch.reports.iter().zip(&jobs).zip(&full) {
            let analysis = report.outcome.as_ref().expect("analysis succeeds");
            let degraded_bound = bound_value(&job.program, analysis);
            assert!(
                degraded_bound <= full_bound * (1.0 + 1e-9) + 1e-9,
                "{} at cancel_at={cancel_at}: degraded bound {degraded_bound} exceeds full \
                 bound {full_bound} — degraded output is UNSOUND",
                report.name
            );
        }
    }
}
