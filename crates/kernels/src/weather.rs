//! COSMO numerical-weather-prediction stencils (Table 2, "Various").
//!
//! Two representatives of the model's dynamical core, following the published
//! GridTools/COSMO benchmark formulations:
//!
//! * **horizontal diffusion** — a composition of a Laplacian and two flux
//!   stencils in the horizontal plane, applied independently per vertical
//!   level: 4 statements over an `I × J × K` domain.
//! * **vertical advection** — the Thomas-algorithm forward/backward sweeps
//!   along the vertical dimension with first-order recurrences in `k`:
//!   5 statements over `I × J × K`.

// lint:allow-file(unwrap-expect): kernel definitions are static tables; an invalid program is an authoring bug caught by tier-1 tests, not a runtime condition
use soap_ir::{Program, ProgramBuilder};

/// Horizontal diffusion: `lap`, `flx`, `fly`, `out` over an `I × J × K` grid.
pub fn horizontal_diffusion() -> Program {
    ProgramBuilder::new("horizontal-diffusion")
        .statement(|st| {
            st.loops(&[("k", "0", "K"), ("j", "1", "J - 1"), ("i", "1", "I - 1")])
                .write("lap", "i,j,k")
                .read_multi(
                    "data",
                    &["i,j,k", "i-1,j,k", "i+1,j,k", "i,j-1,k", "i,j+1,k"],
                )
        })
        .statement(|st| {
            st.loops(&[("k", "0", "K"), ("j", "1", "J - 1"), ("i", "1", "I - 1")])
                .write("flx", "i,j,k")
                .read_multi("lap", &["i+1,j,k", "i,j,k"])
                .read_multi("data", &["i+1,j,k", "i,j,k"])
        })
        .statement(|st| {
            st.loops(&[("k", "0", "K"), ("j", "1", "J - 1"), ("i", "1", "I - 1")])
                .write("fly", "i,j,k")
                .read_multi("lap", &["i,j+1,k", "i,j,k"])
                .read_multi("data", &["i,j+1,k", "i,j,k"])
        })
        .statement(|st| {
            st.loops(&[("k", "0", "K"), ("j", "1", "J - 1"), ("i", "1", "I - 1")])
                .write("out", "i,j,k")
                .read("data", "i,j,k")
                .read_multi("flx", &["i,j,k", "i-1,j,k"])
                .read_multi("fly", &["i,j,k", "i,j-1,k"])
                .read("coeff", "i,j,k")
        })
        .build()
        .expect("horizontal diffusion is a valid SOAP program")
}

/// Vertical advection: the tridiagonal (Thomas) solve along `k` used by the
/// COSMO `vadv` benchmark — a forward sweep producing the modified
/// coefficients `ccol`/`dcol` and a backward substitution into `upos`,
/// plus the upstream flux computation.
pub fn vertical_advection() -> Program {
    ProgramBuilder::new("vertical-advection")
        .statement(|st| {
            st.loops(&[("j", "0", "J"), ("i", "0", "I"), ("k", "1", "K")])
                .write("acol", "i,j,k")
                .read_multi("wcon", &["i,j,k", "i+1,j,k"])
        })
        .statement(|st| {
            st.loops(&[("j", "0", "J"), ("i", "0", "I"), ("k", "1", "K")])
                .write("ccol", "i,j,k")
                .read("acol", "i,j,k")
                .read("ccol", "i,j,k-1")
        })
        .statement(|st| {
            st.loops(&[("j", "0", "J"), ("i", "0", "I"), ("k", "1", "K")])
                .write("dcol", "i,j,k")
                .read_multi("ustage", &["i,j,k", "i,j,k-1", "i,j,k+1"])
                .read("upos", "i,j,k")
                .read("dcol", "i,j,k-1")
                .read("ccol", "i,j,k-1")
        })
        .statement(|st| {
            st.loops(&[("j", "0", "J"), ("i", "0", "I"), ("k", "1", "K")])
                .write("datacol", "i,j,k")
                .read("dcol", "i,j,k")
                .read("ccol", "i,j,k")
                .read("datacol", "i,j,k+1")
        })
        .statement(|st| {
            st.loops(&[("j", "0", "J"), ("i", "0", "I"), ("k", "1", "K")])
                .write("utens", "i,j,k")
                .read("datacol", "i,j,k")
                .read("upos", "i,j,k")
        })
        .build()
        .expect("vertical advection is a valid SOAP program")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weather_programs_validate() {
        for p in [horizontal_diffusion(), vertical_advection()] {
            assert!(p.validate().is_ok(), "{} failed validation", p.name);
        }
    }

    #[test]
    fn horizontal_diffusion_has_four_stages() {
        let p = horizontal_diffusion();
        assert_eq!(p.statements.len(), 4);
        assert_eq!(p.computed_arrays(), vec!["lap", "flx", "fly", "out"]);
        assert!(p.input_arrays().contains(&"data".to_string()));
    }

    #[test]
    fn vertical_advection_work_is_5ijk() {
        let p = vertical_advection();
        let mut b = std::collections::BTreeMap::new();
        b.insert("I".to_string(), 10.0);
        b.insert("J".to_string(), 10.0);
        b.insert("K".to_string(), 11.0);
        // 5 statements × I·J·(K-1) iterations each.
        assert_eq!(
            p.total_vertex_count().eval(&b).unwrap(),
            5.0 * 10.0 * 10.0 * 10.0
        );
    }
}
