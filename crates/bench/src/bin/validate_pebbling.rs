//! Empirical validation of the analytic bounds: simulate red-blue pebblings
//! of small kernel instances and compare their I/O against the derived lower
//! bounds.
//!
//! ```text
//! cargo run --release -p soap-bench --bin validate_pebbling
//! ```

#![forbid(unsafe_code)]

use soap_bench::validation::{validate_kernel, ValidationCase};

fn main() {
    let cases = [
        ValidationCase {
            kernel: "gemm",
            size: 8,
            s: 24,
        },
        ValidationCase {
            kernel: "gemm",
            size: 12,
            s: 48,
        },
        ValidationCase {
            kernel: "gemm",
            size: 16,
            s: 96,
        },
        ValidationCase {
            kernel: "jacobi-1d",
            size: 32,
            s: 16,
        },
        ValidationCase {
            kernel: "jacobi-1d",
            size: 48,
            s: 24,
        },
        ValidationCase {
            kernel: "jacobi-2d",
            size: 10,
            s: 32,
        },
        ValidationCase {
            kernel: "lu",
            size: 12,
            s: 48,
        },
        ValidationCase {
            kernel: "atax",
            size: 24,
            s: 32,
        },
    ];
    println!("kernel        size   S     bound      naive    tiled    tiled/bound");
    println!("{}", "-".repeat(78));
    let mut violations = 0;
    for case in &cases {
        match validate_kernel(case) {
            Some(report) => {
                let ok = report.naive_io as f64 >= report.lower_bound * 0.999
                    && report.tiled_io as f64 >= report.lower_bound * 0.999;
                if !ok {
                    violations += 1;
                }
                println!("{report}{}", if ok { "" } else { "   <-- VIOLATION" });
            }
            None => println!(
                "{}: skipped (analysis or simulation unavailable)",
                case.kernel
            ),
        }
    }
    if violations > 0 {
        eprintln!("{violations} lower-bound violations detected");
        std::process::exit(1);
    }
    println!("\nAll simulated schedules respect the derived lower bounds.");
}
