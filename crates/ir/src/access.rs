//! Array accesses: affine subscripts, access-function-vector components and
//! full access function vectors (`φ_j` in the paper's notation).

use crate::domain::AffineExpr;
use std::collections::BTreeMap;
use std::fmt;

/// One affine array-subscript expression, e.g. `i`, `i - 1`, `r + 2*w`.
///
/// Coefficients refer to iteration variables of the enclosing statement; the
/// constant part is the translation offset that defines the *simple overlap*
/// structure (Definition 3 of the paper).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct LinIndex {
    /// Coefficients of the iteration variables (no zero entries).
    pub coeffs: BTreeMap<String, i64>,
    /// Constant offset.
    pub offset: i64,
}

impl LinIndex {
    /// The subscript `var`.
    pub fn var(name: &str) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.to_string(), 1);
        LinIndex { coeffs, offset: 0 }
    }

    /// The subscript `var + offset`.
    pub fn var_offset(name: &str, offset: i64) -> Self {
        let mut l = LinIndex::var(name);
        l.offset = offset;
        l
    }

    /// A constant subscript.
    pub fn constant(c: i64) -> Self {
        LinIndex {
            coeffs: BTreeMap::new(),
            offset: c,
        }
    }

    /// Build from an [`AffineExpr`] (same representation, different intent).
    pub fn from_affine(e: &AffineExpr) -> Self {
        LinIndex {
            coeffs: e.terms.clone(),
            offset: e.constant,
        }
    }

    /// The set of iteration variables used by this subscript.
    pub fn variables(&self) -> impl Iterator<Item = &String> {
        self.coeffs.keys()
    }

    /// True if the subscript is a single variable with coefficient 1
    /// (plus an arbitrary constant offset) — the canonical SOAP shape.
    pub fn is_simple(&self) -> bool {
        self.coeffs.len() == 1 && self.coeffs.values().all(|&c| c == 1)
    }

    /// If [`Self::is_simple`], the variable name.
    pub fn simple_var(&self) -> Option<&str> {
        if self.is_simple() {
            self.coeffs.keys().next().map(|s| s.as_str())
        } else {
            None
        }
    }

    /// The "linear part" (coefficients without the constant offset); two
    /// subscripts with equal linear parts differ by a constant translation.
    pub fn linear_part(&self) -> &BTreeMap<String, i64> {
        &self.coeffs
    }

    /// Evaluate under concrete iteration-variable bindings.
    pub fn eval(&self, bindings: &BTreeMap<String, i64>) -> Option<i64> {
        let mut acc = self.offset;
        for (name, coeff) in &self.coeffs {
            acc += coeff * bindings.get(name)?;
        }
        Some(acc)
    }
}

impl fmt::Display for LinIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let e = AffineExpr {
            terms: self.coeffs.clone(),
            constant: self.offset,
        };
        write!(f, "{}", e)
    }
}

/// One component `φ_{j,k}` of an access function vector: a full subscript
/// tuple addressing a single element of a `dim(A)`-dimensional array.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct AccessComponent {
    /// One [`LinIndex`] per array dimension.
    pub indices: Vec<LinIndex>,
}

impl AccessComponent {
    /// Build a component from subscripts.
    pub fn new(indices: Vec<LinIndex>) -> Self {
        AccessComponent { indices }
    }

    /// Array dimensionality addressed by this component.
    pub fn arity(&self) -> usize {
        self.indices.len()
    }

    /// All iteration variables used by this component.
    pub fn variables(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .indices
            .iter()
            .flat_map(|ix| ix.variables().cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The translation vector relative to another component, if the two differ
    /// only by constant offsets (i.e. they form a *simple overlap*).
    pub fn translation_from(&self, base: &AccessComponent) -> Option<Vec<i64>> {
        if self.arity() != base.arity() {
            return None;
        }
        let mut t = Vec::with_capacity(self.arity());
        for (a, b) in self.indices.iter().zip(&base.indices) {
            if a.linear_part() != b.linear_part() {
                return None;
            }
            t.push(a.offset - b.offset);
        }
        Some(t)
    }

    /// Evaluate to a concrete index tuple.
    pub fn eval(&self, bindings: &BTreeMap<String, i64>) -> Option<Vec<i64>> {
        self.indices.iter().map(|ix| ix.eval(bindings)).collect()
    }
}

impl fmt::Display for AccessComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.indices.iter().map(|i| format!("{}", i)).collect();
        write!(f, "[{}]", parts.join(","))
    }
}

/// A full access function vector `φ_j = [φ_{j,1}, …, φ_{j,n_j}]` of one array
/// within one statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayAccess {
    /// The accessed array's name.
    pub array: String,
    /// The `n_j ≥ 1` access components.
    pub components: Vec<AccessComponent>,
}

impl ArrayAccess {
    /// Build an access with a single component.
    pub fn single(array: impl Into<String>, indices: Vec<LinIndex>) -> Self {
        ArrayAccess {
            array: array.into(),
            components: vec![AccessComponent::new(indices)],
        }
    }

    /// Build an access with multiple components.
    pub fn new(array: impl Into<String>, components: Vec<AccessComponent>) -> Self {
        ArrayAccess {
            array: array.into(),
            components,
        }
    }

    /// The array dimensionality (`dim(A_j)`); all components must agree.
    pub fn dim(&self) -> usize {
        self.components.first().map(|c| c.arity()).unwrap_or(0)
    }

    /// The number of components `n_j`.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// All iteration variables used by any component.
    pub fn variables(&self) -> Vec<String> {
        let mut out: Vec<String> = self.components.iter().flat_map(|c| c.variables()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// True if every subscript of every component is a plain
    /// `variable + constant` (the injective canonical SOAP form).
    pub fn is_plain(&self) -> bool {
        self.components.iter().all(|c| {
            c.indices
                .iter()
                .all(|ix| ix.is_simple() || ix.coeffs.is_empty())
        })
    }

    /// Check the *simple overlap* property: all components share the same
    /// linear part and differ only by constant translation vectors.  Returns
    /// the translation vectors relative to the first component.
    pub fn simple_overlap_translations(&self) -> Option<Vec<Vec<i64>>> {
        let base = self.components.first()?;
        self.components
            .iter()
            .map(|c| c.translation_from(base))
            .collect()
    }

    /// The *access offset sets* `t̂_i` (Definition 3): per array dimension, the
    /// set of distinct non-zero offsets among the translation vectors.
    /// Returns `None` if the access is not a simple overlap.
    pub fn offset_sets(&self) -> Option<Vec<Vec<i64>>> {
        let translations = self.simple_overlap_translations()?;
        let dim = self.dim();
        let mut out = vec![Vec::new(); dim];
        for t in &translations {
            for (i, &ti) in t.iter().enumerate() {
                if ti != 0 && !out[i].contains(&ti) {
                    out[i].push(ti);
                }
            }
        }
        for v in &mut out {
            v.sort_unstable();
        }
        Some(out)
    }
}

impl fmt::Display for ArrayAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .components
            .iter()
            .map(|c| format!("{}{}", self.array, c))
            .collect();
        write!(f, "{}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_indices;

    fn acc(array: &str, comps: &[&str]) -> ArrayAccess {
        ArrayAccess::new(
            array,
            comps
                .iter()
                .map(|c| AccessComponent::new(parse_indices(c).unwrap()))
                .collect(),
        )
    }

    #[test]
    fn simple_overlap_detection() {
        // A[i,t+1], A[i-1,t], A[i,t], A[i+1,t] — the Example 1 stencil.
        let a = acc("A", &["i,t+1", "i-1,t", "i,t", "i+1,t"]);
        let t = a.simple_overlap_translations().unwrap();
        assert_eq!(t[0], vec![0, 0]);
        assert_eq!(t[1], vec![-1, -1]);
        assert_eq!(t[2], vec![0, -1]);
        assert_eq!(t[3], vec![1, -1]);
        let offsets = a.offset_sets().unwrap();
        assert_eq!(offsets[0], vec![-1, 1]);
        assert_eq!(offsets[1], vec![-1]);
    }

    #[test]
    fn non_overlapping_linear_parts_are_rejected() {
        // A[i,k] vs A[k,j] do NOT form a simple overlap.
        let a = acc("A", &["i,k", "k,j"]);
        assert!(a.simple_overlap_translations().is_none());
        assert!(a.offset_sets().is_none());
    }

    #[test]
    fn variables_and_dim() {
        let a = acc("Image", &["r+2*w,s+2*h,c,b"]);
        assert_eq!(a.dim(), 4);
        assert_eq!(a.variables(), vec!["b", "c", "h", "r", "s", "w"]);
        assert!(!a.is_plain());
        let simple = acc("A", &["i,j"]);
        assert!(simple.is_plain());
    }

    #[test]
    fn component_evaluation() {
        let a = acc("A", &["i+1,2*j-1"]);
        let mut b = BTreeMap::new();
        b.insert("i".to_string(), 3i64);
        b.insert("j".to_string(), 4i64);
        assert_eq!(a.components[0].eval(&b), Some(vec![4, 7]));
    }

    #[test]
    fn display_round_trip() {
        let a = acc("A", &["i-1,t"]);
        assert_eq!(format!("{}", a), "A[i - 1,t]");
    }
}
