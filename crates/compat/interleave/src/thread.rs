//! Shimmed threads: `spawn`/`join` with registration under the model
//! scheduler.  Model threads are real OS threads, but only the one holding
//! the scheduler baton executes at any moment.

use crate::sched::{panic_message, set_ctx, with_ctx, Aborted};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Spawn a model thread.  A schedule point: the child may run before the
/// parent continues.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (ctrl, me) = with_ctx(|ctrl, tid| (Arc::clone(ctrl), tid));
    let tid = ctrl.register_thread();
    let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let child_slot = Arc::clone(&slot);
    let child_ctrl = Arc::clone(&ctrl);
    let os = std::thread::spawn(move || {
        set_ctx(Arc::clone(&child_ctrl), tid);
        // Park until first scheduled.
        {
            let st = child_ctrl.lock_st();
            let st = child_ctrl.wait_for_turn(st, tid);
            drop(st);
        }
        let outcome = catch_unwind(AssertUnwindSafe(f));
        let panic_msg = match outcome {
            Ok(value) => {
                *child_slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
                None
            }
            Err(payload) if payload.is::<Aborted>() => None,
            Err(payload) => Some(panic_message(payload.as_ref())),
        };
        child_ctrl.thread_finished(tid, panic_msg);
    });
    ctrl.os_handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(os);
    ctrl.step(me);
    JoinHandle { tid, slot }
}

/// Yield the baton: a plain schedule point, like `std::thread::yield_now`.
pub fn yield_now() {
    with_ctx(|ctrl, me| ctrl.step(me));
}

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Park until the thread finishes, then take its return value.
    ///
    /// Unlike `std`, this returns `T` directly: a panicking model thread
    /// fails the whole run before any joiner resumes, so the error arm
    /// would be unreachable.
    pub fn join(self) -> T {
        with_ctx(|ctrl, me| ctrl.join_wait(me, self.tid));
        self.slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            // lint:allow(unwrap-expect): a model thread that finished without storing a value already failed the run
            .expect("joined thread finished without a value")
    }
}
