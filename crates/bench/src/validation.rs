//! Pebbling validation: compare analytic lower bounds against simulated
//! schedules on small concrete instances.

use serde::Serialize;
use soap_core::{analyze_statement, AnalysisOptions};
use soap_pebbling::{simulate_program_order, simulate_tiled, Cdag};
use soap_sdg::analyze_program;
use std::collections::BTreeMap;
use std::fmt;

/// One validation configuration.
#[derive(Clone, Copy, Debug)]
pub struct ValidationCase {
    /// Kernel name from the registry.
    pub kernel: &'static str,
    /// Value bound to every size parameter.
    pub size: i64,
    /// Red-pebble budget (fast-memory size in words).
    pub s: usize,
}

/// The outcome of one validation case.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// Kernel name.
    pub kernel: String,
    /// Size parameter value.
    pub size: i64,
    /// Fast-memory size.
    pub s: usize,
    /// The analytic leading-order lower bound evaluated at (size, S).
    pub lower_bound: f64,
    /// I/O of the program-order schedule.
    pub naive_io: usize,
    /// I/O of the tiled schedule (equals `naive_io` when no tiling applies).
    pub tiled_io: usize,
    /// Number of CDAG compute vertices.
    pub vertices: usize,
}

impl Serialize for ValidationReport {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("kernel".to_string(), self.kernel.to_value()),
            ("size".to_string(), self.size.to_value()),
            ("s".to_string(), self.s.to_value()),
            ("lower_bound".to_string(), self.lower_bound.to_value()),
            ("naive_io".to_string(), self.naive_io.to_value()),
            ("tiled_io".to_string(), self.tiled_io.to_value()),
            ("vertices".to_string(), self.vertices.to_value()),
        ])
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} size={:<4} S={:<4}  bound={:<10.1} naive={:<8} tiled={:<8} tiled/bound={:.2}",
            self.kernel,
            self.size,
            self.s,
            self.lower_bound,
            self.naive_io,
            self.tiled_io,
            self.tiled_io as f64 / self.lower_bound
        )
    }
}

/// Run one validation case: analytic bound, program-order simulation, and a
/// tiled simulation using the analysis' optimal tile shape when the kernel is
/// a single statement.
pub fn validate_kernel(case: &ValidationCase) -> Option<ValidationReport> {
    let entry = soap_kernels::by_name(case.kernel)?;
    let params: BTreeMap<String, i64> = entry
        .program
        .parameters()
        .into_iter()
        .map(|p| (p, case.size))
        .collect();
    let mut bindings: BTreeMap<String, f64> =
        params.iter().map(|(k, v)| (k.clone(), *v as f64)).collect();
    bindings.insert("S".to_string(), case.s as f64);

    let analysis = analyze_program(&entry.program).ok()?;
    let lower_bound = analysis.bound.eval(&bindings)?;

    let cdag = Cdag::from_program(&entry.program, &params);
    let naive = simulate_program_order(&cdag, case.s).ok()?;

    // Tile the first statement with the analysis' optimal shape, if available.
    let tiled_io = if entry.program.statements.len() == 1 {
        let st = &entry.program.statements[0];
        let opts = AnalysisOptions {
            assume_injective: entry.assume_injective,
        };
        match analyze_statement(st, &opts) {
            Ok(res) => match res.intensity.tiles_at(case.s as f64) {
                Some(tiles) => {
                    let by_var: BTreeMap<String, f64> = tiles.into_iter().collect();
                    let tile_vec: Vec<i64> = st
                        .loop_variables()
                        .iter()
                        .map(|v| {
                            by_var
                                .get(&format!("D_{v}"))
                                .map(|t| (t.round() as i64).max(1))
                                .unwrap_or(1)
                        })
                        .collect();
                    let mut tiles_per_stmt = BTreeMap::new();
                    tiles_per_stmt.insert(0usize, tile_vec);
                    simulate_tiled(&cdag, &tiles_per_stmt, case.s)
                        .map(|t| t.io())
                        .unwrap_or(naive.io())
                }
                None => naive.io(),
            },
            Err(_) => naive.io(),
        }
    } else {
        naive.io()
    };

    Some(ValidationReport {
        kernel: case.kernel.to_string(),
        size: case.size,
        s: case.s,
        lower_bound,
        naive_io: naive.io(),
        tiled_io,
        vertices: cdag.compute_vertices().len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_simulation_respects_the_bound() {
        let report = validate_kernel(&ValidationCase {
            kernel: "gemm",
            size: 8,
            s: 24,
        })
        .unwrap();
        assert!(report.naive_io as f64 >= report.lower_bound);
        assert!(report.tiled_io as f64 >= report.lower_bound);
        assert!(report.tiled_io <= report.naive_io);
    }

    #[test]
    fn stencil_simulation_respects_the_bound() {
        let report = validate_kernel(&ValidationCase {
            kernel: "jacobi-1d",
            size: 24,
            s: 12,
        })
        .unwrap();
        assert!(report.naive_io as f64 >= report.lower_bound, "{report}");
    }

    #[test]
    fn unknown_kernel_returns_none() {
        assert!(validate_kernel(&ValidationCase {
            kernel: "nope",
            size: 4,
            s: 8
        })
        .is_none());
    }
}
