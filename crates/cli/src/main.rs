//! `soap-cli` — derive I/O lower bounds directly from provided source code,
//! the command-line face of the analysis (the paper's "open-source tool").
//!
//! ```text
//! soap-cli analyze --lang c path/to/kernel.c
//! soap-cli analyze --lang python path/to/kernel.py [--injective] [--json]
//! soap-cli kernel gemm            # analyze a built-in Table-2 kernel
//! soap-cli batch gemm 2mm 3mm     # batch-analyze over one shared cache
//! soap-cli batch --all            # the whole built-in registry
//! soap-cli batch --all --cache-dir .soap-cache   # …over a persistent store
//! soap-cli cache stat .soap-cache # inspect a persistent store
//! soap-cli serve --cache-dir .soap-cache   # analysis-as-a-service daemon
//! soap-cli list                   # list the built-in kernels
//! ```
//!
//! `batch` accepts any mix of built-in kernel names and source files (`.c`,
//! `.py`), runs them all through the cross-program batch engine (one shared
//! solve cache, so renamed structures are solved once per *suite*), and
//! emits one JSON line per program followed by a suite-summary line with the
//! shared-cache accounting.
//!
//! `--cache-dir DIR` (on `analyze` and `batch`) layers that cache over the
//! disk-persisted canonical-solution store at `DIR`: structures solved by
//! *earlier processes* are hydrated at startup and answered without solving
//! (byte-identical results — the store keeps exact rationals and raw float
//! bits), and new solves are flushed back at exit, so a CI fleet or a
//! long-running service sharing one store directory converges on solving
//! each distinct structure once ever.  `soap-cli cache <stat|list|clear> DIR`
//! inspects or empties a store.

#![forbid(unsafe_code)]

use soap_baselines::sota_bound;
use soap_frontend::{parse_c, parse_python};
use soap_ir::Program;
use soap_sdg::{
    analyze_program_with_cache, analyze_suite_governed, parse_timeout_ms, parse_worker_threads,
    set_worker_budget, SdgOptions, SolveCache, SolveStore, SuiteProgram,
};
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         soap-cli analyze --lang <c|python> <file> [--injective] [--json] [--cache-dir DIR] [--threads N]\n  \
         soap-cli kernel <name> [--json]\n  \
         soap-cli batch [--all] [--injective] [--out FILE] [--cache-dir DIR] [--threads N]\n             \
         [--timeout-ms MS] [--suite-timeout-ms MS] [<kernel-or-file>...]\n  \
         soap-cli cache <stat|list|clear> <dir>\n  \
         soap-cli serve [--addr HOST:PORT] [--http-threads N] [--slots N] [--queue N]\n             \
         [--timeout-ms MS] [--cache-dir DIR] [--memo-cap N] [--threads N]\n  \
         soap-cli list\n\
         \n\
         --cache-dir DIR  layer the solve cache over the disk-persisted canonical-solution\n                  \
         store at DIR (created on first use): structures solved by earlier runs are\n                  \
         reused without re-solving — byte-identical results, warm wall clock — and\n                  \
         new solves are persisted for later runs.  `soap-cli cache stat DIR` inspects\n                  \
         a store, `list` shows its segment files, `clear` empties it.\n\
         \n\
         --threads N      worker threads for the parallel analysis front half (positive\n                  \
         integer, clamped to 512; default: SOAP_THREADS or the hardware core\n                  \
         count).  Results are byte-identical for any thread count.\n\
         \n\
         --timeout-ms MS  per-program analysis budget in milliseconds (positive integer).\n                  \
         A program exceeding it completes *degraded*: a sound partial bound\n                  \
         with the abandoned work accounted, never an error.  --suite-timeout-ms\n                  \
         additionally caps the whole batch; each program gets the smaller of\n                  \
         its own budget and the suite's remaining time.\n\
         \n\
         serve flags (daemon defaults come from the SOAP_SERVE_* environment; a flag\n\
         overrides its variable):\n  \
         --addr HOST:PORT  listen address (default 127.0.0.1:7878; port 0 picks a free\n                   \
         port, printed on startup)\n  \
         --http-threads N  HTTP connection threads (default 8)\n  \
         --slots N         concurrent analyses admitted (default 4); further requests\n                   \
         queue up to --queue N (default 64), beyond which the daemon\n                   \
         answers 429 with Retry-After instead of building backlog\n  \
         --timeout-ms MS   per-request analysis budget; over-budget requests return a\n                   \
         sound *degraded* partial bound with HTTP 200 (clients may\n                   \
         override per request with ?timeout_ms=)\n  \
         --cache-dir DIR   shared warm state: hydrate the canonical-solution store at\n                   \
         startup, flush new solves on shutdown\n  \
         --memo-cap N      memoized-response cache capacity (default 4096); inserting\n                   \
         beyond it evicts the oldest entry so memory stays bounded under\n                   \
         an unbounded stream of distinct programs\n\
         \n\
         environment:\n  \
         SOAP_THREADS       default worker-thread count (same validation and clamp as\n                     \
         --threads, which overrides it)\n  \
         SOAP_CACHE_SHARDS  lock-stripe count of the in-memory solve cache (positive\n                     \
         integer; clamped to a power of two <= 1024; default 16)\n  \
         SOAP_CACHE_DIR     store directory for the process-wide global solve cache\n                     \
         (library embeddings; the CLI subcommands use --cache-dir)\n  \
         SOAP_TIMEOUT_MS    default per-program budget (same validation as --timeout-ms,\n                     \
         which overrides it); SOAP_SUITE_TIMEOUT_MS likewise for the suite\n  \
         SOAP_FAULT_PLAN    deterministic fault-injection plan for chaos testing\n                     \
         (seed=..,store_read_transient=..,store_write_transient=..,\n                     \
         corrupt_every=..,panic_every=..,cancel_at_subgraph=..,\n                     \
         cancel_at_level=..); off unless set and well-formed\n  \
         SOAP_SERVE_ADDR          daemon listen address (see --addr)\n  \
         SOAP_SERVE_HTTP_THREADS  daemon HTTP connection threads (see --http-threads)\n  \
         SOAP_SERVE_SLOTS         daemon concurrent analysis slots (see --slots)\n  \
         SOAP_SERVE_QUEUE         daemon admission queue capacity (see --queue)\n  \
         SOAP_SERVE_MEMO_CAP      daemon memoized-response cache capacity (see --memo-cap)\n  \
         SOAP_DEBUG_KKT           print per-iteration KKT solver state to stderr (debug aid;\n                     \
         output is unaffected)"
    );
    std::process::exit(2);
}

/// Open a store-backed cache (when `--cache-dir` was given) or a plain one,
/// surfacing the store's load-time notes on stderr.
fn open_cache(cache_dir: Option<&str>) -> Result<SolveCache, ExitCode> {
    let Some(dir) = cache_dir else {
        return Ok(SolveCache::new());
    };
    match SolveCache::with_store(dir) {
        Ok(cache) => {
            let load = cache.store_load_stats().expect("store-backed").clone();
            for note in &load.notes {
                eprintln!("cache store: {note}");
            }
            if load.entries > 0 {
                eprintln!(
                    "cache store: hydrated {} canonical solution(s) from {} ({} segment(s), {} bytes)",
                    load.entries, dir, load.segments, load.bytes
                );
            }
            if let Some(reports) = cache.report_load_stats() {
                for note in &reports.notes {
                    eprintln!("cache store: {note}");
                }
                if reports.entries > 0 {
                    eprintln!(
                        "cache store: hydrated {} finished report(s) from {}",
                        reports.entries, dir
                    );
                }
            }
            Ok(cache)
        }
        Err(e) => {
            eprintln!("cannot open cache store {dir}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// Flush a store-backed cache at session end, reporting what was persisted.
/// Returns whether the flush succeeded (trivially true for a plain cache).
fn flush_cache(cache: &SolveCache) -> bool {
    match cache.flush_store() {
        Ok(flush) => {
            if flush.appended > 0 || flush.reports_appended > 0 {
                eprintln!(
                    "cache store: persisted {} new canonical solution(s) and {} finished report(s) to {}",
                    flush.appended,
                    flush.reports_appended,
                    cache
                        .store_dir()
                        .map(|d| d.display().to_string())
                        .unwrap_or_default()
                );
            }
            true
        }
        Err(e) => {
            eprintln!("cache store: flush failed: {e}");
            false
        }
    }
}

/// Apply a `--threads N` override to the process-wide worker budget, with
/// the same validation contract as `SOAP_CACHE_SHARDS` / `SOAP_THREADS`: an
/// unparsable value is an explicit usage error, never a silent guess.
fn set_threads_or_usage(raw: &str) {
    match parse_worker_threads(raw) {
        Some(n) => {
            set_worker_budget(n);
        }
        None => {
            eprintln!("--threads expects a positive integer, got '{raw}'");
            usage();
        }
    }
}

/// Parse a `--timeout-ms`-style flag value: an explicit flag with an invalid
/// value is a usage error (same contract as `--threads`), never a silent
/// guess.
fn timeout_or_usage(flag: &str, raw: &str) -> Duration {
    parse_timeout_ms(raw).unwrap_or_else(|| {
        eprintln!("{flag} expects a positive integer of milliseconds, got '{raw}'");
        usage();
    })
}

/// The environment-variable default for a budget: invalid values are ignored
/// (an env var travels further than a flag, so a typo must not kill every
/// invocation on the host).
fn timeout_from_env(var: &str) -> Option<Duration> {
    std::env::var(var)
        .ok()
        .and_then(|raw| parse_timeout_ms(&raw))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("list") => {
            for entry in soap_kernels::registry() {
                println!("{:<24} ({:?})", entry.name, entry.group);
            }
            ExitCode::SUCCESS
        }
        Some("kernel") => {
            let name = args.get(1).unwrap_or_else(|| usage());
            let Some(entry) = soap_kernels::by_name(name) else {
                eprintln!("unknown kernel '{name}'; run `soap-cli list`");
                return ExitCode::FAILURE;
            };
            report(
                &entry.program,
                entry.assume_injective,
                args.contains(&"--json".to_string()),
            )
        }
        Some("batch") => batch(&args[1..]),
        Some("cache") => cache_cmd(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("analyze") => {
            let mut lang = "python".to_string();
            let mut file = None;
            let mut injective = false;
            let mut json = false;
            let mut cache_dir: Option<String> = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--lang" => {
                        i += 1;
                        lang = args.get(i).cloned().unwrap_or_else(|| usage());
                    }
                    "--injective" => injective = true,
                    "--json" => json = true,
                    "--cache-dir" => {
                        i += 1;
                        cache_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
                    }
                    "--threads" => {
                        i += 1;
                        set_threads_or_usage(&args.get(i).cloned().unwrap_or_else(|| usage()));
                    }
                    other if !other.starts_with("--") => file = Some(other.to_string()),
                    _ => usage(),
                }
                i += 1;
            }
            let file = file.unwrap_or_else(|| usage());
            let source = match std::fs::read_to_string(&file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let name = std::path::Path::new(&file)
                .file_stem()
                .map(|s| s.to_string_lossy().to_string())
                .unwrap_or_else(|| "program".to_string());
            let parsed = match lang.as_str() {
                "c" => parse_c(&name, &source),
                "python" | "py" => parse_python(&name, &source),
                other => {
                    eprintln!("unknown language '{other}' (expected c or python)");
                    return ExitCode::FAILURE;
                }
            };
            match parsed {
                Ok(program) => {
                    let cache = match open_cache(cache_dir.as_deref()) {
                        Ok(c) => c,
                        Err(code) => return code,
                    };
                    let reported = report_with(&program, injective, json, &cache);
                    if flush_cache(&cache) && reported {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("parse error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// `soap-cli serve`: run the analysis daemon until a client POSTs /shutdown
/// (or the process is killed).  Defaults come from `ServeConfig::from_env()`
/// (the SOAP_SERVE_* variables); flags override.  On shutdown the
/// store-backed solve cache is flushed so the next replica starts warm.
fn serve(args: &[String]) -> ExitCode {
    let mut config = soap_serve::ServeConfig::from_env();
    let mut i = 0;
    while i < args.len() {
        // Flags that take a value share one "next arg or usage" shape.
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--addr" => config.addr = value(&mut i),
            "--http-threads" => {
                config.http_threads = positive_or_usage("--http-threads", &value(&mut i))
            }
            "--slots" => config.analysis_slots = positive_or_usage("--slots", &value(&mut i)),
            "--queue" => config.queue_capacity = positive_or_usage("--queue", &value(&mut i)),
            "--timeout-ms" => {
                config.timeout = Some(timeout_or_usage("--timeout-ms", &value(&mut i)));
            }
            "--cache-dir" => config.cache_dir = Some(value(&mut i)),
            "--memo-cap" => config.memo_cap = positive_or_usage("--memo-cap", &value(&mut i)),
            "--threads" => set_threads_or_usage(&value(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    let server = match soap_serve::RunningServer::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The bound address goes to stdout (scripts capture it — with port 0 the
    // kernel picks the port); progress chatter stays on stderr.
    println!("listening on http://{}", server.addr());
    eprintln!("serve: POST /shutdown to stop; GET /stats for live counters");
    server.wait_for_shutdown();
    match server.stop() {
        Ok(appended) => {
            if appended > 0 {
                eprintln!("serve: persisted {appended} new canonical solution(s) on shutdown");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: shutdown flush failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parse a positive-integer serve flag; an explicit flag with an invalid
/// value is a usage error (same contract as `--threads`).
fn positive_or_usage(flag: &str, raw: &str) -> usize {
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} expects a positive integer, got '{raw}'");
            usage();
        }
    }
}

/// `soap-cli batch`: resolve each spec to a program (built-in kernel name or
/// `.c`/`.py` source file), run them through `analyze_suite` over one shared
/// solve cache, and emit JSON-lines: one record per program, then one
/// `{"suite": ...}` record with the shared-cache accounting.
fn batch(args: &[String]) -> ExitCode {
    let mut specs: Vec<String> = Vec::new();
    let mut all = false;
    let mut injective = false;
    let mut out_path: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut program_budget = timeout_from_env("SOAP_TIMEOUT_MS");
    let mut suite_budget = timeout_from_env("SOAP_SUITE_TIMEOUT_MS");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--injective" => injective = true,
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--cache-dir" => {
                i += 1;
                cache_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--threads" => {
                i += 1;
                set_threads_or_usage(&args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--timeout-ms" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_else(|| usage());
                program_budget = Some(timeout_or_usage("--timeout-ms", &raw));
            }
            "--suite-timeout-ms" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_else(|| usage());
                suite_budget = Some(timeout_or_usage("--suite-timeout-ms", &raw));
            }
            other if !other.starts_with("--") => specs.push(other.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let mut jobs: Vec<SuiteProgram> = Vec::new();
    if all {
        for entry in soap_kernels::registry() {
            jobs.push(SuiteProgram::new(
                entry.program,
                SdgOptions {
                    assume_injective: entry.assume_injective,
                    ..SdgOptions::default()
                },
            ));
        }
    }
    for spec in &specs {
        let path = std::path::Path::new(spec);
        let extension = path
            .extension()
            .and_then(|e| e.to_str())
            .map(str::to_ascii_lowercase);
        let is_c = extension.as_deref() == Some("c");
        let by_extension = is_c || extension.as_deref() == Some("py");
        if by_extension || path.exists() {
            let source = match std::fs::read_to_string(spec) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {spec}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().to_string())
                .unwrap_or_else(|| "program".to_string());
            let parsed = if is_c {
                parse_c(&name, &source)
            } else {
                parse_python(&name, &source)
            };
            match parsed {
                Ok(program) => jobs.push(SuiteProgram::new(
                    program,
                    SdgOptions {
                        assume_injective: injective,
                        ..SdgOptions::default()
                    },
                )),
                Err(e) => {
                    eprintln!("parse error in {spec}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(entry) = soap_kernels::by_name(spec) {
            jobs.push(SuiteProgram::new(
                entry.program,
                SdgOptions {
                    assume_injective: entry.assume_injective,
                    ..SdgOptions::default()
                },
            ));
        } else {
            eprintln!("'{spec}' is neither a readable source file nor a built-in kernel; run `soap-cli list`");
            return ExitCode::FAILURE;
        }
    }
    if jobs.is_empty() {
        eprintln!("batch: nothing to analyze (pass kernel names / source files, or --all)");
        return ExitCode::FAILURE;
    }

    let cache = match open_cache(cache_dir.as_deref()) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let batch = analyze_suite_governed(&jobs, &cache, program_budget, suite_budget);
    if batch.summary.duplicate_names > 0 {
        eprintln!(
            "batch: {} duplicate program name(s) disambiguated to name#2, name#3, … in the reports",
            batch.summary.duplicate_names
        );
    }
    if batch.summary.degraded > 0 {
        eprintln!(
            "batch: {} program(s) degraded by the analysis budget; their bounds are sound partial bounds (not failures)",
            batch.summary.degraded
        );
    }
    let mut lines: Vec<String> = Vec::new();
    for report in &batch.reports {
        let record = match &report.outcome {
            Ok(analysis) => {
                // Per-program records carry only order- and time-invariant
                // fields, so two batch runs over the same inputs produce
                // byte-identical per-program lines regardless of thread
                // count, scheduling, or wall clock.  Timing and the shared
                // cache accounting (including the thread-order-dependent
                // cross- vs intra-program hit split) live in the suite
                // summary record alone.
                let mut record = serde_json::json!({
                    "program": report.name,
                    "ok": true,
                    "bound": format!("{}", analysis.bound),
                    "per_array": analysis.per_array.iter().map(|a| serde_json::json!({
                        "array": a.array,
                        "rho": format!("{}", a.rho),
                        "sigma": format!("{}", a.sigma),
                    })).collect::<Vec<_>>(),
                    "notes": analysis.notes,
                });
                // Degradation fields only when present: default-config output
                // stays byte-identical to earlier releases.
                if analysis.degraded {
                    if let serde_json::Value::Object(fields) = &mut record {
                        fields.push(("degraded".to_string(), serde_json::to_value(&true)));
                        fields.push((
                            "subgraphs_cancelled".to_string(),
                            serde_json::to_value(&analysis.solver.cancelled),
                        ));
                        fields.push((
                            "arrays_deferred".to_string(),
                            serde_json::to_value(&analysis.arrays_deferred),
                        ));
                    }
                }
                record
            }
            Err(e) => serde_json::json!({
                "program": report.name,
                "ok": false,
                "error": format!("{e}"),
            }),
        };
        lines.push(serde_json::to_string(&record).expect("record serializes"));
    }
    let s = &batch.summary;
    // The record layout is defined once by `SuiteSummary`'s Serialize impl
    // (shared with `table2 --suite-json` and the perf snapshot).
    let suite_record = serde_json::json!({ "suite": serde_json::to_value(s) });
    lines.push(serde_json::to_string(&suite_record).expect("summary serializes"));
    let text = lines.join("\n") + "\n";
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {path}: {} programs, {} failures, {} cross-program cache hits",
                s.programs, s.failures, s.cache.cross_program_hits
            );
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            let _ = stdout.write_all(text.as_bytes());
        }
    }
    let flushed = flush_cache(&cache);
    if s.failures > 0 || !flushed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn report(program: &Program, assume_injective: bool, json: bool) -> ExitCode {
    if report_with(program, assume_injective, json, &SolveCache::new()) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Analyze one program through the given (possibly store-backed) cache and
/// print the report.  Returns whether the analysis succeeded.
fn report_with(program: &Program, assume_injective: bool, json: bool, cache: &SolveCache) -> bool {
    let opts = SdgOptions {
        assume_injective,
        ..SdgOptions::default()
    };
    match analyze_program_with_cache(program, &opts, cache) {
        Ok(analysis) => {
            if json {
                let record = serde_json::json!({
                    "program": program.name,
                    "bound": format!("{}", analysis.bound),
                    "per_array": analysis.per_array.iter().map(|a| serde_json::json!({
                        "array": a.array,
                        "rho": format!("{}", a.rho),
                        "sigma": format!("{}", a.sigma),
                        "vertices": format!("{}", a.vertex_count),
                        "subgraph": a.best_subgraph,
                    })).collect::<Vec<_>>(),
                    "notes": analysis.notes,
                });
                println!(
                    "{}",
                    serde_json::to_string_pretty(&record).expect("serializable")
                );
            } else {
                println!("program {}", program.name);
                println!("  I/O lower bound: Q ≥ {}", analysis.bound);
                for a in &analysis.per_array {
                    println!(
                        "  array {:<12} |A| = {:<24} ρ = {:<16} via {{{}}}",
                        a.array,
                        format!("{}", a.vertex_count),
                        format!("{}", a.rho),
                        a.best_subgraph.join(",")
                    );
                }
                if let Some(t) = sota_bound(&program.name) {
                    println!(
                        "  paper / prior:   {}  (source: {})",
                        t.paper_soap_bound, t.source
                    );
                }
                for n in &analysis.notes {
                    println!("  note: {n}");
                }
            }
            true
        }
        Err(e) => {
            eprintln!("analysis failed: {e}");
            false
        }
    }
}

/// `soap-cli cache <stat|list|clear> <dir>`: inspect or empty a
/// disk-persisted canonical-solution store without running any analysis.
fn cache_cmd(args: &[String]) -> ExitCode {
    let (Some(action), Some(dir)) = (args.first(), args.get(1)) else {
        usage();
    };
    if args.len() > 2 {
        usage();
    }
    // `open_existing`: inspection must not create the directory, or a typo'd
    // path would report a convincing empty store instead of an error.
    let store = match SolveStore::open_existing(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open cache store {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match action.as_str() {
        "stat" => store.stat().and_then(|stats| {
            // Quarantined segments from *earlier* loads still sit in the
            // directory (until `clear`); count them alongside this pass's.
            let quarantined_on_disk = store.quarantined_files().map(|f| f.len()).unwrap_or(0);
            println!("store {dir}");
            println!("  format            {}", soap_sdg::STORE_HEADER);
            println!("  segments          {}", stats.segments);
            println!("  segments rejected {}", stats.segments_rejected);
            println!("  records           {}", stats.records);
            println!("  records skipped   {}", stats.records_skipped);
            println!("  distinct entries  {}", stats.entries);
            println!("  bytes             {}", stats.bytes);
            println!("  quarantined       {quarantined_on_disk}");
            for note in &stats.notes {
                println!("  note: {note}");
            }
            // The finished-report family shares the directory but is a
            // separate record type with its own segments and quarantine.
            let reports = store.report_stat()?;
            let report_quarantined = store
                .report_quarantined_files()
                .map(|f| f.len())
                .unwrap_or(0);
            println!("reports (format {})", soap_sdg::REPORT_HEADER);
            println!("  segments          {}", reports.segments);
            println!("  segments rejected {}", reports.segments_rejected);
            println!("  records           {}", reports.records);
            println!("  records skipped   {}", reports.records_skipped);
            println!("  distinct entries  {}", reports.entries);
            println!("  bytes             {}", reports.bytes);
            println!("  quarantined       {report_quarantined}");
            for note in &reports.notes {
                println!("  note: {note}");
            }
            Ok(())
        }),
        "list" => store.segment_files().and_then(|mut files| {
            files.extend(store.report_files()?);
            for path in &files {
                let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                // Records = non-empty lines minus the header line.
                let records = std::fs::read_to_string(path)
                    .map(|t| {
                        t.lines()
                            .filter(|l| !l.is_empty())
                            .count()
                            .saturating_sub(1)
                    })
                    .unwrap_or(0);
                println!(
                    "{:<56} {records:>6} record(s) {bytes:>10} bytes",
                    path.file_name().unwrap_or_default().to_string_lossy()
                );
            }
            if files.is_empty() {
                println!("store {dir}: no segments");
            }
            Ok(())
        }),
        "clear" => store.clear().map(|removed| {
            println!("store {dir}: removed {removed} segment(s)");
        }),
        _ => usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cache {action} {dir} failed: {e}");
            ExitCode::FAILURE
        }
    }
}
