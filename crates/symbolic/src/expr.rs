//! Symbolic expressions.
//!
//! [`Expr`] is a small computer-algebra core tailored to the needs of the
//! SOAP analysis: dominator-set size formulas, computational intensities and
//! final I/O bounds are sums/products of symbols with *rational* exponents
//! (√S, ∛S, …), occasionally wrapped in `max`/`min` for conditional bounds
//! (Section 5.3 of the paper).

use crate::intern::Symbol;
use crate::rational::Rational;
use std::collections::BTreeMap;
use std::fmt;

/// A symbolic expression in canonical (simplified) form.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Expr {
    /// A rational constant.
    Num(Rational),
    /// A named symbol (loop extent, memory size `S`, tile size, …), stored as
    /// a `Copy` interned handle; see [`crate::intern`].
    Sym(Symbol),
    /// A sum of at least two terms.
    Add(Vec<Expr>),
    /// A product of at least two factors.
    Mul(Vec<Expr>),
    /// A base raised to a rational power.
    Pow(Box<Expr>, Rational),
    /// The pointwise maximum of its arguments.
    Max(Vec<Expr>),
    /// The pointwise minimum of its arguments.
    Min(Vec<Expr>),
}

impl Expr {
    /// The constant 0.
    pub fn zero() -> Expr {
        Expr::Num(Rational::ZERO)
    }

    /// The constant 1.
    pub fn one() -> Expr {
        Expr::Num(Rational::ONE)
    }

    /// An integer constant.
    pub fn int(n: i64) -> Expr {
        Expr::Num(Rational::int(n as i128))
    }

    /// A rational constant.
    pub fn num(r: Rational) -> Expr {
        Expr::Num(r)
    }

    /// A symbol (interned; accepts both `&str` and `String`).
    pub fn sym(name: impl AsRef<str>) -> Expr {
        Expr::Sym(Symbol::intern(name.as_ref()))
    }

    /// Sum of an iterator of expressions (simplified).
    pub fn sum<I: IntoIterator<Item = Expr>>(items: I) -> Expr {
        let mut acc = Expr::zero();
        for it in items {
            acc = acc.add(it);
        }
        acc
    }

    /// Product of an iterator of expressions (simplified).
    pub fn product<I: IntoIterator<Item = Expr>>(items: I) -> Expr {
        let mut acc = Expr::one();
        for it in items {
            acc = acc.mul(it);
        }
        acc
    }

    /// True if this expression is the constant zero.
    pub fn is_zero(&self) -> bool {
        matches!(self, Expr::Num(r) if r.is_zero())
    }

    /// True if this expression is the constant one.
    pub fn is_one(&self) -> bool {
        matches!(self, Expr::Num(r) if r.is_one())
    }

    /// Return the constant value if the expression is a number.
    pub fn as_num(&self) -> Option<Rational> {
        match self {
            Expr::Num(r) => Some(*r),
            _ => None,
        }
    }

    /// Addition with simplification.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        simplify_add(vec![self, rhs])
    }

    /// Subtraction with simplification.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        self.add(rhs.neg())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Expr {
        Expr::int(-1).mul(self)
    }

    /// Multiplication with simplification.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        simplify_mul(vec![self, rhs])
    }

    /// Division with simplification.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        self.mul(rhs.pow(Rational::int(-1)))
    }

    /// Raise to a rational power, with simplification.
    pub fn pow(self, e: Rational) -> Expr {
        if e.is_zero() {
            return Expr::one();
        }
        if e.is_one() {
            return self;
        }
        match self {
            Expr::Num(r) => {
                if e.is_integer() {
                    Expr::Num(r.pow_i(e.numer() as i64))
                } else if r.is_one() {
                    Expr::one()
                } else if r.is_zero() && e.is_positive() {
                    Expr::zero()
                } else {
                    Expr::Pow(Box::new(Expr::Num(r)), e)
                }
            }
            Expr::Pow(base, e0) => base.pow(e0 * e),
            Expr::Mul(factors) => Expr::product(factors.into_iter().map(|f| f.pow(e))),
            other => Expr::Pow(Box::new(other), e),
        }
    }

    /// Square root.
    pub fn sqrt(self) -> Expr {
        self.pow(Rational::new(1, 2))
    }

    /// Pointwise maximum of two expressions.
    pub fn max(self, rhs: Expr) -> Expr {
        if self == rhs {
            return self;
        }
        if let (Some(a), Some(b)) = (self.as_num(), rhs.as_num()) {
            return Expr::Num(a.max(b));
        }
        let mut items = Vec::new();
        for e in [self, rhs] {
            match e {
                Expr::Max(v) => items.extend(v),
                other => items.push(other),
            }
        }
        items.sort();
        items.dedup();
        if items.len() == 1 {
            // lint:allow(unwrap-expect): the length check above guarantees a last element
            items.pop().unwrap()
        } else {
            Expr::Max(items)
        }
    }

    /// Pointwise minimum of two expressions.
    pub fn min(self, rhs: Expr) -> Expr {
        if self == rhs {
            return self;
        }
        if let (Some(a), Some(b)) = (self.as_num(), rhs.as_num()) {
            return Expr::Num(a.min(b));
        }
        let mut items = Vec::new();
        for e in [self, rhs] {
            match e {
                Expr::Min(v) => items.extend(v),
                other => items.push(other),
            }
        }
        items.sort();
        items.dedup();
        if items.len() == 1 {
            // lint:allow(unwrap-expect): the length check above guarantees a last element
            items.pop().unwrap()
        } else {
            Expr::Min(items)
        }
    }

    /// Evaluate numerically under the given symbol bindings.
    ///
    /// Returns `None` if a symbol is unbound or a negative base is raised to a
    /// fractional power.
    pub fn eval(&self, bindings: &BTreeMap<String, f64>) -> Option<f64> {
        match self {
            Expr::Num(r) => Some(r.to_f64()),
            Expr::Sym(s) => bindings.get(s.as_str()).copied(),
            Expr::Add(items) => {
                let mut acc = 0.0;
                for it in items {
                    acc += it.eval(bindings)?;
                }
                Some(acc)
            }
            Expr::Mul(items) => {
                let mut acc = 1.0;
                for it in items {
                    acc *= it.eval(bindings)?;
                }
                Some(acc)
            }
            Expr::Pow(base, e) => {
                let b = base.eval(bindings)?;
                let ef = e.to_f64();
                if b < 0.0 && !e.is_integer() {
                    return None;
                }
                Some(b.powf(ef))
            }
            Expr::Max(items) => {
                let mut acc = f64::NEG_INFINITY;
                for it in items {
                    acc = acc.max(it.eval(bindings)?);
                }
                Some(acc)
            }
            Expr::Min(items) => {
                let mut acc = f64::INFINITY;
                for it in items {
                    acc = acc.min(it.eval(bindings)?);
                }
                Some(acc)
            }
        }
    }

    /// Evaluate numerically with a single symbol binding, without building a
    /// `BTreeMap` — the hot shape for intensity evaluation `ρ(S)` where `S` is
    /// the only free symbol.
    ///
    /// Same `None` semantics as [`Expr::eval`]: unbound symbols (anything
    /// other than `sym`) and fractional powers of negative bases fail.
    pub fn eval_single(&self, sym: &str, value: f64) -> Option<f64> {
        self.eval_single_symbol(Symbol::intern(sym), value)
    }

    fn eval_single_symbol(&self, sym: Symbol, value: f64) -> Option<f64> {
        match self {
            Expr::Num(r) => Some(r.to_f64()),
            Expr::Sym(s) => (*s == sym).then_some(value),
            Expr::Add(items) => {
                let mut acc = 0.0;
                for it in items {
                    acc += it.eval_single_symbol(sym, value)?;
                }
                Some(acc)
            }
            Expr::Mul(items) => {
                let mut acc = 1.0;
                for it in items {
                    acc *= it.eval_single_symbol(sym, value)?;
                }
                Some(acc)
            }
            Expr::Pow(base, e) => {
                let b = base.eval_single_symbol(sym, value)?;
                if b < 0.0 && !e.is_integer() {
                    return None;
                }
                Some(b.powf(e.to_f64()))
            }
            Expr::Max(items) => {
                let mut acc = f64::NEG_INFINITY;
                for it in items {
                    acc = acc.max(it.eval_single_symbol(sym, value)?);
                }
                Some(acc)
            }
            Expr::Min(items) => {
                let mut acc = f64::INFINITY;
                for it in items {
                    acc = acc.min(it.eval_single_symbol(sym, value)?);
                }
                Some(acc)
            }
        }
    }

    /// Substitute `sym := value` and re-simplify.
    pub fn subs(&self, sym: &str, value: &Expr) -> Expr {
        self.subs_symbol(Symbol::intern(sym), value)
    }

    fn subs_symbol(&self, sym: Symbol, value: &Expr) -> Expr {
        match self {
            Expr::Num(_) => self.clone(),
            Expr::Sym(s) => {
                if *s == sym {
                    value.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Add(items) => Expr::sum(items.iter().map(|i| i.subs_symbol(sym, value))),
            Expr::Mul(items) => Expr::product(items.iter().map(|i| i.subs_symbol(sym, value))),
            Expr::Pow(base, e) => base.subs_symbol(sym, value).pow(*e),
            Expr::Max(items) => {
                let mut it = items.iter().map(|i| i.subs_symbol(sym, value));
                // lint:allow(unwrap-expect): Max nodes are constructed with two or more items
                let first = it.next().expect("Max has at least two items");
                it.fold(first, |a, b| a.max(b))
            }
            Expr::Min(items) => {
                let mut it = items.iter().map(|i| i.subs_symbol(sym, value));
                // lint:allow(unwrap-expect): Min nodes are constructed with two or more items
                let first = it.next().expect("Min has at least two items");
                it.fold(first, |a, b| a.min(b))
            }
        }
    }

    /// Partial derivative with respect to `sym`.
    ///
    /// `Max`/`Min` are not differentiable; callers must eliminate them first
    /// (the analysis branches over conditional cases before optimizing).
    pub fn diff(&self, sym: &str) -> Expr {
        self.diff_symbol(Symbol::intern(sym))
    }

    fn diff_symbol(&self, sym: Symbol) -> Expr {
        match self {
            Expr::Num(_) => Expr::zero(),
            Expr::Sym(s) => {
                if *s == sym {
                    Expr::one()
                } else {
                    Expr::zero()
                }
            }
            Expr::Add(items) => Expr::sum(items.iter().map(|i| i.diff_symbol(sym))),
            Expr::Mul(items) => {
                // Product rule over n factors.
                let mut out = Expr::zero();
                for (i, fi) in items.iter().enumerate() {
                    let mut term = fi.diff_symbol(sym);
                    for (j, fj) in items.iter().enumerate() {
                        if i != j {
                            term = term.mul(fj.clone());
                        }
                    }
                    out = out.add(term);
                }
                out
            }
            Expr::Pow(base, e) => {
                // d/dx b^e = e * b^(e-1) * b'
                let b_prime = base.diff_symbol(sym);
                Expr::num(*e)
                    .mul(base.clone().pow(*e - Rational::ONE))
                    .mul(b_prime)
            }
            Expr::Max(_) | Expr::Min(_) => {
                panic!("cannot differentiate Max/Min expressions; resolve conditional cases first")
            }
        }
    }

    /// Distribute products over sums and re-simplify, producing a flat sum of
    /// monomial-like terms.
    ///
    /// Expansion collects like terms exactly (rational arithmetic), which
    /// eliminates the catastrophic cancellation that the factored Lemma-3
    /// expressions `2·∏E − ∏(E − t̂)` would otherwise suffer when evaluated in
    /// floating point at large tile extents.  `Max`/`Min` nodes are treated as
    /// atomic factors.
    pub fn expand(&self) -> Expr {
        match self {
            Expr::Num(_) | Expr::Sym(_) => self.clone(),
            Expr::Add(items) => Expr::sum(items.iter().map(|i| i.expand())),
            Expr::Pow(base, e) => {
                // Expand integer powers of sums by repeated distribution.
                let b = base.expand();
                if e.is_integer() && e.is_positive() && matches!(b, Expr::Add(_)) {
                    let n = e.numer() as usize;
                    distribute(std::iter::repeat_n(b, n))
                } else {
                    b.pow(*e)
                }
            }
            Expr::Mul(items) => distribute(items.iter().map(|i| i.expand())),
            Expr::Max(items) => {
                let mut it = items.iter().map(|i| i.expand());
                // lint:allow(unwrap-expect): Max nodes are constructed with two or more items
                let first = it.next().expect("Max has at least two items");
                it.fold(first, |a, b| a.max(b))
            }
            Expr::Min(items) => {
                let mut it = items.iter().map(|i| i.expand());
                // lint:allow(unwrap-expect): Min nodes are constructed with two or more items
                let first = it.next().expect("Min has at least two items");
                it.fold(first, |a, b| a.min(b))
            }
        }
    }

    /// Collect the set of free symbols.
    pub fn symbols(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_symbols(&self, out: &mut Vec<String>) {
        match self {
            Expr::Num(_) => {}
            Expr::Sym(s) => out.push(s.as_str().to_string()),
            Expr::Add(items) | Expr::Mul(items) | Expr::Max(items) | Expr::Min(items) => {
                for i in items {
                    i.collect_symbols(out);
                }
            }
            Expr::Pow(base, _) => base.collect_symbols(out),
        }
    }

    /// Split into `(coefficient, non-constant factors)` — useful for collecting
    /// like terms and for leading-term extraction.
    fn split_coeff(&self) -> (Rational, Vec<Expr>) {
        match self {
            Expr::Num(r) => (*r, vec![]),
            Expr::Mul(items) => {
                let mut coeff = Rational::ONE;
                let mut rest = Vec::new();
                for it in items {
                    match it {
                        Expr::Num(r) => coeff *= *r,
                        other => rest.push(other.clone()),
                    }
                }
                (coeff, rest)
            }
            other => (Rational::ONE, vec![other.clone()]),
        }
    }

    /// Owning variant of [`Expr::split_coeff`]: consumes the expression so the
    /// simplifier's like-term collection never clones subterms.
    fn into_coeff(self) -> (Rational, Vec<Expr>) {
        match self {
            Expr::Num(r) => (r, Vec::new()),
            Expr::Mul(items) => {
                let mut coeff = Rational::ONE;
                let mut rest = Vec::with_capacity(items.len());
                for it in items {
                    match it {
                        Expr::Num(r) => coeff *= r,
                        other => rest.push(other),
                    }
                }
                (coeff, rest)
            }
            other => (Rational::ONE, vec![other]),
        }
    }

    /// Total degree of the expression treating every symbol in `size_syms` as
    /// degree 1 and everything else as degree 0.  For sums, the maximum over
    /// terms; used for leading-order extraction.
    pub fn degree_in(&self, size_syms: &[String]) -> Rational {
        match self {
            Expr::Num(_) => Rational::ZERO,
            Expr::Sym(s) => {
                if size_syms.iter().any(|x| x == s.as_str()) {
                    Rational::ONE
                } else {
                    Rational::ZERO
                }
            }
            Expr::Add(items) | Expr::Max(items) | Expr::Min(items) => items
                .iter()
                .map(|i| i.degree_in(size_syms))
                .max()
                .unwrap_or(Rational::ZERO),
            Expr::Mul(items) => items
                .iter()
                .map(|i| i.degree_in(size_syms))
                .fold(Rational::ZERO, |a, b| a + b),
            Expr::Pow(base, e) => base.degree_in(size_syms) * *e,
        }
    }

    /// Keep only the terms of maximal total degree in `size_syms` (the leading
    /// order as all listed symbols go to infinity at the same rate).
    pub fn leading_term(&self, size_syms: &[String]) -> Expr {
        match self {
            Expr::Add(items) => {
                let degrees: Vec<Rational> = items.iter().map(|i| i.degree_in(size_syms)).collect();
                let max_deg = degrees.iter().cloned().max().unwrap_or(Rational::ZERO);
                Expr::sum(
                    items
                        .iter()
                        .zip(degrees)
                        .filter(|(_, d)| *d == max_deg)
                        .map(|(i, _)| i.clone()),
                )
            }
            other => other.clone(),
        }
    }
}

/// Distribute a product of (already expanded) factors over their sums,
/// producing a flat sum of term-by-term products.  Individual addends are not
/// sums themselves, so the term-level multiplications cannot re-create a
/// power of a sum and recursion terminates.
fn distribute<I: IntoIterator<Item = Expr>>(factors: I) -> Expr {
    let mut acc: Vec<Expr> = vec![Expr::one()];
    for factor in factors {
        let addends: Vec<Expr> = match factor {
            Expr::Add(terms) => terms,
            other => vec![other],
        };
        let mut next = Vec::with_capacity(acc.len() * addends.len());
        for a in &acc {
            for b in &addends {
                next.push(a.clone().mul(b.clone()));
            }
        }
        acc = next;
    }
    Expr::sum(acc)
}

/// Flatten and simplify a sum: fold constants and collect like terms.
///
/// Like terms are merged by sorting `(non-constant factors, coefficient)`
/// pairs and folding adjacent equals — the same canonical result as the
/// seed's `BTreeMap` collection without allocating tree nodes per term.
fn simplify_add(items: Vec<Expr>) -> Expr {
    let mut flat = Vec::with_capacity(items.len());
    for it in items {
        match it {
            Expr::Add(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    let mut constant = Rational::ZERO;
    let mut terms: Vec<(Vec<Expr>, Rational)> = Vec::with_capacity(flat.len());
    for it in flat {
        let (coeff, rest) = it.into_coeff();
        if rest.is_empty() {
            constant += coeff;
        } else {
            terms.push((rest, coeff));
        }
    }
    terms.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out: Vec<Expr> = Vec::with_capacity(terms.len() + 1);
    let mut terms = terms.into_iter();
    if let Some((mut rest, mut coeff)) = terms.next() {
        for (r, c) in terms {
            if r == rest {
                coeff += c;
            } else {
                push_collected_term(&mut out, std::mem::replace(&mut rest, r), coeff);
                coeff = c;
            }
        }
        push_collected_term(&mut out, rest, coeff);
    }
    if !constant.is_zero() {
        out.push(Expr::Num(constant));
    }
    match out.len() {
        0 => Expr::zero(),
        // lint:allow(unwrap-expect): this match arm only fires when exactly one element remains
        1 => out.pop().unwrap(),
        _ => {
            out.sort();
            Expr::Add(out)
        }
    }
}

/// Rebuild one collected term `coeff · ∏rest` and append it unless it
/// cancelled to zero.
fn push_collected_term(out: &mut Vec<Expr>, rest: Vec<Expr>, coeff: Rational) {
    if coeff.is_zero() {
        return;
    }
    let body = if rest.len() == 1 {
        // lint:allow(unwrap-expect): the branch above ensures a single factor remains
        rest.into_iter().next().expect("one factor")
    } else {
        Expr::Mul(rest)
    };
    if coeff.is_one() {
        out.push(body);
    } else {
        out.push(simplify_mul(vec![Expr::Num(coeff), body]));
    }
}

/// Flatten and simplify a product: fold constants and combine equal bases.
///
/// Equal bases are merged by sorting `(base, exponent)` pairs and folding
/// adjacent equals, mirroring [`simplify_add`]'s allocation-light collection.
fn simplify_mul(items: Vec<Expr>) -> Expr {
    let mut flat = Vec::with_capacity(items.len());
    for it in items {
        match it {
            Expr::Mul(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    let mut coeff = Rational::ONE;
    let mut powers: Vec<(Expr, Rational)> = Vec::with_capacity(flat.len());
    for it in flat {
        match it {
            Expr::Num(r) => {
                if r.is_zero() {
                    return Expr::zero();
                }
                coeff *= r;
            }
            Expr::Pow(base, e) => powers.push((*base, e)),
            other => powers.push((other, Rational::ONE)),
        }
    }
    powers.sort_by(|a, b| a.0.cmp(&b.0));
    let mut others: Vec<Expr> = Vec::with_capacity(powers.len());
    let mut powers = powers.into_iter();
    if let Some((mut base, mut e)) = powers.next() {
        for (b, e2) in powers {
            if b == base {
                e += e2;
            } else {
                apply_collected_power(&mut others, &mut coeff, std::mem::replace(&mut base, b), e);
                e = e2;
            }
        }
        apply_collected_power(&mut others, &mut coeff, base, e);
    }
    if coeff.is_zero() {
        return Expr::zero();
    }
    let mut out = Vec::with_capacity(others.len() + 1);
    if !coeff.is_one() {
        out.push(Expr::Num(coeff));
    }
    others.sort();
    out.extend(others);
    match out.len() {
        0 => Expr::one(),
        // lint:allow(unwrap-expect): this match arm only fires when exactly one element remains
        1 => out.pop().unwrap(),
        _ => Expr::Mul(out),
    }
}

/// Apply one collected `base^exponent`, folding numeric results into `coeff`.
fn apply_collected_power(others: &mut Vec<Expr>, coeff: &mut Rational, base: Expr, e: Rational) {
    if e.is_zero() {
        return;
    }
    match base.pow(e) {
        Expr::Num(r) => *coeff *= r,
        other => others.push(other),
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn needs_parens_in_product(e: &Expr) -> bool {
            matches!(e, Expr::Add(_))
        }
        match self {
            Expr::Num(r) => write!(f, "{}", r),
            Expr::Sym(s) => write!(f, "{}", s),
            Expr::Add(items) => {
                // Print non-constant terms first and the constant last
                // ("N - 1" rather than "-1 + N"); the canonical internal order
                // sorts numbers first, which reads poorly.
                let (consts, mut ordered): (Vec<&Expr>, Vec<&Expr>) =
                    items.iter().partition(|e| matches!(e, Expr::Num(_)));
                ordered.extend(consts);
                let mut first = true;
                for it in ordered {
                    let (coeff, _) = it.split_coeff();
                    if first {
                        write!(f, "{}", it)?;
                        first = false;
                    } else if coeff.is_negative() {
                        // Render "+ -x" as "- x" by negating the term.
                        write!(f, " - {}", it.clone().neg())?;
                    } else {
                        write!(f, " + {}", it)?;
                    }
                }
                Ok(())
            }
            Expr::Mul(items) => {
                // Separate negative-exponent factors into a denominator.
                let mut num_parts: Vec<String> = Vec::new();
                let mut den_parts: Vec<String> = Vec::new();
                for it in items {
                    match it {
                        Expr::Pow(base, e) if e.is_negative() => {
                            let inv = base.clone().pow(-*e);
                            if needs_parens_in_product(&inv) {
                                den_parts.push(format!("({})", inv));
                            } else {
                                den_parts.push(format!("{}", inv));
                            }
                        }
                        other => {
                            if needs_parens_in_product(other) {
                                num_parts.push(format!("({})", other));
                            } else {
                                num_parts.push(format!("{}", other));
                            }
                        }
                    }
                }
                let num = if num_parts.is_empty() {
                    "1".to_string()
                } else {
                    num_parts.join("*")
                };
                if den_parts.is_empty() {
                    write!(f, "{}", num)
                } else if den_parts.len() == 1 {
                    write!(f, "{}/{}", num, den_parts[0])
                } else {
                    write!(f, "{}/({})", num, den_parts.join("*"))
                }
            }
            Expr::Pow(base, e) => {
                let b = if matches!(**base, Expr::Add(_) | Expr::Mul(_) | Expr::Pow(_, _)) {
                    format!("({})", base)
                } else {
                    format!("{}", base)
                };
                if *e == Rational::new(1, 2) {
                    write!(f, "sqrt({})", base)
                } else if *e == Rational::new(-1, 2) {
                    write!(f, "1/sqrt({})", base)
                } else if e.is_integer() {
                    write!(f, "{}^{}", b, e.numer())
                } else {
                    write!(f, "{}^({})", b, e)
                }
            }
            Expr::Max(items) => {
                let parts: Vec<String> = items.iter().map(|i| format!("{}", i)).collect();
                write!(f, "max({})", parts.join(", "))
            }
            Expr::Min(items) => {
                let parts: Vec<String> = items.iter().map(|i| format!("{}", i)).collect();
                write!(f, "min({})", parts.join(", "))
            }
        }
    }
}

// The wire format matches what `#[derive(Serialize, Deserialize)]` produced
// for the seed's `Expr` (externally tagged variants, `Sym` carrying its name
// as a plain string): `{"Sym":"N"}`, `{"Add":[…]}`, `{"Pow":[…, {…}]}`.
// Symbols are resolved through the interner on the way out and re-interned on
// the way in, so interning is invisible on the wire.
impl serde::Serialize for Expr {
    fn to_value(&self) -> serde::Value {
        let (tag, payload) = match self {
            Expr::Num(r) => ("Num", r.to_value()),
            Expr::Sym(s) => ("Sym", serde::Value::Str(s.as_str().to_string())),
            Expr::Add(items) => ("Add", items.to_value()),
            Expr::Mul(items) => ("Mul", items.to_value()),
            Expr::Pow(base, e) => (
                "Pow",
                serde::Value::Array(vec![base.to_value(), e.to_value()]),
            ),
            Expr::Max(items) => ("Max", items.to_value()),
            Expr::Min(items) => ("Min", items.to_value()),
        };
        serde::Value::Object(vec![(tag.to_string(), payload)])
    }
}

impl serde::Deserialize for Expr {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let serde::Value::Object(fields) = v else {
            return Err(serde::DeError::msg("Expr: expected a single-key object"));
        };
        let [(tag, payload)] = fields.as_slice() else {
            return Err(serde::DeError::msg(
                "Expr: expected exactly one variant tag",
            ));
        };
        match tag.as_str() {
            "Num" => Rational::from_value(payload).map(Expr::Num),
            "Sym" => payload
                .as_str()
                .map(|s| Expr::Sym(Symbol::intern(s)))
                .ok_or_else(|| serde::DeError::msg("Expr::Sym: expected a string name")),
            "Add" => Vec::from_value(payload).map(Expr::Add),
            "Mul" => Vec::from_value(payload).map(Expr::Mul),
            "Max" => Vec::from_value(payload).map(Expr::Max),
            "Min" => Vec::from_value(payload).map(Expr::Min),
            "Pow" => {
                let items = payload
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| serde::DeError::msg("Expr::Pow: expected [base, exponent]"))?;
                Ok(Expr::Pow(
                    Box::new(Expr::from_value(&items[0])?),
                    Rational::from_value(&items[1])?,
                ))
            }
            other => Err(serde::DeError::msg(format!(
                "Expr: unknown variant '{other}'"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n() -> Expr {
        Expr::sym("N")
    }
    fn s() -> Expr {
        Expr::sym("S")
    }

    #[test]
    fn constant_folding() {
        assert_eq!(Expr::int(2).add(Expr::int(3)), Expr::int(5));
        assert_eq!(Expr::int(2).mul(Expr::int(3)), Expr::int(6));
        assert_eq!(Expr::int(2).pow(Rational::int(10)), Expr::int(1024));
        assert!(Expr::int(5).sub(Expr::int(5)).is_zero());
    }

    #[test]
    fn like_terms_collect() {
        let e = n().add(n()).add(n());
        assert_eq!(e, Expr::int(3).mul(n()));
        let e2 = n().mul(Expr::int(2)).sub(n().mul(Expr::int(2)));
        assert!(e2.is_zero());
    }

    #[test]
    fn powers_combine() {
        let e = n().mul(n());
        assert_eq!(e, n().pow(Rational::int(2)));
        let e2 = n()
            .pow(Rational::new(1, 2))
            .mul(n().pow(Rational::new(1, 2)));
        assert_eq!(e2, n());
        let e3 = n().div(n());
        assert!(e3.is_one());
    }

    #[test]
    fn display_is_readable() {
        // 2*N^3 / sqrt(S)
        let bound = Expr::int(2).mul(n().pow(Rational::int(3))).div(s().sqrt());
        assert_eq!(format!("{}", bound), "2*N^3/sqrt(S)");
        let diff = n().sub(Expr::one());
        assert_eq!(format!("{}", diff), "N - 1");
    }

    #[test]
    fn eval_matches_structure() {
        let mut b = BTreeMap::new();
        b.insert("N".to_string(), 10.0);
        b.insert("S".to_string(), 4.0);
        let bound = Expr::int(2).mul(n().pow(Rational::int(3))).div(s().sqrt());
        assert!((bound.eval(&b).unwrap() - 1000.0).abs() < 1e-9);
        assert_eq!(Expr::sym("unbound").eval(&b), None);
    }

    #[test]
    fn eval_single_matches_map_eval() {
        let rho = Expr::num(Rational::new(1, 2)).mul(s().sqrt());
        let mut b = BTreeMap::new();
        b.insert("S".to_string(), 10000.0);
        assert_eq!(rho.eval_single("S", 10000.0), rho.eval(&b));
        assert_eq!(rho.eval_single("S", 10000.0), Some(50.0));
        // Unbound symbols still fail.
        assert_eq!(n().mul(s()).eval_single("S", 4.0), None);
        // Max/Min evaluate.
        assert_eq!(s().max(Expr::int(7)).eval_single("S", 3.0), Some(7.0));
    }

    #[test]
    fn differentiation_of_products_and_powers() {
        // d/dN (N^2 * S) = 2 N S
        let e = n().pow(Rational::int(2)).mul(s());
        let d = e.diff("N");
        assert_eq!(d, Expr::int(2).mul(n()).mul(s()));
        // d/dN sqrt(N) = 1/2 * N^(-1/2)
        let d2 = n().sqrt().diff("N");
        let expected = Expr::num(Rational::new(1, 2)).mul(n().pow(Rational::new(-1, 2)));
        assert_eq!(d2, expected);
    }

    #[test]
    fn substitution() {
        let e = n().pow(Rational::int(2)).add(s());
        let sub = e.subs("N", &Expr::int(3));
        assert_eq!(sub, Expr::int(9).add(s()));
    }

    #[test]
    fn leading_term_extraction() {
        // N^2 + 3N + S  with size symbol N -> N^2
        let e = n()
            .pow(Rational::int(2))
            .add(Expr::int(3).mul(n()))
            .add(s());
        let lead = e.leading_term(&["N".to_string()]);
        assert_eq!(lead, n().pow(Rational::int(2)));
    }

    #[test]
    fn expansion_cancels_exactly() {
        // N*M - (N-2)*(M-1)  =  N + 2*M - 2
        let g = n()
            .mul(Expr::sym("M"))
            .sub(n().sub(Expr::int(2)).mul(Expr::sym("M").sub(Expr::one())));
        let expanded = g.expand();
        let expected = n().add(Expr::int(2).mul(Expr::sym("M"))).sub(Expr::int(2));
        assert_eq!(expanded, expected);
        // (N+1)^3 expands to N^3 + 3N^2 + 3N + 1.
        let cube = n().add(Expr::one()).pow(Rational::int(3)).expand();
        let mut b = BTreeMap::new();
        b.insert("N".to_string(), 5.0);
        assert_eq!(cube.eval(&b).unwrap(), 216.0);
        assert!(matches!(cube, Expr::Add(ref v) if v.len() == 4));
    }

    #[test]
    fn expansion_keeps_max_atomic() {
        let e = n().max(s()).mul(n().add(Expr::one())).expand();
        // max(N,S)*N + max(N,S): two terms, Max preserved as a factor.
        let mut b = BTreeMap::new();
        b.insert("N".to_string(), 3.0);
        b.insert("S".to_string(), 10.0);
        assert_eq!(e.eval(&b).unwrap(), 40.0);
    }

    #[test]
    fn max_min_fold_constants_and_dedup() {
        assert_eq!(Expr::int(3).max(Expr::int(5)), Expr::int(5));
        assert_eq!(n().max(n()), n());
        let m = n().max(s());
        assert!(matches!(m, Expr::Max(ref v) if v.len() == 2));
        assert_eq!(Expr::int(3).min(Expr::int(5)), Expr::int(3));
    }

    #[test]
    fn symbols_are_collected() {
        let e = n().mul(s()).add(Expr::sym("M"));
        assert_eq!(
            e.symbols(),
            vec!["M".to_string(), "N".to_string(), "S".to_string()]
        );
    }
}
