//! A small exact-rational linear-programming solver (dense simplex).
//!
//! The SOAP analysis needs one LP per statement: the *access-exponent LP*.
//! Writing `|Dₜ| = X^{xₜ}`, the dominator-set constraint `Σⱼ ∏_{t∈Ψⱼ}|Dₜ| ≤ X`
//! becomes (to leading order) `∀j: Σ_{t∈Ψⱼ} xₜ ≤ 1`, and the maximal
//! subcomputation exponent is `σ = max Σₜ xₜ`.  The LP has at most a handful
//! of variables (loop depth ≤ 7 for the evaluated kernels) so a dense
//! tableau simplex with Bland's rule over exact rationals is both simple and
//! exact — no floating-point tolerance can perturb σ.

use crate::rational::Rational;

/// A linear program `maximize c·x  s.t.  A·x ≤ b, x ≥ 0`.
#[derive(Clone, Debug)]
pub struct LinearProgram {
    /// Objective coefficients (length = number of variables).
    pub objective: Vec<Rational>,
    /// Constraint matrix rows.
    pub constraints: Vec<Vec<Rational>>,
    /// Right-hand sides (must be non-negative; the origin must be feasible).
    pub rhs: Vec<Rational>,
}

/// The result of solving a [`LinearProgram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LpSolution {
    /// The optimal objective value.
    pub value: Rational,
    /// The optimal assignment of the original variables.
    pub assignment: Vec<Rational>,
}

/// Errors produced by the simplex solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// The LP is unbounded above.
    Unbounded,
    /// A right-hand side was negative (the solver requires origin feasibility).
    InfeasibleOrigin,
    /// Mismatched dimensions between objective, constraints and rhs.
    DimensionMismatch,
}

impl LinearProgram {
    /// Construct an LP; no validation is performed until [`Self::solve`].
    pub fn new(
        objective: Vec<Rational>,
        constraints: Vec<Vec<Rational>>,
        rhs: Vec<Rational>,
    ) -> Self {
        LinearProgram {
            objective,
            constraints,
            rhs,
        }
    }

    /// Solve with the primal simplex method (Bland's anti-cycling rule).
    #[allow(clippy::needless_range_loop)] // simplex tableau reads clearest with explicit indices
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        let n = self.objective.len();
        let m = self.constraints.len();
        if self.rhs.len() != m || self.constraints.iter().any(|r| r.len() != n) {
            return Err(LpError::DimensionMismatch);
        }
        if self.rhs.iter().any(|b| b.is_negative()) {
            return Err(LpError::InfeasibleOrigin);
        }
        // Tableau: m constraint rows + 1 objective row; n structural + m slack
        // columns + 1 rhs column.
        let cols = n + m + 1;
        let mut t = vec![vec![Rational::ZERO; cols]; m + 1];
        for i in 0..m {
            for j in 0..n {
                t[i][j] = self.constraints[i][j];
            }
            t[i][n + i] = Rational::ONE;
            t[i][cols - 1] = self.rhs[i];
        }
        for j in 0..n {
            t[m][j] = -self.objective[j];
        }
        let mut basis: Vec<usize> = (n..n + m).collect();

        loop {
            // Entering variable: smallest index with a negative reduced cost.
            let mut entering = None;
            for (j, cost) in t[m].iter().enumerate().take(cols - 1) {
                if cost.is_negative() {
                    entering = Some(j);
                    break;
                }
            }
            let Some(e) = entering else { break };
            // Leaving row: minimum ratio test, ties broken by smallest basis
            // variable index (Bland).
            let mut leaving: Option<(usize, Rational)> = None;
            for (i, row) in t.iter().enumerate().take(m) {
                if row[e].is_positive() {
                    let ratio = row[cols - 1] / row[e];
                    match &leaving {
                        None => leaving = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < *lr || (ratio == *lr && basis[i] < basis[*li]) {
                                leaving = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((l, _)) = leaving else {
                return Err(LpError::Unbounded);
            };
            // Pivot on (l, e).
            let pivot = t[l][e];
            for v in t[l].iter_mut() {
                *v /= pivot;
            }
            for i in 0..=m {
                if i != l && !t[i][e].is_zero() {
                    let factor = t[i][e];
                    for j in 0..cols {
                        let delta = factor * t[l][j];
                        t[i][j] -= delta;
                    }
                }
            }
            basis[l] = e;
        }

        let mut assignment = vec![Rational::ZERO; n];
        for (i, &bv) in basis.iter().enumerate() {
            if bv < n {
                assignment[bv] = t[i][cols - 1];
            }
        }
        Ok(LpSolution {
            value: t[m][cols - 1],
            assignment,
        })
    }
}

/// Solve the access-exponent LP directly from access index sets.
///
/// `num_vars` is the loop-nest depth ℓ; each entry of `access_index_sets`
/// lists the iteration-variable indices `Ψⱼ` used by one array access.  The
/// returned solution maximizes `Σ xₜ` subject to `Σ_{t∈Ψⱼ} xₜ ≤ 1` and
/// `0 ≤ xₜ ≤ 1`; its value is the exponent σ of `χ(X) ~ X^σ`.
pub fn access_exponent_lp(num_vars: usize, access_index_sets: &[Vec<usize>]) -> LpSolution {
    let objective = vec![Rational::ONE; num_vars];
    let mut constraints = Vec::new();
    let mut rhs = Vec::new();
    for set in access_index_sets {
        let mut row = vec![Rational::ZERO; num_vars];
        for &i in set {
            row[i] = Rational::ONE;
        }
        constraints.push(row);
        rhs.push(Rational::ONE);
    }
    // Each variable individually bounded by 1 (a subcomputation never needs a
    // tile extent beyond X in any single dimension, and this keeps the LP
    // bounded when a variable appears in no access).
    for i in 0..num_vars {
        let mut row = vec![Rational::ZERO; num_vars];
        row[i] = Rational::ONE;
        constraints.push(row);
        rhs.push(Rational::ONE);
    }
    LinearProgram::new(objective, constraints, rhs)
        .solve()
        // lint:allow(unwrap-expect): the exponent LP is constructed feasible and bounded; infeasibility is a construction bug
        .expect("exponent LP is feasible and bounded by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn simple_two_variable_lp() {
        // max x + y  s.t. x ≤ 3, y ≤ 4, x + y ≤ 5
        let lp = LinearProgram::new(
            vec![r(1, 1), r(1, 1)],
            vec![
                vec![r(1, 1), r(0, 1)],
                vec![r(0, 1), r(1, 1)],
                vec![r(1, 1), r(1, 1)],
            ],
            vec![r(3, 1), r(4, 1), r(5, 1)],
        );
        let sol = lp.solve().unwrap();
        assert_eq!(sol.value, r(5, 1));
    }

    #[test]
    fn detects_unbounded() {
        // max x with no constraints on x.
        let lp = LinearProgram::new(vec![r(1, 1)], vec![], vec![]);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn mmm_exponent_is_three_halves() {
        // Accesses of C[i,j] += A[i,k]*B[k,j]:  {i,k}, {k,j}, {i,j}
        let sol = access_exponent_lp(3, &[vec![0, 2], vec![2, 1], vec![0, 1]]);
        assert_eq!(sol.value, r(3, 2));
        assert_eq!(sol.assignment, vec![r(1, 2), r(1, 2), r(1, 2)]);
    }

    #[test]
    fn mvt_exponent_is_one() {
        // x[i] += A[i,j]*y[j]: accesses {i,j}, {j}, {i}
        let sol = access_exponent_lp(2, &[vec![0, 1], vec![1], vec![0]]);
        assert_eq!(sol.value, r(1, 1));
    }

    #[test]
    fn seven_deep_convolution_exponent() {
        // Direct convolution (injective case): 7 loops b,c,k,w,h,r,s
        // Out{k,h,w,b}, Image{r,w,s,h,c,b}, Filter{k,r,s}
        let sol = access_exponent_lp(
            7,
            &[vec![2, 4, 3, 0], vec![5, 3, 6, 4, 1, 0], vec![2, 5, 6]],
        );
        // σ = 2 for the convolution access structure.
        assert_eq!(sol.value, r(2, 1));
    }

    #[test]
    fn full_product_access_caps_exponent_at_one() {
        // A single access touching both iteration variables (e.g. streaming
        // through a 2-D array) forces σ = 1: no data reuse beyond compulsory
        // traffic can be proven through the product terms alone.  (Stencil
        // reuse enters through the Lemma-3 surface terms handled by the KKT
        // solver, not through this LP.)
        let sol = access_exponent_lp(2, &[vec![0, 1]]);
        assert_eq!(sol.value, r(1, 1));
    }

    #[test]
    fn unused_variable_is_capped_at_one() {
        // One access uses var 0 only; var 1 unused -> x0=1, x1=1 via the cap.
        let sol = access_exponent_lp(2, &[vec![0]]);
        assert_eq!(sol.value, r(2, 1));
        assert_eq!(sol.assignment, vec![r(1, 1), r(1, 1)]);
    }
}
