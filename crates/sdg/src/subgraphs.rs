//! Enumeration of the SDG subgraphs to evaluate.
//!
//! The worst case is exponential (the paper notes scaling to ~35 statements in
//! practice); we restrict enumeration to *connected* subsets of computed
//! arrays (connectivity through shared read-only arrays counts, so the two
//! halves of `mvt` form a valid pair) up to a configurable size, plus every
//! singleton.  A hard cap on the total number of subgraphs keeps degenerate
//! cases (fully-connected SDGs of large networks) bounded; when the cap is hit
//! the analysis notes that the reported bound may be looser than optimal.

use crate::graph::Sdg;
use std::collections::BTreeSet;

/// Enumerate connected subsets of the computed arrays of `sdg`, each of size
/// at most `max_size`, capped at roughly `max_count` subsets (singletons are
/// always included and never dropped).
///
/// The enumeration is breadth-first over set size: level `k+1` is produced by
/// extending every level-`k` set with one neighbouring computed array.  Sets
/// are kept in sorted order and deduplicated, so the result contains every
/// connected subset up to the size/count limits exactly once.
pub fn enumerate_connected_subgraphs(
    sdg: &Sdg,
    max_size: usize,
    max_count: usize,
) -> Vec<Vec<String>> {
    let computed: BTreeSet<String> = sdg.computed.iter().cloned().collect();
    let singletons: Vec<Vec<String>> = sdg.computed.iter().map(|a| vec![a.clone()]).collect();
    let mut seen: BTreeSet<Vec<String>> = singletons.iter().cloned().collect();
    let mut out: Vec<Vec<String>> = singletons.clone();
    let mut frontier = singletons;
    let mut truncated = false;

    for _size in 2..=max_size {
        if frontier.is_empty() || truncated {
            break;
        }
        let mut next: Vec<Vec<String>> = Vec::new();
        'outer: for set in &frontier {
            // All computed neighbours of the current set.
            let mut candidates: BTreeSet<String> = BTreeSet::new();
            for v in set {
                for n in sdg.neighbours(v) {
                    if computed.contains(&n) && !set.contains(&n) {
                        candidates.insert(n);
                    }
                }
            }
            for cand in candidates {
                let mut extended = set.clone();
                extended.push(cand);
                extended.sort();
                if seen.insert(extended.clone()) {
                    out.push(extended.clone());
                    next.push(extended);
                    if out.len() >= max_count {
                        truncated = true;
                        break 'outer;
                    }
                }
            }
        }
        frontier = next;
    }
    out
}

/// True if the subgraph cap was reached for the given inputs (re-runs the
/// counting logic cheaply; used by the analysis to attach a warning note).
pub fn enumeration_truncated(sdg: &Sdg, max_size: usize, max_count: usize) -> bool {
    enumerate_connected_subgraphs(sdg, max_size, max_count).len() >= max_count
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_ir::ProgramBuilder;

    fn chain(n: usize) -> Sdg {
        // A chain of n statements: B1 = f(A0), B2 = f(B1), ...
        let mut b = ProgramBuilder::new("chain");
        for s in 0..n {
            let src = if s == 0 { "A0".to_string() } else { format!("B{}", s) };
            let dst = format!("B{}", s + 1);
            b = b.statement(move |st| {
                st.loops(&[("i", "0", "N")])
                    .write(&dst, "i")
                    .read(&src, "i")
            });
        }
        Sdg::from_program(&b.build().unwrap())
    }

    #[test]
    fn singletons_are_always_present() {
        let sdg = chain(4);
        let subs = enumerate_connected_subgraphs(&sdg, 1, 1000);
        assert_eq!(subs.len(), 4);
    }

    #[test]
    fn chain_has_contiguous_windows() {
        // Connected subsets of a path graph are exactly its contiguous windows:
        // n singletons + (n-1) pairs + (n-2) triples ... up to max_size.
        let sdg = chain(5);
        let subs = enumerate_connected_subgraphs(&sdg, 3, 10_000);
        let singles = subs.iter().filter(|s| s.len() == 1).count();
        let pairs = subs.iter().filter(|s| s.len() == 2).count();
        let triples = subs.iter().filter(|s| s.len() == 3).count();
        assert_eq!(singles, 5);
        assert_eq!(pairs, 4);
        assert_eq!(triples, 3);
    }

    #[test]
    fn no_duplicate_subsets() {
        let sdg = chain(6);
        let subs = enumerate_connected_subgraphs(&sdg, 4, 10_000);
        let mut seen = std::collections::BTreeSet::new();
        for s in &subs {
            assert!(seen.insert(s.clone()), "duplicate subset {s:?}");
        }
    }

    #[test]
    fn cap_limits_output() {
        let sdg = chain(30);
        let subs = enumerate_connected_subgraphs(&sdg, 8, 50);
        assert!(subs.len() <= 50);
        assert!(enumeration_truncated(&sdg, 8, 50));
        assert!(!enumeration_truncated(&sdg, 2, 10_000));
    }

    #[test]
    fn star_topology_through_shared_input() {
        // Two independent consumers of the same read-only array are adjacent.
        let p = ProgramBuilder::new("star")
            .statement(|st| st.loops(&[("i", "0", "N")]).write("B", "i").read("A", "i"))
            .statement(|st| st.loops(&[("i", "0", "N")]).write("C", "i").read("A", "i"))
            .build()
            .unwrap();
        let sdg = Sdg::from_program(&p);
        let subs = enumerate_connected_subgraphs(&sdg, 2, 100);
        assert!(subs.contains(&vec!["B".to_string(), "C".to_string()]));
    }
}
