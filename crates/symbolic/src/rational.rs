//! Exact rational arithmetic over `i128`.
//!
//! The analysis only ever manipulates small constants (offsets, coefficients,
//! LP tableau entries), so an `i128`-backed rational with checked
//! normalization is ample; overflow panics loudly instead of silently
//! corrupting a bound.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) = 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational 0.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational 1.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Create a rational from a numerator and denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Create an integer rational.
    pub fn int(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// True if this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.num == 1 && self.den == 1
    }

    /// True if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// True if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Convert to a floating-point approximation.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "division by zero rational");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Integer power (supports negative exponents for non-zero values).
    pub fn pow_i(&self, e: i64) -> Self {
        if e == 0 {
            return Rational::ONE;
        }
        let base = if e < 0 { self.recip() } else { *self };
        let mut out = Rational::ONE;
        for _ in 0..e.unsigned_abs() {
            out *= base;
        }
        out
    }

    /// Floor of the rational as an integer.
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Approximate a float by a rational with denominator at most `max_den`,
    /// returning `None` if no rational within `tol` exists.
    ///
    /// Uses the Stern–Brocot / continued-fraction expansion, which yields the
    /// best rational approximations first.
    pub fn approximate(value: f64, max_den: i128, tol: f64) -> Option<Rational> {
        if !value.is_finite() {
            return None;
        }
        let sign = if value < 0.0 { -1 } else { 1 };
        let mut x = value.abs();
        // Continued fraction expansion with convergent tracking.
        let (mut p0, mut q0, mut p1, mut q1) = (0i128, 1i128, 1i128, 0i128);
        for _ in 0..64 {
            let a = x.floor();
            if a > i64::MAX as f64 {
                return None;
            }
            let a = a as i128;
            let p2 = a.checked_mul(p1)?.checked_add(p0)?;
            let q2 = a.checked_mul(q1)?.checked_add(q0)?;
            if q2 > max_den {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            let approx = p1 as f64 / q1 as f64;
            if (approx - value.abs()).abs() <= tol {
                return Some(Rational::new(sign * p1, q1));
            }
            let frac = x - a as f64;
            if frac.abs() < 1e-15 {
                break;
            }
            x = 1.0 / frac;
        }
        let approx = p1 as f64 / q1.max(1) as f64;
        if q1 > 0 && (approx - value.abs()).abs() <= tol {
            Some(Rational::new(sign * p1, q1))
        } else {
            None
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

// The wire format matches what `#[derive(Serialize, Deserialize)]` would
// produce for the two named fields: `{"num":-2,"den":3}`.
impl serde::Serialize for Rational {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("num".to_string(), serde::Value::Int(self.num)),
            ("den".to_string(), serde::Value::Int(self.den)),
        ])
    }
}

impl serde::Deserialize for Rational {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let num = v
            .get("num")
            .and_then(serde::Value::as_i128)
            .ok_or_else(|| serde::DeError::msg("Rational: missing integer field 'num'"))?;
        let den = v
            .get("den")
            .and_then(serde::Value::as_i128)
            .ok_or_else(|| serde::DeError::msg("Rational: missing integer field 'den'"))?;
        if den == 0 {
            return Err(serde::DeError::msg("Rational: zero denominator"));
        }
        Ok(Rational::new(num, den))
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::int(n as i128)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::int(n as i128)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b  (b, d > 0)
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Self) -> Self {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Self) -> Self {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Self) -> Self {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Self) -> Self {
        assert!(!rhs.is_zero(), "division by zero rational");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Self {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}
impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_sign_and_gcd() {
        let r = Rational::new(4, -6);
        assert_eq!(r.numer(), -2);
        assert_eq!(r.denom(), 3);
    }

    #[test]
    fn arithmetic_matches_expectation() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn ordering_is_consistent() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 3) > Rational::int(2));
    }

    #[test]
    fn integer_power() {
        assert_eq!(Rational::new(2, 3).pow_i(2), Rational::new(4, 9));
        assert_eq!(Rational::new(2, 3).pow_i(-1), Rational::new(3, 2));
        assert_eq!(Rational::new(5, 7).pow_i(0), Rational::ONE);
    }

    #[test]
    fn float_approximation_finds_simple_fractions() {
        assert_eq!(
            Rational::approximate(0.5, 100, 1e-9),
            Some(Rational::new(1, 2))
        );
        assert_eq!(
            Rational::approximate(2.0 / 3.0, 100, 1e-9),
            Some(Rational::new(2, 3))
        );
        assert_eq!(
            Rational::approximate(-1.25, 100, 1e-9),
            Some(Rational::new(-5, 4))
        );
        // An irrational constant should not be matched with a tight tolerance
        // and small denominator.
        assert_eq!(Rational::approximate(std::f64::consts::PI, 6, 1e-9), None);
    }

    #[test]
    fn floor_handles_negatives() {
        assert_eq!(Rational::new(-3, 2).floor(), -2);
        assert_eq!(Rational::new(3, 2).floor(), 1);
    }
}
