//! Disk-store integration tests: cold solve → flush → fresh-process reload
//! must reproduce every result byte-identically (floats bit-compared), and
//! the failure modes of real shared directories — truncated records from a
//! crashed writer, future format versions, several processes flushing into
//! one directory — must degrade to counted notes, never panics or wrong
//! answers.

use soap_kernels::registry;
use soap_sdg::{
    analyze_suite_with, SdgOptions, SolveCache, SolveStore, SuiteProgram, STORE_HEADER,
};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soap-store-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The whole built-in registry with its Table-2 per-kernel options.
fn registry_jobs() -> Vec<SuiteProgram> {
    registry()
        .into_iter()
        .map(|entry| {
            SuiteProgram::new(
                entry.program,
                SdgOptions {
                    assume_injective: entry.assume_injective,
                    ..SdgOptions::default()
                },
            )
        })
        .collect()
}

/// Jobs for a named subset of the registry (cheap fixtures for the
/// corruption tests).
fn jobs_for(names: &[&str]) -> Vec<SuiteProgram> {
    registry_jobs()
        .into_iter()
        .filter(|j| names.contains(&j.name.as_str()))
        .collect()
}

/// Populate a store at `dir` by batch-analyzing `jobs` cold; returns the
/// number of structures persisted.
fn seed_store(dir: &Path, jobs: &[SuiteProgram]) -> usize {
    let cache = SolveCache::with_store(dir).expect("store opens");
    analyze_suite_with(jobs, &cache);
    cache.flush_store().expect("flush succeeds").appended
}

#[test]
fn full_registry_round_trips_byte_identically() {
    let dir = temp_dir("registry");
    let jobs = registry_jobs();

    let cold_cache = SolveCache::with_store(&dir).expect("store opens");
    let cold = analyze_suite_with(&jobs, &cold_cache);
    assert_eq!(cold.summary.failures, 0);
    assert!(cold.summary.cache.misses > 0);
    let flushed = cold_cache.flush_store().expect("flush succeeds").appended;
    assert_eq!(flushed as u64, cold.summary.cache.misses);
    drop(cold_cache);

    // Fresh cache over the same directory — a simulated new process.
    let warm_cache = SolveCache::with_store(&dir).expect("store reopens");
    let load = warm_cache.store_load_stats().unwrap().clone();
    assert_eq!(load.records_skipped, 0, "notes: {:?}", load.notes);
    assert_eq!(load.segments_rejected, 0);
    assert_eq!(load.entries, flushed);
    let warm = analyze_suite_with(&jobs, &warm_cache);

    // The acceptance bar: a warm run over the full registry re-solves
    // nothing...
    assert_eq!(warm.summary.cache.misses, 0, "{:?}", warm.summary.cache);
    assert_eq!(warm.summary.cache.uncacheable, 0);
    assert_eq!(warm.summary.cache.store_hits, warm.summary.cache.hits);

    // ...and reproduces the cold output byte-for-byte, unsnapped floats
    // included.
    for (c, w) in cold.reports.iter().zip(&warm.reports) {
        assert_eq!(c.name, w.name);
        let (c, w) = (c.outcome.as_ref().unwrap(), w.outcome.as_ref().unwrap());
        assert_eq!(format!("{}", c.bound), format!("{}", w.bound), "{}", c.name);
        assert_eq!(c.notes, w.notes);
        assert_eq!(c.subgraphs.len(), w.subgraphs.len());
        for (sc, sw) in c.subgraphs.iter().zip(&w.subgraphs) {
            assert_eq!(sc.arrays, sw.arrays);
            assert_eq!(sc.intensity.sigma, sw.intensity.sigma);
            assert_eq!(
                sc.intensity.chi_coeff.to_bits(),
                sw.intensity.chi_coeff.to_bits(),
                "{}: chi_coeff drifted through the store",
                c.name
            );
            assert_eq!(
                format!("{}", sc.intensity.rho),
                format!("{}", sw.intensity.rho)
            );
            assert_eq!(sc.intensity.tile_exponents, sw.intensity.tile_exponents);
            for ((va, a), (vb, b)) in sc
                .intensity
                .tile_coeffs
                .iter()
                .zip(&sw.intensity.tile_coeffs)
            {
                assert_eq!(va, vb);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}: tile coeff for {va} drifted through the store",
                    c.name
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_record_is_skipped_with_a_counted_note() {
    let dir = temp_dir("truncate");
    let persisted = seed_store(&dir, &jobs_for(&["gemm", "mvt"]));
    assert!(persisted >= 2);

    // This test exercises the *solve-record* corruption path: remove the
    // finished-report records so the warm run walks the pipeline instead of
    // replaying whole reports.
    let store = SolveStore::open(&dir).unwrap();
    for rpt in store.report_files().unwrap() {
        std::fs::remove_file(rpt).unwrap();
    }

    // Simulate a crashed writer: chop the final record mid-line.
    let segment = store.segment_files().unwrap().pop().unwrap();
    let text = std::fs::read_to_string(&segment).unwrap();
    let cut = text.trim_end().len() - 40;
    std::fs::write(&segment, &text[..cut]).unwrap();

    let cache = SolveCache::with_store(&dir).expect("corrupt store still opens");
    let load = cache.store_load_stats().unwrap();
    assert_eq!(load.records_skipped, 1);
    assert_eq!(load.entries, persisted - 1);
    assert!(
        load.notes
            .iter()
            .any(|n| n.contains("corrupt/truncated record(s) skipped")),
        "notes: {:?}",
        load.notes
    );

    // The surviving entries still answer; only the lost structure re-solves,
    // and a flush heals the store.
    let warm = analyze_suite_with(&jobs_for(&["gemm", "mvt"]), &cache);
    assert_eq!(warm.summary.failures, 0);
    assert_eq!(warm.summary.cache.misses, 1);
    cache.flush_store().expect("flush heals");
    drop(cache);
    let healed = SolveCache::with_store(&dir).unwrap();
    assert_eq!(healed.store_load_stats().unwrap().entries, persisted);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every `.soapstore` file in the directory, either family.
fn all_segment_files(dir: &Path) -> usize {
    let store = SolveStore::open(dir).unwrap();
    store.segment_files().unwrap().len() + store.report_files().unwrap().len()
}

#[test]
fn full_registry_round_trips_from_report_records() {
    let dir = temp_dir("reports");
    let jobs = registry_jobs();

    let cold_cache = SolveCache::with_store(&dir).expect("store opens");
    let cold = analyze_suite_with(&jobs, &cold_cache);
    assert_eq!(cold.summary.failures, 0);
    assert_eq!(cold.summary.cache.report_hits, 0);
    let flush = cold_cache.flush_store().expect("flush succeeds");
    assert!(flush.reports_appended > 0);
    drop(cold_cache);

    // Fresh cache over the same directory — a simulated new process.  Every
    // program is answered from its persisted report: no enumeration, no
    // merging, no solving.
    let warm_cache = SolveCache::with_store(&dir).expect("store reopens");
    let report_load = warm_cache.report_load_stats().unwrap().clone();
    assert_eq!(report_load.records_skipped, 0, "{:?}", report_load.notes);
    assert_eq!(report_load.entries, flush.reports_appended);
    let warm = analyze_suite_with(&jobs, &warm_cache);
    assert_eq!(warm.summary.failures, 0);
    assert_eq!(
        warm.summary.cache.report_hits,
        jobs.len() as u64,
        "{:?}",
        warm.summary.cache
    );
    // Zero model traffic: the front half never ran.
    assert_eq!(warm.summary.cache.hits, 0, "{:?}", warm.summary.cache);
    assert_eq!(warm.summary.cache.misses, 0);
    assert_eq!(warm.summary.cache.uncacheable, 0);
    assert_eq!(warm.summary.subgraphs_enumerated, 0);
    let p = &warm.summary.phases;
    assert_eq!(
        (p.enumerate_ms, p.merge_ms, p.instantiate_ms, p.solve_ms),
        (0.0, 0.0, 0.0, 0.0)
    );

    // The replayed analyses are byte-identical to the cold ones.
    for (c, w) in cold.reports.iter().zip(&warm.reports) {
        assert_eq!(c.name, w.name);
        let (c, w) = (c.outcome.as_ref().unwrap(), w.outcome.as_ref().unwrap());
        assert_eq!(w.solver.report_hits, 1);
        assert!(!w.degraded);
        assert_eq!(format!("{}", c.bound), format!("{}", w.bound), "{}", c.name);
        assert_eq!(c.notes, w.notes);
        assert_eq!(c.per_array.len(), w.per_array.len());
        for (ac, aw) in c.per_array.iter().zip(&w.per_array) {
            assert_eq!(ac.array, aw.array);
            assert_eq!(
                format!("{}", ac.vertex_count),
                format!("{}", aw.vertex_count)
            );
            assert_eq!(format!("{}", ac.rho), format!("{}", aw.rho));
            assert_eq!(ac.sigma, aw.sigma);
            assert_eq!(ac.best_subgraph, aw.best_subgraph);
            assert_eq!(format!("{}", ac.bound), format!("{}", aw.bound));
        }
        assert_eq!(c.subgraphs.len(), w.subgraphs.len());
        for (sc, sw) in c.subgraphs.iter().zip(&w.subgraphs) {
            assert_eq!(sc.arrays, sw.arrays);
            assert_eq!(
                sc.intensity.chi_coeff.to_bits(),
                sw.intensity.chi_coeff.to_bits()
            );
            assert_eq!(sc.rho_ref.to_bits(), sw.rho_ref.to_bits(), "{}", c.name);
        }
    }

    // Satellite: a drop after an explicit flush with nothing new must write
    // no segment file in either family.
    let files_before = all_segment_files(&dir);
    let flush = warm_cache.flush_store().expect("no-op flush succeeds");
    assert_eq!((flush.appended, flush.reports_appended), (0, 0));
    assert!(flush.segment.is_none());
    drop(warm_cache);
    assert_eq!(all_segment_files(&dir), files_before);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v1_solve_only_store_migrates_cleanly() {
    // A store directory written before report records existed holds only
    // `seg-` solve segments; it must open cleanly, report an empty report
    // layer, and keep answering every model from the solve records.
    let dir = temp_dir("migration");
    let jobs = jobs_for(&["gemm", "mvt"]);
    seed_store(&dir, &jobs);
    let store = SolveStore::open(&dir).unwrap();
    for rpt in store.report_files().unwrap() {
        std::fs::remove_file(rpt).unwrap();
    }

    let cache = SolveCache::with_store(&dir).expect("v1 store opens");
    let report_load = cache.report_load_stats().unwrap();
    assert_eq!(report_load.segments, 0);
    assert_eq!(report_load.entries, 0);
    assert!(report_load.notes.is_empty(), "{:?}", report_load.notes);
    let warm = analyze_suite_with(&jobs, &cache);
    assert_eq!(warm.summary.failures, 0);
    assert_eq!(warm.summary.cache.misses, 0, "{:?}", warm.summary.cache);
    assert_eq!(warm.summary.cache.report_hits, 0);
    assert!(warm.summary.cache.store_hits > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn format_version_mismatch_is_rejected_cleanly() {
    let dir = temp_dir("version");
    let persisted = seed_store(&dir, &jobs_for(&["gemm"]));

    // A segment from a hypothetical future format, and one from something
    // else entirely: both rejected whole, neither poisons the good segment.
    std::fs::write(
        dir.join("seg-99999999999999999999-1-0000.soapstore"),
        "soap-solve-store/2\n0123456789abcdef {\"key\":\"from-the-future\"}\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("seg-99999999999999999998-1-0000.soapstore"),
        "not a store segment at all\n",
    )
    .unwrap();

    let cache = SolveCache::with_store(&dir).expect("opens despite bad segments");
    let load = cache.store_load_stats().unwrap();
    assert_eq!(load.segments_rejected, 2);
    assert_eq!(load.records_skipped, 0);
    assert_eq!(load.entries, persisted);
    assert!(
        load.notes
            .iter()
            .any(|n| n.contains("format-version mismatch") && n.contains(STORE_HEADER)),
        "notes: {:?}",
        load.notes
    );
    assert!(load.notes.iter().any(|n| n.contains("missing")));
    let warm = analyze_suite_with(&jobs_for(&["gemm"]), &cache);
    assert_eq!(warm.summary.cache.misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_caches_flushing_into_one_directory_converge() {
    let dir = temp_dir("merge");
    // Two "processes" with overlapping workloads share the directory; both
    // open *before* either flushes, so each solves its own full workload.
    let cache_a = SolveCache::with_store(&dir).expect("store opens");
    let cache_b = SolveCache::with_store(&dir).expect("store opens concurrently");
    let jobs_a = jobs_for(&["gemm", "2mm"]);
    let jobs_b = jobs_for(&["2mm", "mvt"]);
    let a = analyze_suite_with(&jobs_a, &cache_a);
    let b = analyze_suite_with(&jobs_b, &cache_b);
    cache_a.flush_store().expect("A flushes");
    cache_b.flush_store().expect("B flushes");
    assert!(a.summary.cache.misses > 0 && b.summary.cache.misses > 0);

    // A third process sees the union: the overlap (2mm's structures, written
    // by both) merged last-writer-wins, and the whole combined suite runs
    // without a single solve.
    let merged = SolveCache::with_store(&dir).expect("merged store opens");
    let load = merged.store_load_stats().unwrap();
    assert_eq!(load.segments, 2);
    assert_eq!(load.records_skipped, 0);
    assert!(load.records > load.entries, "overlap written twice");
    let both = analyze_suite_with(&jobs_for(&["gemm", "2mm", "mvt"]), &merged);
    assert_eq!(both.summary.failures, 0);
    assert_eq!(both.summary.cache.misses, 0, "{:?}", both.summary.cache);
    assert_eq!(both.summary.cache.store_hits, both.summary.cache.hits);
    let _ = std::fs::remove_dir_all(&dir);
}
